//! Programmatic query construction.
//!
//! Index schemes generate queries from descriptors ("we generate a set of
//! queries Q = {q₁ … qₗ} likely to be asked by users", §IV). Doing that by
//! string formatting would be fragile; [`QueryBuilder`] builds normalized
//! queries directly, merging shared path prefixes so that
//! `author/first + author/last` become predicates of one `author` branch —
//! the shape of the paper's q₁/q₃.
//!
//! [`Query::most_specific`] derives the MSD — "the most specific query for
//! d" — from a descriptor, the query that is `≡ d` and hashes to the file's
//! storage key.

use p2p_index_xmldoc::{Descriptor, Element};

use crate::ast::{Axis, CmpOp, Comparison, NameTest, Pattern, Query};

/// Incrementally builds a [`Query`].
///
/// Paths passed as `/`-separated strings are merged on shared prefixes.
///
/// # Examples
///
/// ```
/// use p2p_index_xpath::{CmpOp, QueryBuilder};
///
/// let q = QueryBuilder::new("article")
///     .value("author/first", "John")
///     .value("author/last", "Smith")
///     .compare("year", CmpOp::Ge, "1990")
///     .build();
/// assert_eq!(
///     q.to_string(),
///     "/article[author[first/John][last/Smith]][year>=1990]"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    root: Pattern,
}

impl QueryBuilder {
    /// Starts a query rooted at element `root` (e.g. `"article"`).
    pub fn new(root: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            root: Pattern::leaf(Axis::Child, NameTest::Name(root.into())),
        }
    }

    /// Requires the element at `path` to have text equal to `value`
    /// (a value-leaf step, `…/title/TCP` style).
    #[must_use]
    pub fn value(mut self, path: &str, value: impl Into<String>) -> QueryBuilder {
        let node = Self::descend(&mut self.root, path);
        node.children
            .push(Pattern::leaf(Axis::Child, NameTest::Name(value.into())));
        self
    }

    /// Requires the element at `path` to exist.
    #[must_use]
    pub fn exists(mut self, path: &str) -> QueryBuilder {
        let _ = Self::descend(&mut self.root, path);
        self
    }

    /// Constrains the text of the element at `path` with `op value`
    /// (`[year>=1990]` style).
    #[must_use]
    pub fn compare(mut self, path: &str, op: CmpOp, value: impl Into<String>) -> QueryBuilder {
        let node = Self::descend(&mut self.root, path);
        node.comparison = Some(Comparison {
            op,
            value: value.into(),
        });
        self
    }

    /// Adds a pre-built branch under the root *without* prefix merging —
    /// needed e.g. to constrain two different `author` elements separately.
    #[must_use]
    pub fn branch(
        mut self,
        branch_root: &str,
        f: impl FnOnce(QueryBuilder) -> QueryBuilder,
    ) -> QueryBuilder {
        let sub = f(QueryBuilder::new(branch_root));
        self.root.children.push(sub.root);
        self
    }

    /// Finalizes and normalizes the query.
    pub fn build(self) -> Query {
        Query::from_root(self.root)
    }

    /// Walks (creating as needed) the child chain for `path`, merging with
    /// existing comparison-free branches, and returns the final node.
    fn descend<'a>(mut node: &'a mut Pattern, path: &str) -> &'a mut Pattern {
        for step in path.split('/').filter(|s| !s.is_empty()) {
            let pos = node.children.iter().position(|c| {
                c.axis == Axis::Child
                    && c.comparison.is_none()
                    && matches!(&c.test, NameTest::Name(n) if n == step)
            });
            let idx = match pos {
                Some(i) => i,
                None => {
                    node.children
                        .push(Pattern::leaf(Axis::Child, NameTest::Name(step.to_string())));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx];
        }
        node
    }
}

impl Query {
    /// The most specific query (MSD) for a descriptor: the query that tests
    /// the presence of every element and value of `d`, so that `q ≡ d`.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_xmldoc::Descriptor;
    /// use p2p_index_xpath::Query;
    ///
    /// let d = Descriptor::parse("<article><title>TCP</title><year>1989</year></article>")?;
    /// let msd = Query::most_specific(&d);
    /// assert!(msd.matches(d.root()));
    /// assert_eq!(msd.to_string(), "/article[title/TCP][year/1989]");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn most_specific(descriptor: &Descriptor) -> Query {
        Query::from_root(element_to_pattern(descriptor.root()))
    }
}

fn element_to_pattern(e: &Element) -> Pattern {
    let mut node = Pattern::leaf(Axis::Child, NameTest::Name(e.name().to_string()));
    let text = e.text();
    if !text.is_empty() {
        node.children
            .push(Pattern::leaf(Axis::Child, NameTest::Name(text)));
    }
    for child in e.child_elements() {
        node.children.push(element_to_pattern(child));
    }
    node
}

#[cfg(test)]
mod tests {
    use p2p_index_xmldoc::Descriptor;

    use super::*;
    use crate::parse::parse_query;

    #[test]
    fn builder_merges_prefixes() {
        let q = QueryBuilder::new("article")
            .value("author/first", "John")
            .value("author/last", "Smith")
            .value("conf", "INFOCOM")
            .build();
        assert_eq!(
            q,
            parse_query("/article[author[first/John][last/Smith]][conf/INFOCOM]").unwrap()
        );
    }

    #[test]
    fn builder_exists_and_compare() {
        let q = QueryBuilder::new("article")
            .exists("title")
            .compare("year", CmpOp::Lt, "2000")
            .build();
        assert_eq!(q.to_string(), "/article[title][year<2000]");
    }

    #[test]
    fn builder_branch_keeps_branches_separate() {
        let q = QueryBuilder::new("article")
            .branch("author", |b| b.value("last", "Smith"))
            .branch("author", |b| b.value("last", "Doe"))
            .build();
        assert_eq!(
            q.to_string(),
            "/article[author/last/Doe][author/last/Smith]"
        );
    }

    #[test]
    fn builder_empty_path_is_root() {
        let q = QueryBuilder::new("article").value("", "X").build();
        assert_eq!(q.to_string(), "/article/X");
    }

    #[test]
    fn msd_matches_and_roundtrips() {
        let d = Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>TCP</title><conf>SIGCOMM</conf><year>1989</year><size>315635</size></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        assert!(msd.matches(d.root()));
        // Canonical text reparses to the same query.
        assert_eq!(parse_query(&msd.to_string()).unwrap(), msd);
        // The MSD from the paper's q1 equals the generated one.
        let q1 = parse_query(
            "/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]",
        )
        .unwrap();
        assert_eq!(msd, q1);
    }

    #[test]
    fn msd_is_covered_by_partial_queries() {
        let d = Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>IPv6</title><conf>INFOCOM</conf><year>1996</year></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        for broad in [
            "/article/author/last/Smith",
            "/article/conf/INFOCOM",
            "/article[author[first/John][last/Smith]][conf/INFOCOM]",
            "/article[year>=1990]",
        ] {
            assert!(parse_query(broad).unwrap().covers(&msd), "{broad}");
        }
        assert!(!parse_query("/article/conf/SIGCOMM").unwrap().covers(&msd));
    }

    #[test]
    fn msd_of_multi_author_descriptor() {
        let d = Descriptor::parse(
            "<article><author><first>A</first><last>B</last></author>\
             <author><first>C</first><last>D</last></author><title>T</title></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        assert!(msd.matches(d.root()));
        assert_eq!(msd.top_branches().len(), 3);
        // Each author query covers the MSD.
        assert!(parse_query("/article/author[first/A][last/B]")
            .unwrap()
            .covers(&msd));
        assert!(parse_query("/article/author[first/C][last/D]")
            .unwrap()
            .covers(&msd));
        assert!(!parse_query("/article/author[first/A][last/D]")
            .unwrap()
            .covers(&msd));
    }

    #[test]
    fn msd_with_mixed_text_and_children() {
        let d = Descriptor::parse("<note>remember<when>today</when></note>").unwrap();
        let msd = Query::most_specific(&d);
        assert!(msd.matches(d.root()));
        assert!(msd.to_string().contains("remember"));
    }

    #[test]
    fn distinct_descriptors_distinct_msds() {
        let a = Descriptor::parse("<article><title>X</title></article>").unwrap();
        let b = Descriptor::parse("<article><title>Y</title></article>").unwrap();
        assert_ne!(Query::most_specific(&a), Query::most_specific(&b));
    }
}
