//! A minimal work-queue executor for embarrassingly-parallel experiment
//! grids.
//!
//! The evaluation's scheme × policy cells (and the robustness sweep's
//! loss × budget cells) are independent simulations: each is a pure
//! function of its own config and seeds. [`parallel_map`] fans such cells
//! out over scoped worker threads (`std::thread::scope`, no dependencies)
//! and reassembles the results **in input order**, so any output rendered
//! from them — notably the paper CSVs — is byte-identical to a serial run.
//!
//! Scheduling is a shared atomic cursor over the item slice: workers claim
//! contiguous chunks of un-started indices until the queue drains, and
//! each result is written straight into its own pre-sized output slot —
//! there is no shared result sink to contend on and no reorder pass at the
//! end. The worker count is clamped to the host's available parallelism,
//! so asking for more jobs than cores degrades to fewer threads instead of
//! oversubscribing the machine (which is how a "parallel" run ends up
//! slower than a serial one). Panics inside a worker are propagated to the
//! caller after all threads have joined.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item, running up to `jobs` items concurrently, and
/// returns the results in the order of `items`.
///
/// The actual worker count is `min(jobs, available cores, items)`: extra
/// threads beyond the core count only add scheduling overhead, and extra
/// threads beyond the item count would never receive work. `jobs <= 1`
/// (after clamping) runs strictly serially on the calling thread (no
/// threads are spawned), which is also the fallback for empty input. The
/// mapping must be a pure function of the item for the parallel and serial
/// schedules to agree — which is exactly the determinism contract the
/// experiment grids rely on.
///
/// # Panics
///
/// Re-raises the first panic observed in a worker once every worker has
/// finished.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_workers(items, effective_workers(jobs, items.len()), f)
}

/// [`parallel_map`] with an explicit worker count, *not* clamped to the
/// host's core count. This is the internal engine; tests use it to force
/// real thread schedules (oversubscription, jobs > items) regardless of
/// how many cores the test machine has.
pub(crate) fn parallel_map_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = workers.min(items.len());
    // Hand out contiguous chunks so the atomic cursor is touched roughly
    // 8×workers times per run instead of once per item. Cheap items stop
    // serializing on the cursor; expensive items (chunk = 1) still balance.
    let chunk = (items.len() / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots = SlotBuffer::new(items.len());
    let panicked = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        return;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items[start..end].iter().enumerate() {
                        slots.write(start + i, f(item));
                    }
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            if let Err(p) = h.join() {
                panicked.get_or_insert(p);
            }
        }
        panicked
    });
    if let Some(p) = panicked {
        // Partial results drop with the buffer — nothing leaks on unwind.
        drop(slots);
        panic::resume_unwind(p);
    }
    slots.into_vec()
}

/// The worker count [`parallel_map`] actually uses for a `--jobs` request:
/// `min(jobs, available cores, items)`.
pub fn effective_workers(jobs: usize, items: usize) -> usize {
    jobs.min(available_cores()).min(items.max(1))
}

/// The host's available parallelism (at least 1).
pub fn available_cores() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The number of worker threads a `--jobs` value selects: `0` means "use
/// every available core", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        available_cores()
    } else {
        jobs
    }
}

/// A fixed-size buffer of write-once result slots, one per input index.
///
/// Each slot carries its own tiny mutex, so writes to different indices
/// never contend on anything shared: the unique index handout in
/// [`parallel_map_with_workers`] guarantees every slot's lock is taken
/// exactly once while workers run (one uncontended CAS — noise next to a
/// simulation cell), and once more on the coordinating thread after
/// `thread::scope` has joined every worker. The crate forbids `unsafe`, so
/// this stands in for the `UnsafeCell<MaybeUninit>` version of the same
/// layout at the cost of one relaxed atomic per write.
struct SlotBuffer<R> {
    slots: Box<[Mutex<Option<R>>]>,
}

impl<R> SlotBuffer<R> {
    fn new(len: usize) -> Self {
        Self {
            slots: (0..len).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Writes index `i`'s result. Each index is written at most once (the
    /// cursor hands each index range to exactly one worker).
    fn write(&self, i: usize, value: R) {
        let prev = self.slots[i]
            .lock()
            .expect("slot writer panicked")
            .replace(value);
        debug_assert!(prev.is_none(), "executor wrote a result slot twice");
    }

    /// Consumes the buffer into a `Vec`, asserting every slot was filled.
    /// Partial buffers (a worker panicked) are simply dropped instead, which
    /// reclaims whatever results were produced before the panic.
    fn into_vec(self) -> Vec<R> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot writer panicked")
                    .expect("executor left a result slot empty")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 4, 9] {
            let out = parallel_map(&items, jobs, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        assert_eq!(parallel_map(&items, 1, f), parallel_map(&items, 4, f));
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 100, |&x| x * x), vec![1, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        parallel_map(&items, 3, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    // --- adversarial schedules: forced real threads, independent of the
    // --- host's core count, exercising the slot buffer under contention.

    /// Uneven per-item cost: early items are orders of magnitude slower
    /// than late ones, so fast workers race far ahead through the chunked
    /// cursor while slow workers are still writing low-index slots.
    #[test]
    fn uneven_item_cost_keeps_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map_with_workers(&items, 8, |&i| {
            if i % 17 == 0 {
                thread::sleep(Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
    }

    /// Far more workers than items (and than cores): every surplus worker
    /// must observe an exhausted cursor and exit without touching a slot.
    #[test]
    fn oversubscribed_workers_beyond_items() {
        let items = [10u32, 20, 30];
        let calls = AtomicU64::new(0);
        let out = parallel_map_with_workers(&items, 64, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            3,
            "each item mapped exactly once"
        );
    }

    /// A worker that panics mid-queue must not prevent the others from
    /// draining, and the panic must surface to the caller. The drop
    /// counter pins that every result produced before the panic is
    /// reclaimed (no leak on the unwind path) and none is dropped twice.
    #[test]
    fn mid_queue_panic_reclaims_partial_results() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Tracked(#[allow(dead_code)] u64);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let items: Vec<u64> = (0..32).collect();
        let made = AtomicU64::new(0);
        let result = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            parallel_map_with_workers(&items, 4, |&i| {
                if i == 13 {
                    panic!("mid-queue worker failure");
                }
                made.fetch_add(1, Ordering::Relaxed);
                Tracked(i)
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            made.load(Ordering::Relaxed),
            "every constructed result is dropped exactly once on unwind"
        );
    }

    /// Determinism pin: the slot-based executor matches the serial map
    /// element-for-element across worker counts and chunk boundaries,
    /// including lengths that don't divide evenly into chunks.
    #[test]
    fn slot_executor_matches_serial_element_for_element() {
        for len in [2usize, 3, 7, 64, 100, 257] {
            let items: Vec<u64> = (0..len as u64).collect();
            let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x << 7);
            let serial: Vec<u64> = items.iter().map(f).collect();
            for workers in [2, 3, 8, 19] {
                assert_eq!(
                    parallel_map_with_workers(&items, workers, f),
                    serial,
                    "len={len} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn resolve_jobs_maps_zero_to_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn effective_workers_clamps_to_cores_and_items() {
        let cores = available_cores();
        assert_eq!(effective_workers(1, 100), 1);
        assert!(effective_workers(usize::MAX, 100) <= cores.min(100));
        assert_eq!(effective_workers(8, 3), 3.min(cores).min(8));
    }
}
