//! Parser for the query surface syntax.
//!
//! The grammar covers the paper's XPath subset:
//!
//! ```text
//! query      := axis step (axis step)* comparison?
//! axis       := '//' | '/'
//! step       := nametest predicate*
//! nametest   := '*' | NAME | QUOTED
//! predicate  := '[' relpath ']'
//! relpath    := '//'? step (axis step)* comparison?
//! comparison := ('=' | '!=' | '<' | '<=' | '>' | '>=' | '^=' | '*=') (NAME | QUOTED)
//! ```
//!
//! Bare `NAME` tokens may contain alphanumerics and `- _ . : , & + '`;
//! anything else (spaces in titles, operators, brackets) must be quoted:
//! `"A Space Odyssey"`, with `\"` and `\\` escapes. A comparison binds to
//! the last step of its path: `[author/year>=1990]` constrains `year`.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::ast::{Axis, CmpOp, Comparison, NameTest, Pattern, Query};

/// Why query parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryErrorKind {
    /// The input ended mid-construct.
    UnexpectedEnd,
    /// An unexpected token.
    UnexpectedToken(String),
    /// A quoted string was not terminated.
    UnterminatedString,
    /// The query did not start with `/` or `//`.
    MissingLeadingSlash,
    /// Extra input after a complete query.
    TrailingInput(String),
}

/// An error from [`parse_query`], with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// What went wrong.
    pub kind: QueryErrorKind,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            QueryErrorKind::UnexpectedEnd => "unexpected end of query".to_string(),
            QueryErrorKind::UnexpectedToken(t) => format!("unexpected token {t:?}"),
            QueryErrorKind::UnterminatedString => "unterminated quoted string".to_string(),
            QueryErrorKind::MissingLeadingSlash => "query must start with / or //".to_string(),
            QueryErrorKind::TrailingInput(t) => format!("trailing input {t:?}"),
        };
        write!(f, "{msg} at offset {}", self.offset)
    }
}

impl Error for ParseQueryError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    Star,
    Op(CmpOp),
    /// A bare or quoted name/value (flag: was quoted).
    Name(String, bool),
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Slash => "/".into(),
            Token::DoubleSlash => "//".into(),
            Token::LBracket => "[".into(),
            Token::RBracket => "]".into(),
            Token::Star => "*".into(),
            Token::Op(op) => op.symbol().into(),
            Token::Name(n, _) => n.clone(),
        }
    }
}

fn is_bare_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':' | ',' | '&' | '+' | '\'')
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseQueryError> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0;
    while i < bytes.len() {
        let (offset, c) = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('/') {
                    tokens.push((Token::DoubleSlash, offset));
                    i += 2;
                } else {
                    tokens.push((Token::Slash, offset));
                    i += 1;
                }
            }
            '[' => {
                tokens.push((Token::LBracket, offset));
                i += 1;
            }
            ']' => {
                tokens.push((Token::RBracket, offset));
                i += 1;
            }
            '*' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push((Token::Op(CmpOp::Contains), offset));
                    i += 2;
                } else {
                    tokens.push((Token::Star, offset));
                    i += 1;
                }
            }
            '=' => {
                tokens.push((Token::Op(CmpOp::Eq), offset));
                i += 1;
            }
            '^' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push((Token::Op(CmpOp::StartsWith), offset));
                    i += 2;
                } else {
                    return Err(ParseQueryError {
                        kind: QueryErrorKind::UnexpectedToken("^".into()),
                        offset,
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push((Token::Op(CmpOp::Ne), offset));
                    i += 2;
                } else {
                    return Err(ParseQueryError {
                        kind: QueryErrorKind::UnexpectedToken("!".into()),
                        offset,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push((Token::Op(CmpOp::Le), offset));
                    i += 2;
                } else {
                    tokens.push((Token::Op(CmpOp::Lt), offset));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push((Token::Op(CmpOp::Ge), offset));
                    i += 2;
                } else {
                    tokens.push((Token::Op(CmpOp::Gt), offset));
                    i += 1;
                }
            }
            '"' => {
                let mut value = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(ParseQueryError {
                                kind: QueryErrorKind::UnterminatedString,
                                offset,
                            })
                        }
                        Some(&(_, '"')) => {
                            j += 1;
                            break;
                        }
                        Some(&(_, '\\')) => match bytes.get(j + 1) {
                            Some(&(_, e @ ('"' | '\\'))) => {
                                value.push(e);
                                j += 2;
                            }
                            _ => {
                                value.push('\\');
                                j += 1;
                            }
                        },
                        Some(&(_, c)) => {
                            value.push(c);
                            j += 1;
                        }
                    }
                }
                tokens.push((Token::Name(value, true), offset));
                i = j;
            }
            c if is_bare_char(c) => {
                let mut value = String::new();
                while i < bytes.len() && is_bare_char(bytes[i].1) {
                    value.push(bytes[i].1);
                    i += 1;
                }
                tokens.push((Token::Name(value, false), offset));
            }
            other => {
                return Err(ParseQueryError {
                    kind: QueryErrorKind::UnexpectedToken(other.to_string()),
                    offset,
                })
            }
        }
    }
    Ok(tokens)
}

struct QueryParser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl QueryParser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, kind: QueryErrorKind) -> ParseQueryError {
        ParseQueryError {
            kind,
            offset: self.offset(),
        }
    }

    fn err_here(&self) -> ParseQueryError {
        match self.peek() {
            Some(t) => self.err(QueryErrorKind::UnexpectedToken(t.describe())),
            None => self.err(QueryErrorKind::UnexpectedEnd),
        }
    }

    fn parse_name_test(&mut self) -> Result<NameTest, ParseQueryError> {
        match self.peek() {
            Some(Token::Star) => {
                self.bump();
                Ok(NameTest::Wildcard)
            }
            Some(Token::Name(_, _)) => {
                let Some(Token::Name(n, _)) = self.bump() else {
                    unreachable!()
                };
                Ok(NameTest::Name(n))
            }
            _ => Err(self.err_here()),
        }
    }

    /// Parses `step (axis step)* comparison?` and returns the head pattern
    /// with the rest of the chain nested inside it.
    fn parse_steps(&mut self, axis: Axis) -> Result<Pattern, ParseQueryError> {
        let test = self.parse_name_test()?;
        let mut node = Pattern::leaf(axis, test);

        // Predicates.
        while self.peek() == Some(&Token::LBracket) {
            self.bump();
            let inner_axis = if self.peek() == Some(&Token::DoubleSlash) {
                self.bump();
                Axis::Descendant
            } else {
                Axis::Child
            };
            let child = self.parse_steps(inner_axis)?;
            match self.bump() {
                Some(Token::RBracket) => {}
                Some(t) => {
                    self.pos -= 1;
                    return Err(self.err(QueryErrorKind::UnexpectedToken(t.describe())));
                }
                None => return Err(self.err(QueryErrorKind::UnexpectedEnd)),
            }
            node.children.push(child);
        }

        // Path continuation or comparison.
        match self.peek() {
            Some(Token::Slash) => {
                self.bump();
                let tail = self.parse_steps(Axis::Child)?;
                node.children.push(tail);
            }
            Some(Token::DoubleSlash) => {
                self.bump();
                let tail = self.parse_steps(Axis::Descendant)?;
                node.children.push(tail);
            }
            Some(Token::Op(_)) => {
                let Some(Token::Op(op)) = self.bump() else {
                    unreachable!()
                };
                match self.bump() {
                    Some(Token::Name(value, _)) => {
                        node.comparison = Some(Comparison { op, value });
                    }
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.err(QueryErrorKind::UnexpectedToken(t.describe())));
                    }
                    None => return Err(self.err(QueryErrorKind::UnexpectedEnd)),
                }
            }
            _ => {}
        }
        Ok(node)
    }
}

/// Parses a query from its surface syntax.
///
/// # Errors
///
/// Returns [`ParseQueryError`] with a byte offset on malformed input.
///
/// # Examples
///
/// ```
/// use p2p_index_xpath::parse_query;
///
/// let q = parse_query("/article[author[first/John][last/Smith]][conf/INFOCOM]")?;
/// assert_eq!(q.root_name(), Some("article"));
/// # Ok::<(), p2p_index_xpath::ParseQueryError>(())
/// ```
pub fn parse_query(input: &str) -> Result<Query, ParseQueryError> {
    let tokens = tokenize(input)?;
    let mut p = QueryParser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let axis = match p.bump() {
        Some(Token::Slash) => Axis::Child,
        Some(Token::DoubleSlash) => Axis::Descendant,
        _ => {
            return Err(ParseQueryError {
                kind: QueryErrorKind::MissingLeadingSlash,
                offset: 0,
            })
        }
    };
    let root = p.parse_steps(axis)?;
    if let Some(t) = p.peek() {
        let desc = t.describe();
        return Err(p.err(QueryErrorKind::TrailingInput(desc)));
    }
    Ok(Query::from_root(root))
}

impl FromStr for Query {
    type Err = ParseQueryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_query(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_queries() {
        // The six queries of Figure 2 (q1 shortened syntax).
        for q in [
            "/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]",
            "/article[author[first/John][last/Smith]][conf/INFOCOM]",
            "/article/author[first/John][last/Smith]",
            "/article/title/TCP",
            "/article/conf/INFOCOM",
            "/article/author/last/Smith",
        ] {
            let parsed = parse_query(q).unwrap();
            assert_eq!(parsed.root_name(), Some("article"), "{q}");
        }
    }

    #[test]
    fn roundtrip_canonical_text() {
        for q in [
            "/article/author/last/Smith",
            "/article[author[first/John][last/Smith]][conf/INFOCOM]",
            "/article[year>=1990]",
            "/article//Smith",
            "/*/title/TCP",
            "/article/title/\"A Space Odyssey\"",
        ] {
            let once = parse_query(q).unwrap();
            let twice = parse_query(&once.to_string()).unwrap();
            assert_eq!(once, twice, "{q}");
            assert_eq!(once.to_string(), twice.to_string(), "{q}");
        }
    }

    #[test]
    fn predicate_order_is_normalized() {
        let a = parse_query("/a[x/1][y/2]").unwrap();
        let b = parse_query("/a[y/2][x/1]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn path_and_predicate_forms_coincide() {
        // `/a/b/c` and `/a[b/c]` denote the same tree pattern.
        let path = parse_query("/a/b/c").unwrap();
        let pred = parse_query("/a[b/c]").unwrap();
        assert_eq!(path, pred);
        // And so do nested mixes.
        let mix1 = parse_query("/a[b[c/d]]").unwrap();
        let mix2 = parse_query("/a/b/c/d").unwrap();
        assert_eq!(mix1, mix2);
    }

    #[test]
    fn comparisons_parse() {
        let q = parse_query("/article[year>=1990][year<2000]").unwrap();
        assert_eq!(q.top_branches().len(), 2);
        assert!(q.top_branches().iter().all(|b| b.comparison().is_some()));
        for op in ["=", "!=", "<", "<=", ">", ">=", "^=", "*="] {
            let q = parse_query(&format!("/a[y{op}5]")).unwrap();
            assert_eq!(q.top_branches()[0].comparison().unwrap().op.symbol(), op);
        }
    }

    #[test]
    fn comparison_binds_to_last_step() {
        let q = parse_query("/article[author/papers>=5]").unwrap();
        let author = &q.top_branches()[0];
        assert!(author.comparison().is_none());
        assert!(q.to_string().contains("papers>=5"));
    }

    #[test]
    fn quoted_values_with_spaces_and_escapes() {
        let q = parse_query(r#"/article/title/"A \"Quoted\" Title \\ here""#).unwrap();
        let text = q.to_string();
        assert!(text.contains(r#"A \"Quoted\" Title \\ here"#));
        assert_eq!(parse_query(&text).unwrap(), q);
    }

    #[test]
    fn descendant_axis() {
        let q = parse_query("//title").unwrap();
        assert_eq!(q.root().axis(), Axis::Descendant);
        let q = parse_query("/article//Smith").unwrap();
        assert_eq!(q.top_branches()[0].axis(), Axis::Descendant);
        let q = parse_query("/article[//Smith]").unwrap();
        assert_eq!(q.top_branches()[0].axis(), Axis::Descendant);
    }

    #[test]
    fn whitespace_tolerated() {
        let a = parse_query("/article[ author / last / Smith ][ conf / INFOCOM ]").unwrap();
        let b = parse_query("/article[author/last/Smith][conf/INFOCOM]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_missing_leading_slash() {
        let err = parse_query("article/title").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::MissingLeadingSlash);
    }

    #[test]
    fn error_unterminated_string() {
        let err = parse_query("/a/\"oops").unwrap_err();
        assert_eq!(err.kind, QueryErrorKind::UnterminatedString);
    }

    #[test]
    fn error_unexpected_end() {
        for src in ["/", "/a[", "/a[b", "/a/b/", "/a[y>="] {
            let err = parse_query(src).unwrap_err();
            assert_eq!(err.kind, QueryErrorKind::UnexpectedEnd, "{src}");
        }
    }

    #[test]
    fn error_unexpected_token() {
        let err = parse_query("/a[]").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::UnexpectedToken(_)));
        let err = parse_query("/a!b").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::UnexpectedToken(_)));
    }

    #[test]
    fn error_trailing_input() {
        let err = parse_query("/a]extra").unwrap_err();
        assert!(matches!(err.kind, QueryErrorKind::TrailingInput(_)));
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse_query("/article[§]").unwrap_err();
        assert_eq!(err.offset, "/article[".len());
    }

    #[test]
    fn from_str_works() {
        let q: Query = "/article/title/TCP".parse().unwrap();
        assert_eq!(q.to_string(), "/article/title/TCP");
        assert!("nope".parse::<Query>().is_err());
    }

    #[test]
    fn error_display() {
        let err = parse_query("/a[").unwrap_err();
        assert!(err.to_string().contains("unexpected end"));
        let err = parse_query("no").unwrap_err();
        assert!(err.to_string().contains("must start"));
    }

    #[test]
    fn bare_names_allow_common_punctuation() {
        let q = parse_query("/article/title/End-to-End_TCP:v2.0,final&more+'quoted'").unwrap();
        assert!(q
            .to_string()
            .contains("End-to-End_TCP:v2.0,final&more+'quoted'"));
    }
}
