//! Successor-list replica placement, shared by every layer that must
//! agree on *where* a key's copies live.
//!
//! The placement rule is the one Chord/DHash uses: a key belongs to its
//! clockwise successor on the identifier circle, and its replicas go to
//! the next `r - 1` distinct successors. Three independent components
//! need this rule and must never disagree:
//!
//! * [`RingDht`](crate::ring::RingDht) and
//!   [`ChordNetwork`](crate::chord::ChordNetwork) place primaries (and,
//!   for Chord, replica sets) with it;
//! * the networked client (`RemoteDht` in `p2p-index-net`) routes
//!   operations to replica members with it;
//! * the networked server's repair pass decides which peers should hold
//!   each locally-stored key with it.
//!
//! Client-side routing and server-side repair calling one function is
//! what makes "the client reads where the repair pass writes" a
//! structural property instead of a convention, so the function lives
//! here, below both.

use crate::key::Key;

/// Index into `ring` of the clockwise successor of `key`: the first
/// node at or after `key`, wrapping to the ring's first node.
///
/// `ring` must be sorted ascending and free of duplicates (the natural
/// state of a node-key list collected from a `BTreeMap`). Returns
/// `None` only for an empty ring.
pub fn successor_index(ring: &[Key], key: &Key) -> Option<usize> {
    if ring.is_empty() {
        return None;
    }
    let at = ring.partition_point(|node| node < key);
    Some(if at == ring.len() { 0 } else { at })
}

/// The replica set for `key` over `ring`: the clockwise successor
/// followed by the next `replicas - 1` distinct successors, in
/// placement order (primary first).
///
/// The count is clamped to `[1, ring.len()]`, so every node holds a
/// copy when the ring is smaller than the requested factor and a
/// degenerate `replicas == 0` request still yields the primary. A node
/// never appears twice: walking `min(replicas, n)` steps from the
/// successor cannot revisit a position. Returns an empty vector only
/// for an empty ring.
pub fn replica_keys(ring: &[Key], key: &Key, replicas: usize) -> Vec<Key> {
    let Some(first) = successor_index(ring, key) else {
        return Vec::new();
    };
    let count = replicas.clamp(1, ring.len());
    (0..count).map(|k| ring[(first + k) % ring.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(names: &[&str]) -> Vec<Key> {
        let mut ring: Vec<Key> = names.iter().map(|n| Key::hash_of(n)).collect();
        ring.sort();
        ring
    }

    #[test]
    fn empty_ring_places_nowhere() {
        assert_eq!(successor_index(&[], &Key::hash_of("k")), None);
        assert!(replica_keys(&[], &Key::hash_of("k"), 3).is_empty());
    }

    #[test]
    fn successor_wraps_past_the_last_node() {
        let ring = ring_of(&["node-0", "node-1", "node-2"]);
        // A key strictly after the highest node wraps to the first.
        let past_last = ring[2].wrapping_add(&Key::from_u64(1));
        assert_eq!(successor_index(&ring, &past_last), Some(0));
        // A node's own key is its own successor (the interval is (pred, self]).
        assert_eq!(successor_index(&ring, &ring[1]), Some(1));
    }

    #[test]
    fn replica_sets_are_contiguous_and_distinct() {
        let ring = ring_of(&["a", "b", "c", "d", "e"]);
        let key = Key::hash_of("some-key");
        let set = replica_keys(&ring, &key, 3);
        assert_eq!(set.len(), 3);
        let first = successor_index(&ring, &key).unwrap();
        for (k, member) in set.iter().enumerate() {
            assert_eq!(*member, ring[(first + k) % ring.len()]);
        }
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), set.len(), "no node appears twice");
    }

    #[test]
    fn factor_clamps_to_ring_size_and_to_one() {
        let ring = ring_of(&["a", "b"]);
        let key = Key::hash_of("k");
        assert_eq!(replica_keys(&ring, &key, 10).len(), 2);
        assert_eq!(replica_keys(&ring, &key, 0).len(), 1);
        assert_eq!(
            replica_keys(&ring, &key, 0)[0],
            ring[successor_index(&ring, &key).unwrap()]
        );
    }
}
