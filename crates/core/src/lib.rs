//! The primary contribution of *Data Indexing in Peer-to-Peer DHT Networks*
//! (Garcés-Erice, Felber, Biersack, Urvoy-Keller, Ross — ICDCS 2004):
//! hierarchical, distributed, query-to-query indexes layered over an
//! arbitrary DHT, with an adaptive shortcut cache.
//!
//! A DHT only supports exact-match lookups; this crate augments it so users
//! can locate data from *partial* information. Files are stored under the
//! key of their most specific query (MSD); indexes store mappings from
//! broad queries to more specific queries they cover; searching walks the
//! covering partial order downward until files are reached.
//!
//! * [`service`] — [`IndexService`]: publish/unpublish, single lookup
//!   steps, automated search with generalization, shortcut creation;
//! * [`session`] — [`SearchSession`]: the interactive, user-directed
//!   search mode;
//! * [`scheme`] — the index schemes of the paper's Fig. 8 and Fig. 4, plus
//!   custom schemes;
//! * [`cache`] — the adaptive distributed cache (multi/single/LRU);
//! * [`retry`] — retry policies (attempt budget, exponential backoff in
//!   simulated time, seeded jitter) applied to every DHT operation;
//! * [`target`] — the wire format of index entries;
//! * [`traffic`] — the byte-level traffic model of Fig. 12;
//! * [`fuzzy`] — misspelling correction against known descriptors (§VI).
//!
//! # Quick start
//!
//! ```
//! use p2p_index_core::{CachePolicy, IndexService, SimpleScheme};
//! use p2p_index_dht::RingDht;
//! use p2p_index_xmldoc::Descriptor;
//!
//! let mut service = IndexService::new(RingDht::with_named_nodes(100), CachePolicy::Lru(30));
//! let d = Descriptor::parse(
//!     "<article><author><first>John</first><last>Smith</last></author>\
//!      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
//! )?;
//! service.publish(&d, "x.pdf", &SimpleScheme)?;
//! let found = service.search(&"/article/title/TCP".parse()?)?;
//! assert_eq!(found.files[0].file, "x.pdf");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod fuzzy;
pub mod retry;
pub mod scheme;
pub mod service;
pub mod session;
pub mod target;
pub mod traffic;

pub use cache::{CachePolicy, ShortcutCache};
pub use fuzzy::FuzzyCorrector;
pub use retry::{RetryPolicy, RetryStats};
pub use scheme::{
    BiblioFields, ComplexScheme, CustomScheme, Fig4Scheme, FlatScheme, IndexScheme,
    InitialLetterScheme, KeywordTitleScheme, SimpleScheme,
};
pub use service::{Completeness, FileHit, IndexError, IndexService, SearchReport, StepResponse};
pub use session::{SearchSession, SessionReport, SessionState};
pub use target::{DecodeTargetError, IndexTarget};
pub use traffic::{Traffic, MESSAGE_HEADER_BYTES};
