//! A from-scratch SHA-1 implementation (FIPS 180-1 / RFC 3174).
//!
//! The paper maps descriptors and queries into the DHT key space with a hash
//! function `h(·)`; Chord historically uses SHA-1, so we implement it here
//! rather than pulling in a cryptography dependency. SHA-1 is *not* used for
//! any security purpose in this crate — it is purely the key-derivation
//! function of the simulated DHT, where its excellent output distribution is
//! what matters.
//!
//! # Examples
//!
//! ```
//! use p2p_index_dht::hash::sha1;
//!
//! let digest = sha1(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d",
//! );
//!
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

/// The size of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A SHA-1 digest: 160 bits, big-endian.
pub type Digest = [u8; DIGEST_LEN];

const H0: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];

/// Incremental SHA-1 hasher.
///
/// Feed input with [`Sha1::update`] and produce the digest with
/// [`Sha1::finalize`]. For one-shot hashing prefer the [`sha1`] free function.
///
/// # Examples
///
/// ```
/// use p2p_index_dht::hash::{sha1, Sha1};
///
/// let mut hasher = Sha1::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), sha1(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-full block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Completes the hash and returns the 20-byte digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // `update` would double-count the length bytes, so splice them in
        // manually and compress the final block.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Computes the SHA-1 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// use p2p_index_dht::hash::sha1;
/// assert_eq!(sha1(b""), sha1(b""));
/// assert_ne!(sha1(b"a"), sha1(b"b"));
/// ```
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Test vectors from RFC 3174 and FIPS 180-1.
    #[test]
    fn empty_message() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn rfc3174_repeated_vector() {
        // RFC 3174 TEST4: the 64-byte block "01234567…" repeated 10 times.
        let msg = b"0123456701234567012345670123456701234567012345670123456701234567".repeat(10);
        assert_eq!(hex(&sha1(&msg)), "dea356a2cddd90c7a7ecedc5ebb563934f460452");
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = sha1(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn update_with_many_small_pieces() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for byte in data.iter() {
            h.update(std::slice::from_ref(byte));
        }
        assert_eq!(h.finalize(), sha1(data));
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Padding edge cases: 55, 56, 57, 63, 64, 65-byte messages.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 121, 128] {
            let msg = vec![0xABu8; len];
            let one = sha1(&msg);
            let mut inc = Sha1::new();
            if len > 0 {
                let mid = len / 2;
                inc.update(&msg[..mid]);
                inc.update(&msg[mid..]);
            }
            assert_eq!(inc.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Sha1::default().finalize(), Sha1::new().finalize());
    }
}
