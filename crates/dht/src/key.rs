//! The 160-bit circular key space shared by nodes and data items.
//!
//! Chord (and the paper's indexing layer on top of it) places both node
//! identifiers and data keys on the same identifier circle of size `2^160`.
//! [`Key`] is an opaque big-endian 160-bit integer with the modular
//! arithmetic that ring routing needs: clockwise distance, interval
//! membership, and `+2^i` finger offsets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hash::{sha1, Digest, DIGEST_LEN};

/// Number of bits in the identifier space (SHA-1 output width).
pub const KEY_BITS: usize = 160;

/// A point on the `2^160` identifier circle.
///
/// Keys are ordered as big-endian unsigned integers; ring-aware comparisons
/// go through [`Key::in_interval`] and [`Key::distance_clockwise`] instead of
/// `Ord`, which has no "wrap-around" notion.
///
/// # Examples
///
/// ```
/// use p2p_index_dht::Key;
///
/// let k = Key::hash_of("article/author/Smith");
/// assert_eq!(k, Key::hash_of("article/author/Smith"));
/// assert_ne!(k, Key::hash_of("article/author/Doe"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key([u8; DIGEST_LEN]);

impl Key {
    /// The smallest key, `0`.
    pub const ZERO: Key = Key([0u8; DIGEST_LEN]);

    /// The largest key, `2^160 - 1`.
    pub const MAX: Key = Key([0xFFu8; DIGEST_LEN]);

    /// Derives a key from arbitrary bytes via SHA-1.
    pub fn hash_of_bytes(data: &[u8]) -> Key {
        Key(sha1(data))
    }

    /// Derives a key by hashing the UTF-8 bytes of `text`.
    ///
    /// This is the `k = h(d)` mapping of the paper: descriptors and queries
    /// are rendered to their canonical string form and hashed into the ring.
    pub fn hash_of(text: &str) -> Key {
        Key::hash_of_bytes(text.as_bytes())
    }

    /// Builds a key directly from a 20-byte digest.
    pub fn from_digest(digest: Digest) -> Key {
        Key(digest)
    }

    /// Returns the raw big-endian bytes of the key.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Builds a key from a `u64`, occupying the low-order bytes.
    ///
    /// Handy for tests and for synthetic node placement.
    pub fn from_u64(value: u64) -> Key {
        let mut bytes = [0u8; DIGEST_LEN];
        bytes[DIGEST_LEN - 8..].copy_from_slice(&value.to_be_bytes());
        Key(bytes)
    }

    /// Truncates the key to its low-order 64 bits.
    pub fn low_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[DIGEST_LEN - 8..]);
        u64::from_be_bytes(b)
    }

    /// Modular addition on the identifier circle.
    #[must_use]
    pub fn wrapping_add(&self, other: &Key) -> Key {
        let mut out = [0u8; DIGEST_LEN];
        let mut carry = 0u16;
        for i in (0..DIGEST_LEN).rev() {
            let sum = self.0[i] as u16 + other.0[i] as u16 + carry;
            out[i] = (sum & 0xFF) as u8;
            carry = sum >> 8;
        }
        Key(out)
    }

    /// Modular subtraction on the identifier circle (`self - other mod 2^160`).
    #[must_use]
    pub fn wrapping_sub(&self, other: &Key) -> Key {
        let mut out = [0u8; DIGEST_LEN];
        let mut borrow = 0i16;
        for i in (0..DIGEST_LEN).rev() {
            let diff = self.0[i] as i16 - other.0[i] as i16 - borrow;
            if diff < 0 {
                out[i] = (diff + 256) as u8;
                borrow = 1;
            } else {
                out[i] = diff as u8;
                borrow = 0;
            }
        }
        Key(out)
    }

    /// Returns `2^exp` as a key. Used for Chord finger offsets.
    ///
    /// # Panics
    ///
    /// Panics if `exp >= 160`.
    pub fn power_of_two(exp: usize) -> Key {
        assert!(
            exp < KEY_BITS,
            "exponent {exp} out of range for {KEY_BITS}-bit keys"
        );
        let mut bytes = [0u8; DIGEST_LEN];
        let byte = DIGEST_LEN - 1 - exp / 8;
        bytes[byte] = 1 << (exp % 8);
        Key(bytes)
    }

    /// The clockwise distance from `self` to `target` on the circle.
    ///
    /// Zero iff the keys are equal; otherwise in `1..2^160`.
    #[must_use]
    pub fn distance_clockwise(&self, target: &Key) -> Key {
        target.wrapping_sub(self)
    }

    /// The XOR of two keys — the distance metric of Kademlia.
    #[must_use]
    pub fn xor(&self, other: &Key) -> Key {
        let mut out = [0u8; DIGEST_LEN];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.0[i] ^ other.0[i];
        }
        Key(out)
    }

    /// Number of leading zero bits (0 for the top-bit-set keys, 160 for
    /// [`Key::ZERO`]). `159 - leading_zeros(a XOR b)` is the Kademlia
    /// bucket index of `b` relative to `a`.
    pub fn leading_zeros(&self) -> usize {
        let mut zeros = 0;
        for byte in &self.0 {
            if *byte == 0 {
                zeros += 8;
            } else {
                zeros += byte.leading_zeros() as usize;
                break;
            }
        }
        zeros
    }

    /// Tests membership in the half-open ring interval `(from, to]`.
    ///
    /// This is the interval Chord uses to decide key responsibility: a node
    /// `n` is responsible for every key in `(predecessor(n), n]`. The
    /// interval wraps around zero, and `(x, x]` denotes the *full* circle
    /// (every key is a member), matching Chord's single-node base case.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_dht::Key;
    ///
    /// let a = Key::from_u64(10);
    /// let b = Key::from_u64(20);
    /// assert!(Key::from_u64(15).in_interval(&a, &b));
    /// assert!(Key::from_u64(20).in_interval(&a, &b)); // closed at `to`
    /// assert!(!Key::from_u64(10).in_interval(&a, &b)); // open at `from`
    /// // Wrap-around: (20, 10] contains 5 and MAX but not 15.
    /// assert!(Key::from_u64(5).in_interval(&b, &a));
    /// assert!(!Key::from_u64(15).in_interval(&b, &a));
    /// ```
    pub fn in_interval(&self, from: &Key, to: &Key) -> bool {
        if from == to {
            // Full circle.
            return true;
        }
        // Clockwise distance comparison avoids case analysis on wrapping.
        let span = from.distance_clockwise(to);
        let offset = from.distance_clockwise(self);
        offset != Key::ZERO && offset <= span
    }

    /// Tests membership in the open ring interval `(from, to)`.
    pub fn in_open_interval(&self, from: &Key, to: &Key) -> bool {
        self != to && self.in_interval(from, to)
    }

    /// Renders the key as a full 40-character lowercase hex string.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviated form: first 8 hex digits are plenty for log output.
        write!(
            f,
            "Key({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<Digest> for Key {
    fn from(digest: Digest) -> Self {
        Key(digest)
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Key::from_u64(v).low_u64(), v);
        }
    }

    #[test]
    fn add_sub_inverse() {
        let a = Key::hash_of("a");
        let b = Key::hash_of("b");
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }

    #[test]
    fn add_carries_across_bytes() {
        let a = Key::from_u64(u64::MAX);
        let one = Key::from_u64(1);
        let sum = a.wrapping_add(&one);
        // 2^64 sets the 9th byte from the end.
        assert_eq!(sum.low_u64(), 0);
        assert_eq!(sum.as_bytes()[DIGEST_LEN - 9], 1);
    }

    #[test]
    fn max_plus_one_wraps_to_zero() {
        assert_eq!(Key::MAX.wrapping_add(&Key::from_u64(1)), Key::ZERO);
    }

    #[test]
    fn zero_minus_one_wraps_to_max() {
        assert_eq!(Key::ZERO.wrapping_sub(&Key::from_u64(1)), Key::MAX);
    }

    #[test]
    fn power_of_two_values() {
        assert_eq!(Key::power_of_two(0), Key::from_u64(1));
        assert_eq!(Key::power_of_two(1), Key::from_u64(2));
        assert_eq!(Key::power_of_two(63), Key::from_u64(1 << 63));
        // 2^159 sets the top bit of the first byte.
        assert_eq!(Key::power_of_two(159).as_bytes()[0], 0x80);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn power_of_two_out_of_range_panics() {
        let _ = Key::power_of_two(160);
    }

    #[test]
    fn interval_basic() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(20);
        assert!(Key::from_u64(11).in_interval(&a, &b));
        assert!(Key::from_u64(20).in_interval(&a, &b));
        assert!(!Key::from_u64(10).in_interval(&a, &b));
        assert!(!Key::from_u64(21).in_interval(&a, &b));
    }

    #[test]
    fn interval_wraps() {
        let a = Key::from_u64(20);
        let b = Key::from_u64(10);
        assert!(Key::from_u64(25).in_interval(&a, &b));
        assert!(Key::MAX.in_interval(&a, &b));
        assert!(Key::ZERO.in_interval(&a, &b));
        assert!(Key::from_u64(10).in_interval(&a, &b));
        assert!(!Key::from_u64(15).in_interval(&a, &b));
    }

    #[test]
    fn degenerate_interval_is_full_circle() {
        let a = Key::from_u64(7);
        assert!(Key::from_u64(7).in_interval(&a, &a));
        assert!(Key::from_u64(1234).in_interval(&a, &a));
        assert!(Key::MAX.in_interval(&a, &a));
    }

    #[test]
    fn open_interval_excludes_endpoint() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(20);
        assert!(!Key::from_u64(20).in_open_interval(&a, &b));
        assert!(Key::from_u64(19).in_open_interval(&a, &b));
    }

    #[test]
    fn xor_properties() {
        let a = Key::hash_of("a");
        let b = Key::hash_of("b");
        assert_eq!(a.xor(&a), Key::ZERO);
        assert_eq!(a.xor(&b), b.xor(&a));
        assert_eq!(a.xor(&b).xor(&b), a);
        assert_eq!(a.xor(&Key::ZERO), a);
    }

    #[test]
    fn leading_zeros_counts() {
        assert_eq!(Key::ZERO.leading_zeros(), 160);
        assert_eq!(Key::MAX.leading_zeros(), 0);
        assert_eq!(Key::from_u64(1).leading_zeros(), 159);
        assert_eq!(Key::from_u64(2).leading_zeros(), 158);
        assert_eq!(Key::power_of_two(159).leading_zeros(), 0);
        assert_eq!(Key::power_of_two(100).leading_zeros(), 59);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let k = Key::hash_of("x");
        assert_eq!(k.to_string().len(), 40);
        assert!(format!("{k:?}").starts_with("Key("));
    }

    #[test]
    fn distance_zero_iff_equal() {
        let a = Key::hash_of("same");
        assert_eq!(a.distance_clockwise(&a), Key::ZERO);
        let b = Key::hash_of("other");
        assert_ne!(a.distance_clockwise(&b), Key::ZERO);
    }

    fn arb_key() -> impl Strategy<Value = Key> {
        proptest::array::uniform20(any::<u8>()).prop_map(Key)
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        }

        #[test]
        fn prop_sub_is_inverse_of_add(a in arb_key(), b in arb_key()) {
            prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        }

        #[test]
        fn prop_distance_triangle_on_circle(a in arb_key(), b in arb_key(), c in arb_key()) {
            // Going a->b->c clockwise covers the circle the same as a->c plus
            // possibly whole laps; distances are mod 2^160 so the sum of legs
            // equals the direct distance exactly (mod the circle).
            let ab = a.distance_clockwise(&b);
            let bc = b.distance_clockwise(&c);
            let ac = a.distance_clockwise(&c);
            prop_assert_eq!(ab.wrapping_add(&bc), ac);
        }

        #[test]
        fn prop_interval_partition(x in arb_key(), a in arb_key(), b in arb_key()) {
            // For a != b, every x is in exactly one of (a, b] and (b, a].
            prop_assume!(a != b);
            let left = x.in_interval(&a, &b);
            let right = x.in_interval(&b, &a);
            prop_assert!(left ^ right);
        }

        #[test]
        fn prop_hash_is_deterministic(s in ".*") {
            prop_assert_eq!(Key::hash_of(&s), Key::hash_of(&s));
        }
    }
}
