//! Property tests for the entry split/balance decorator.
//!
//! [`SplitDht`] rewrites the physical layout of oversized and overheated
//! entries — pagination onto deterministic child keys, read mirrors on
//! clockwise successors — while promising that the *logical* key/value
//! contract of [`Dht`] is untouched. That promise is what lets the index
//! layer and the networked cluster wrap any substrate without knowing the
//! subsystem exists, so it is pinned here as properties:
//!
//! * **Equivalence** — an arbitrary op script through `SplitDht<RingDht>`
//!   is observably identical (stored/removed flags, sorted value sets,
//!   batched reads, `&self` reads) to the same script through a plain
//!   `RingDht`, at every mitigation setting including observe-only.
//! * **Budget** — after any script, no non-mirror physical entry holds
//!   more value bytes than the page budget allows: parents stay within
//!   budget (plus the marker), pages overshoot by at most one value.
//! * **Determinism** — `page_key` is a pure function, collision-free
//!   across `(parent, page)` pairs.
//! * **Portability** — split-then-read equals unsplit-read on every
//!   substrate (ring, Chord, Kademlia, Pastry, and the TCP-backed
//!   loopback cluster).
//!
//! Each property has a deterministic companion driven by a seeded
//! [`SplitMix64`] sequence, so the invariants are exercised on every test
//! run even where proptest is unavailable, and with a pinned
//! `PROPTEST_RNG_SEED` in CI.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use bytes::Bytes;
use p2p_index_dht::{
    page_key, BalanceConfig, ChordNetwork, Dht, DhtOp, KademliaNetwork, Key, PastryNetwork,
    RingDht, SplitDht, SplitMix64,
};
use p2p_index_net::LoopbackCluster;
use proptest::prelude::*;

/// Logical keys the scripts operate on: few enough that entries grow past
/// the budget and gets repeat past the hot threshold.
const POOL: usize = 6;

/// Longest value [`value`] can produce, in bytes.
const MAX_VALUE_LEN: usize = 4 + 16 + 4;

fn pool_key(i: usize) -> Key {
    Key::hash_of(&format!("logical-{i}"))
}

/// One of 32 distinct values with lengths spread over `8..=24` bytes, so
/// duplicate puts and removes of absent values both occur naturally.
fn value(id: u64) -> Bytes {
    let id = id % 32;
    let pad = (id as usize * 5) % 17;
    Bytes::from(format!("v{id:02}:{:x<pad$}", "", pad = pad + 4))
}

#[derive(Debug, Clone)]
enum ScriptOp {
    Put(usize, Bytes),
    Get(usize),
    Remove(usize, Bytes),
}

/// A put-heavy script over the key pool (puts grow entries into splits,
/// gets heat keys toward promotion, removes hit present and absent
/// values alike).
fn script_from(rng: &mut SplitMix64, ops: usize) -> Vec<ScriptOp> {
    (0..ops)
        .map(|_| {
            let k = (rng.next_u64() % POOL as u64) as usize;
            match rng.next_u64() % 10 {
                0..=5 => ScriptOp::Put(k, value(rng.next_u64())),
                6..=7 => ScriptOp::Get(k),
                _ => ScriptOp::Remove(k, value(rng.next_u64())),
            }
        })
        .collect()
}

fn sorted(mut values: Vec<Bytes>) -> Vec<Bytes> {
    values.sort();
    values
}

fn exec_on(dht: &mut impl Dht, op: DhtOp) -> p2p_index_dht::DhtResponse {
    dht.execute(op).expect("op on live in-process network")
}

/// Runs `script` through a decorated ring and a plain twin ring,
/// asserting observable equivalence at every step and at the end —
/// unary, batched, and `&self` reads.
fn check_equivalence(script: &[ScriptOp], config: BalanceConfig) {
    let mut split = SplitDht::new(RingDht::with_named_nodes(24), config);
    let mut plain = RingDht::with_named_nodes(24);
    for (i, op) in script.iter().enumerate() {
        match op {
            ScriptOp::Put(k, v) => {
                let put = |v: &Bytes| DhtOp::Put {
                    key: pool_key(*k),
                    value: v.clone(),
                };
                assert_eq!(
                    exec_on(&mut split, put(v)).into_stored(),
                    exec_on(&mut plain, put(v)).into_stored(),
                    "op {i}: stored flag diverged ({config:?})"
                );
            }
            ScriptOp::Get(k) => {
                assert_eq!(
                    sorted(exec_on(&mut split, DhtOp::Get(pool_key(*k))).into_values()),
                    sorted(exec_on(&mut plain, DhtOp::Get(pool_key(*k))).into_values()),
                    "op {i}: value set diverged ({config:?})"
                );
            }
            ScriptOp::Remove(k, v) => {
                let remove = |v: &Bytes| DhtOp::Remove {
                    key: pool_key(*k),
                    value: v.clone(),
                };
                assert_eq!(
                    exec_on(&mut split, remove(v)).into_removed(),
                    exec_on(&mut plain, remove(v)).into_removed(),
                    "op {i}: removed flag diverged ({config:?})"
                );
            }
        }
    }
    // Final state: every pool key reads equal through every entry point.
    for i in 0..POOL {
        let key = pool_key(i);
        assert_eq!(
            sorted(exec_on(&mut split, DhtOp::Get(key)).into_values()),
            sorted(exec_on(&mut plain, DhtOp::Get(key)).into_values()),
            "final unary get of key {i} diverged ({config:?})"
        );
        // The accounting-free `&self` read reassembles too.
        assert_eq!(
            sorted(split.get(&key)),
            sorted(plain.get(&key)),
            "final &self get of key {i} diverged ({config:?})"
        );
    }
    // A read-only batch goes down the pipelined two-wave path.
    let batch: Vec<DhtOp> = (0..POOL).map(|i| DhtOp::Get(pool_key(i))).collect();
    let batched = split.execute_many(batch);
    for (i, response) in batched.into_iter().enumerate() {
        assert_eq!(
            sorted(response.expect("batched get").into_values()),
            sorted(exec_on(&mut plain, DhtOp::Get(pool_key(i))).into_values()),
            "batched get of key {i} diverged ({config:?})"
        );
    }
}

/// Runs a put-only variant of `script` (splitting active, fan-out off)
/// and asserts every non-mirror physical entry respects the budget.
fn check_budget(script: &[ScriptOp], budget: usize) {
    assert!(budget > 0, "budget property needs splitting enabled");
    let mut split = SplitDht::new(
        RingDht::with_named_nodes(24),
        BalanceConfig::mitigating(budget, 0, 0),
    );
    for op in script {
        match op {
            ScriptOp::Put(k, v) => {
                exec_on(
                    &mut split,
                    DhtOp::Put {
                        key: pool_key(*k),
                        value: v.clone(),
                    },
                );
            }
            ScriptOp::Get(k) => {
                exec_on(&mut split, DhtOp::Get(pool_key(*k)));
            }
            ScriptOp::Remove(k, v) => {
                exec_on(
                    &mut split,
                    DhtOp::Remove {
                        key: pool_key(*k),
                        value: v.clone(),
                    },
                );
            }
        }
    }
    // Classify physical keys: page keys may overshoot by at most one
    // value (a page closes the first time it reaches the budget), parent
    // and untouched entries must stay within budget (markers excluded).
    let page_keys: HashSet<Key> = (0..POOL)
        .flat_map(|i| (1..=64u32).map(move |p| page_key(&pool_key(i), p)))
        .collect();
    for (key, values) in split.inner().entries() {
        let payload: usize = values
            .iter()
            .filter(|v| !v.starts_with(b"P:"))
            .map(|v| v.len())
            .sum();
        if page_keys.contains(&key) {
            assert!(
                payload < budget + MAX_VALUE_LEN,
                "page {key} holds {payload} B against budget {budget}"
            );
        } else {
            assert!(
                payload <= budget,
                "entry {key} holds {payload} B against budget {budget}"
            );
        }
    }
}

/// Applies `script` to a model map with set semantics and returns the
/// expected final value set per pool key. Independent oracle: no DHT
/// code involved.
fn model_final_state(script: &[ScriptOp]) -> BTreeMap<usize, BTreeSet<Bytes>> {
    let mut model: BTreeMap<usize, BTreeSet<Bytes>> = BTreeMap::new();
    for op in script {
        match op {
            ScriptOp::Put(k, v) => {
                model.entry(*k).or_default().insert(v.clone());
            }
            ScriptOp::Get(_) => {}
            ScriptOp::Remove(k, v) => {
                model.entry(*k).or_default().remove(v);
            }
        }
    }
    model
}

/// Runs `script` through a decorated substrate and asserts the final
/// logical state matches the model oracle exactly.
fn check_substrate<D: Dht>(name: &str, inner: D, script: &[ScriptOp], config: BalanceConfig) {
    let mut split = SplitDht::new(inner, config);
    for op in script {
        match op {
            ScriptOp::Put(k, v) => {
                exec_on(
                    &mut split,
                    DhtOp::Put {
                        key: pool_key(*k),
                        value: v.clone(),
                    },
                );
            }
            ScriptOp::Get(k) => {
                exec_on(&mut split, DhtOp::Get(pool_key(*k)));
            }
            ScriptOp::Remove(k, v) => {
                exec_on(
                    &mut split,
                    DhtOp::Remove {
                        key: pool_key(*k),
                        value: v.clone(),
                    },
                );
            }
        }
    }
    let model = model_final_state(script);
    for i in 0..POOL {
        let expect: Vec<Bytes> = model
            .get(&i)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        assert_eq!(
            sorted(exec_on(&mut split, DhtOp::Get(pool_key(i))).into_values()),
            expect,
            "{name}: key {i} diverged from the model ({config:?})"
        );
    }
}

fn node_keys(n: usize) -> Vec<Key> {
    (0..n).map(|i| Key::hash_of(&format!("node-{i}"))).collect()
}

/// A mitigation setting from seeded randomness, observe-only included.
fn config_from(rng: &mut SplitMix64) -> BalanceConfig {
    match rng.next_u64() % 4 {
        0 => BalanceConfig::observe_only(),
        1 => BalanceConfig::mitigating(32 + (rng.next_u64() % 200) as usize, 0, 0),
        2 => BalanceConfig::mitigating(
            0,
            3 + rng.next_u64() % 10,
            1 + (rng.next_u64() % 5) as usize,
        ),
        _ => BalanceConfig::mitigating(
            32 + (rng.next_u64() % 200) as usize,
            3 + rng.next_u64() % 10,
            1 + (rng.next_u64() % 5) as usize,
        ),
    }
}

proptest! {
    /// Arbitrary scripts are observably identical through the decorator
    /// and the plain ring, at arbitrary mitigation settings.
    #[test]
    fn prop_split_dht_is_observably_plain(
        seed in any::<u64>(),
        ops in 10usize..160,
    ) {
        let mut rng = SplitMix64::new(seed);
        let config = config_from(&mut rng);
        let script = script_from(&mut rng, ops);
        check_equivalence(&script, config);
    }

    /// No physical entry ever outgrows the page budget (fan-out off so
    /// mirror entries, which aggregate whole logical sets, don't mix in).
    #[test]
    fn prop_pages_respect_the_budget(
        seed in any::<u64>(),
        ops in 10usize..160,
        budget in 24usize..256,
    ) {
        let mut rng = SplitMix64::new(seed);
        let script = script_from(&mut rng, ops);
        check_budget(&script, budget);
    }

    /// Split entries read back identically on every in-process substrate.
    #[test]
    fn prop_split_reads_are_substrate_independent(
        seed in any::<u64>(),
        ops in 10usize..120,
    ) {
        let mut rng = SplitMix64::new(seed);
        let script = script_from(&mut rng, ops);
        let config = BalanceConfig::mitigating(48, 4, 3);
        check_substrate("ring", RingDht::from_ids(node_keys(16)), &script, config);
        check_substrate("chord", ChordNetwork::with_perfect_tables(node_keys(16)), &script, config);
        check_substrate("kademlia", KademliaNetwork::with_nodes(node_keys(16)), &script, config);
        check_substrate("pastry", PastryNetwork::with_perfect_tables(node_keys(16)), &script, config);
    }
}

/// Deterministic companion to [`prop_split_dht_is_observably_plain`]:
/// 40 seeded scripts across the whole mitigation matrix.
#[test]
fn split_dht_matches_plain_ring_on_seeded_scripts() {
    let mut rng = SplitMix64::new(0x51117);
    for _ in 0..40 {
        let config = config_from(&mut rng);
        let script = script_from(&mut rng, 140);
        check_equivalence(&script, config);
    }
}

/// Deterministic companion to [`prop_pages_respect_the_budget`].
#[test]
fn page_sizes_respect_the_budget_on_seeded_scripts() {
    let mut rng = SplitMix64::new(0xb0d9e7);
    for round in 0..30 {
        let budget = 24 + (round * 13) % 200;
        let script = script_from(&mut rng, 140);
        check_budget(&script, budget);
    }
}

/// Deterministic companion to
/// [`prop_split_reads_are_substrate_independent`].
#[test]
fn split_then_read_equals_unsplit_read_on_every_substrate() {
    let mut rng = SplitMix64::new(0x5eed5);
    for _ in 0..6 {
        let script = script_from(&mut rng, 100);
        let config = BalanceConfig::mitigating(48, 4, 3);
        check_substrate("ring", RingDht::from_ids(node_keys(16)), &script, config);
        check_substrate(
            "chord",
            ChordNetwork::with_perfect_tables(node_keys(16)),
            &script,
            config,
        );
        check_substrate(
            "kademlia",
            KademliaNetwork::with_nodes(node_keys(16)),
            &script,
            config,
        );
        check_substrate(
            "pastry",
            PastryNetwork::with_perfect_tables(node_keys(16)),
            &script,
            config,
        );
    }
}

/// Page keys are a pure, collision-free function of `(parent, page)`.
#[test]
fn page_keys_are_deterministic_and_collision_free() {
    let mut seen: HashSet<Key> = HashSet::new();
    for i in 0..POOL {
        let parent = pool_key(i);
        assert!(seen.insert(parent), "parent key collided");
        for page in 1..=64u32 {
            let child = page_key(&parent, page);
            assert_eq!(child, page_key(&parent, page), "page_key must be pure");
            assert!(
                seen.insert(child),
                "page key collided for parent {i}, page {page}"
            );
        }
    }
}

/// The wire path: a split entry written through a decorated TCP-backed
/// loopback cluster reads back whole — unary, batched, and from a fresh
/// decorator that discovers the split over the wire.
#[test]
fn split_reads_reassemble_over_the_wire() {
    let mut rng = SplitMix64::new(0x7c9);
    let script: Vec<ScriptOp> = (0..60)
        .map(|_| ScriptOp::Put(0, value(rng.next_u64())))
        .collect();
    let config = BalanceConfig::mitigating(48, 0, 0);
    let cluster = LoopbackCluster::start_ring(3).expect("loopback cluster binds");
    let mut split = SplitDht::new(cluster.client(), config);
    for op in &script {
        if let ScriptOp::Put(k, v) = op {
            exec_on(
                &mut split,
                DhtOp::Put {
                    key: pool_key(*k),
                    value: v.clone(),
                },
            );
        }
    }
    let expect: Vec<Bytes> = model_final_state(&script)
        .remove(&0)
        .map(|s| s.into_iter().collect())
        .unwrap_or_default();
    assert!(
        split.split_key_count() > 0,
        "script must actually split the entry"
    );
    assert_eq!(
        sorted(exec_on(&mut split, DhtOp::Get(pool_key(0))).into_values()),
        expect,
        "unary wire read lost or duplicated values"
    );
    let batched = split.execute_many(vec![DhtOp::Get(pool_key(0))]);
    assert_eq!(
        sorted(
            batched
                .into_iter()
                .next()
                .expect("one op")
                .expect("ok")
                .into_values()
        ),
        expect,
        "batched wire read lost or duplicated values"
    );
    // A second client (fresh decorator, no local split state) over the
    // same servers discovers the marker and reassembles.
    let mut fresh = SplitDht::new(cluster.client(), config);
    assert_eq!(
        sorted(exec_on(&mut fresh, DhtOp::Get(pool_key(0))).into_values()),
        expect,
        "fresh decorator failed to reassemble over the wire"
    );
}
