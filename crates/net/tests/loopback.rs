//! End-to-end loopback integration: the whole indexing stack over TCP.
//!
//! These tests are the crate's reason to exist, condensed: an
//! `IndexService<RemoteDht>` talking to real `dhtd` servers must behave
//! *identically* to the same service over an in-process `RingDht` — same
//! files found, same interaction counts, same message accounting — and
//! the retry layer must absorb faults injected behind the server without
//! the client knowing sockets are involved.

use p2p_index_core::{CachePolicy, IndexService, RetryPolicy, SimpleScheme};
use p2p_index_dht::{Dht, RingDht};
use p2p_index_net::{ClusterDht, LoopbackCluster, RemoteDhtConfig};
use p2p_index_obs::MetricsRegistry;
use p2p_index_xmldoc::Descriptor;
use p2p_index_xpath::Query;

fn corpus() -> Vec<(Descriptor, String)> {
    let rows = [
        ("John", "Smith", "TCP", "SIGCOMM", "1989"),
        ("Jane", "Smith", "Indexing", "ICDCS", "2004"),
        ("Ada", "Lovelace", "Notes", "LMS", "1843"),
        ("Alan", "Turing", "Machines", "LMS", "1936"),
        ("Paul", "Baran", "Packets", "SIGCOMM", "1989"),
        ("Grace", "Hopper", "Compilers", "ICDCS", "2004"),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, (first, last, title, conf, year))| {
            let xml = format!(
                "<article><author><first>{first}</first><last>{last}</last></author>\
                 <title>{title}</title><conf>{conf}</conf><year>{year}</year></article>"
            );
            (
                Descriptor::parse(&xml).expect("corpus XML parses"),
                format!("file-{i}.pdf"),
            )
        })
        .collect()
}

fn queries() -> Vec<Query> {
    [
        "/article/author[first/John][last/Smith]",
        "/article/title/Notes",
        "/article/conf/SIGCOMM",
        "/article/year/2004",
        "/article/author/last/Smith",
    ]
    .iter()
    .map(|q| q.parse().expect("test query parses"))
    .collect()
}

/// Publishes the corpus and runs the query set, returning per-query
/// `(sorted files, interactions, generalization steps)` plus final stats.
fn drive<D: Dht>(dht: D) -> (Vec<(Vec<String>, u32, u32)>, p2p_index_dht::DhtStats) {
    let mut service = IndexService::new(dht, CachePolicy::Multi);
    for (descriptor, file) in corpus() {
        service
            .publish(&descriptor, &file, &SimpleScheme)
            .expect("publish on a healthy network");
    }
    let mut out = Vec::new();
    for query in queries() {
        let report = service.search(&query).expect("search on a healthy network");
        let mut files: Vec<String> = report.files.iter().map(|f| f.file.clone()).collect();
        files.sort();
        out.push((files, report.interactions, report.generalization_steps));
    }
    (out, service.dht().stats())
}

#[test]
fn index_service_over_sockets_equals_in_process() {
    let cluster = ClusterDht::start_ring(5).expect("loopback cluster");
    let (remote_reports, remote_stats) = drive(cluster);
    let (local_reports, local_stats) = drive(RingDht::with_named_nodes(5));
    assert_eq!(
        remote_reports, local_reports,
        "every query must find the same files with the same interaction counts"
    );
    assert_eq!(
        remote_stats, local_stats,
        "message accounting must be identical over sockets"
    );
}

#[test]
fn net_frames_cross_check_message_accounting() {
    // The pinned convention: every *completed op* counts as 2 messages,
    // whether it travelled alone (one Request/Response frame pair) or
    // pipelined inside a Batch/BatchReply pair with its siblings. So the
    // net.* frame counters, the net.batch.* breakout, and the dht
    // messages counter must agree exactly.
    let cluster = LoopbackCluster::start_ring(3).expect("loopback cluster");
    let metrics = MetricsRegistry::new();
    let mut client = cluster.client();
    client.set_metrics(metrics.clone());

    let mut service = IndexService::new(client, CachePolicy::None);
    for (descriptor, file) in corpus() {
        service
            .publish(&descriptor, &file, &SimpleScheme)
            .expect("publish on a healthy network");
    }
    for query in queries() {
        service.search(&query).expect("search on a healthy network");
    }

    let frames_out = metrics.counter("net.frames_out");
    let frames_in = metrics.counter("net.frames_in");
    let batch_out = metrics.counter("net.batch.frames_out");
    let batch_in = metrics.counter("net.batch.frames_in");
    let batch_ops = metrics.counter("net.batch.ops");
    let messages = service.dht().stats().messages;
    assert!(frames_out > 0, "the workload must actually hit the wire");
    assert!(
        batch_ops > 0,
        "the multi-get fast path must have pipelined at least one batch"
    );
    assert_eq!(frames_out, frames_in, "every request frame got a response");
    assert_eq!(
        batch_out, batch_in,
        "every batch frame got a batch reply frame"
    );
    let unary_out = frames_out - batch_out;
    let unary_in = frames_in - batch_in;
    assert_eq!(
        unary_out + unary_in + 2 * batch_ops,
        messages,
        "2 messages per completed op: frames and message accounting must agree"
    );
    assert_eq!(
        metrics.counter("dht.messages"),
        messages,
        "registry mirrors the substrate's own accounting"
    );
    assert_eq!(
        cluster.ops_served(),
        unary_out + batch_ops,
        "servers answered exactly the ops the client sent"
    );
    cluster.shutdown();
}

#[test]
fn retry_policy_absorbs_faults_injected_behind_the_server() {
    // 20% loss injected *server-side*: the client sees typed DhtError
    // frames come back over the wire and its RetryPolicy — the same one
    // that handles in-process FaultyDht — retries them to completion.
    let cluster = ClusterDht::start_lossy_ring(3, 0xfau64, 0.2).expect("loopback cluster");
    let mut service =
        IndexService::with_retry(cluster, CachePolicy::Single, RetryPolicy::with_budget(5, 8));
    for (descriptor, file) in corpus() {
        service
            .publish(&descriptor, &file, &SimpleScheme)
            .expect("publish survives 20% loss under an 8-attempt budget");
    }
    let mut found = 0usize;
    for query in queries() {
        found += service
            .search(&query)
            .expect("search survives 20% loss under an 8-attempt budget")
            .files
            .len();
    }
    assert!(found > 0, "searches must still locate files under loss");
    let stats = service.retry_stats();
    assert!(
        stats.retries > 0,
        "20% loss must have forced at least one retry (got {stats:?})"
    );
    assert_eq!(stats.gave_up, 0, "the budget was generous enough");
}

#[test]
fn transport_timeouts_are_retried_like_any_transient_fault() {
    // Point one member at a dead port: every op routed there fails at the
    // transport layer, maps to DhtError::Timeout, and burns its attempt
    // budget — proving socket failures flow through the same retry path.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let members = p2p_index_net::RemoteDht::named_members(&[dead]);
    let client = p2p_index_net::RemoteDht::connect(
        members,
        RemoteDhtConfig {
            connect_timeout: std::time::Duration::from_millis(100),
            ..RemoteDhtConfig::default()
        },
    );
    let mut service =
        IndexService::with_retry(client, CachePolicy::None, RetryPolicy::with_budget(1, 3));
    let (descriptor, file) = corpus().remove(0);
    let err = service
        .publish(&descriptor, &file, &SimpleScheme)
        .expect_err("a dead cluster cannot accept publishes");
    let _ = err;
    let stats = service.retry_stats();
    assert!(stats.retries > 0, "transport faults must be retried");
    assert!(stats.gave_up > 0, "the budget must eventually exhaust");
}
