//! # p2p-index
//!
//! A complete implementation of *Data Indexing in Peer-to-Peer DHT
//! Networks* (L. Garcés-Erice, P.A. Felber, E.W. Biersack,
//! G. Urvoy-Keller, K.W. Ross — ICDCS 2004): hierarchical, distributed,
//! query-to-query indexes that let users locate data in a DHT from
//! *partial* information, plus every substrate the paper depends on and
//! the full evaluation harness.
//!
//! This crate is the facade: it re-exports the layered workspace crates so
//! applications need a single dependency.
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Substrate | [`dht`] | SHA-1, 160-bit key space, Chord protocol simulation, consistent-hash ring, multi-value storage, fault injection (`FaultyDht`) |
//! | Data model | [`xmldoc`] | XML descriptors: tree, parser, canonical form |
//! | Query language | [`xpath`] | XPath-subset parsing, evaluation, covering relation `⊒` |
//! | **Contribution** | [`index`] | index schemes, publish/search, generalization, adaptive shortcut cache |
//! | Workload | [`workload`] | synthetic bibliographic corpus, power-law popularity, query generation |
//! | Evaluation | [`sim`] | the §V simulator and per-figure experiment runners |
//!
//! # Quick start
//!
//! ```
//! use p2p_index::prelude::*;
//!
//! // A 100-node peer-to-peer network with LRU shortcut caches.
//! let dht = RingDht::with_named_nodes(100);
//! let mut service = IndexService::new(dht, CachePolicy::Lru(30));
//!
//! // Publish a file under its descriptor, indexed with the simple scheme.
//! let descriptor = Descriptor::parse(
//!     "<article><author><first>John</first><last>Smith</last></author>\
//!      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
//! )?;
//! service.publish(&descriptor, "x.pdf", &SimpleScheme)?;
//!
//! // Locate it from partial information.
//! let query: Query = "/article/title/TCP".parse()?;
//! let report = service.search(&query)?;
//! assert_eq!(report.files[0].file, "x.pdf");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for larger scenarios (an interactive-style
//! bibliographic search session, adaptive caching under a skewed workload,
//! and churn on the Chord substrate), and the `repro` binary in
//! `p2p-index-sim` for regenerating every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The indexing layer (re-export of `p2p-index-core`).
pub use p2p_index_core as index;
/// DHT substrates (re-export of `p2p-index-dht`).
pub use p2p_index_dht as dht;
/// Networked DHT nodes: wire codec, dhtd server, remote client
/// (re-export of `p2p-index-net`).
pub use p2p_index_net as net;
/// The evaluation harness (re-export of `p2p-index-sim`).
pub use p2p_index_sim as sim;
/// Workload models (re-export of `p2p-index-workload`).
pub use p2p_index_workload as workload;
/// XML descriptors (re-export of `p2p-index-xmldoc`).
pub use p2p_index_xmldoc as xmldoc;
/// The query language (re-export of `p2p-index-xpath`).
pub use p2p_index_xpath as xpath;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use p2p_index_core::{
        CachePolicy, Completeness, ComplexScheme, CustomScheme, Fig4Scheme, FlatScheme,
        FuzzyCorrector, IndexError, IndexScheme, IndexService, IndexTarget, InitialLetterScheme,
        KeywordTitleScheme, RetryPolicy, SearchReport, SearchSession, SessionReport, SessionState,
        SimpleScheme,
    };
    pub use p2p_index_dht::{
        ChordNetwork, Dht, DhtError, DhtOp, DhtResponse, FaultConfig, FaultyDht, KademliaNetwork,
        Key, NodeChurn, NodeId, PastryNetwork, RingDht,
    };
    pub use p2p_index_workload::{
        Corpus, CorpusConfig, QueryGenerator, QueryStructure, StructureMix,
    };
    pub use p2p_index_xmldoc::{Descriptor, Element};
    pub use p2p_index_xpath::{parse_query, CmpOp, Query, QueryBuilder};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut service = IndexService::new(RingDht::with_named_nodes(10), CachePolicy::None);
        let d = Descriptor::parse("<article><title>X</title><year>2000</year></article>")
            .expect("valid descriptor");
        service
            .publish(&d, "x.pdf", &SimpleScheme)
            .expect("publish succeeds");
        let q: Query = "/article/title/X".parse().expect("valid query");
        let report = service.search(&q).expect("search succeeds");
        assert_eq!(report.files.len(), 1);
    }
}
