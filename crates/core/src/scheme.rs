//! Index schemes: which queries a file is indexed under.
//!
//! "The choice of the queries under which a file is indexed is arbitrary,
//! as long as the covering relation holds" (§IV-C). A scheme turns a
//! descriptor into a set of *index edges* `(q ; qᵢ)` with `q ⊒ qᵢ`, the
//! last edge of every chain ending at the MSD.
//!
//! This module implements the three schemes the paper evaluates (Fig. 8) —
//! [`SimpleScheme`], [`FlatScheme`], [`ComplexScheme`] — plus the deeper
//! hierarchical scheme of Fig. 4 ([`Fig4Scheme`], with its *Last name*
//! level) and an escape hatch for user-defined schemes ([`CustomScheme`]).
//!
//! All built-ins understand the bibliographic descriptor schema of Fig. 1
//! (`author/first`, `author/last`, `title`, `conf`, `year`); descriptors
//! may carry several `author` elements, in which case per-author index
//! entries are generated.

use p2p_index_xmldoc::Descriptor;
use p2p_index_xpath::{Query, QueryBuilder};

/// The bibliographic fields a scheme indexes (extracted from a descriptor).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BiblioFields {
    /// Root element name (normally `article`).
    pub root: String,
    /// All `(first, last)` author name pairs.
    pub authors: Vec<(String, String)>,
    /// The title text.
    pub title: Option<String>,
    /// The conference/journal text.
    pub conf: Option<String>,
    /// The publication year text.
    pub year: Option<String>,
}

impl BiblioFields {
    /// Extracts the indexable fields from a descriptor.
    pub fn of(descriptor: &Descriptor) -> BiblioFields {
        let root = descriptor.root();
        let authors = root
            .find_all("author")
            .filter_map(|a| {
                let first = a.find("first")?.text();
                let last = a.find("last")?.text();
                (!first.is_empty() && !last.is_empty()).then_some((first, last))
            })
            .collect();
        let field = |name: &str| root.find(name).map(|e| e.text()).filter(|t| !t.is_empty());
        BiblioFields {
            root: root.name().to_string(),
            authors,
            title: field("title"),
            conf: field("conf"),
            year: field("year"),
        }
    }

    /// `/root/author[first/F][last/L]`
    pub fn author_query(&self, author: &(String, String)) -> Query {
        QueryBuilder::new(&self.root)
            .value("author/first", &author.0)
            .value("author/last", &author.1)
            .build()
    }

    /// `/root/author/last/L` — the *Last name* index level of Fig. 4.
    pub fn last_name_query(&self, author: &(String, String)) -> Query {
        QueryBuilder::new(&self.root)
            .value("author/last", &author.1)
            .build()
    }

    /// `/root/title/T`
    pub fn title_query(&self) -> Option<Query> {
        let t = self.title.as_ref()?;
        Some(QueryBuilder::new(&self.root).value("title", t).build())
    }

    /// `/root/conf/C`
    pub fn conf_query(&self) -> Option<Query> {
        let c = self.conf.as_ref()?;
        Some(QueryBuilder::new(&self.root).value("conf", c).build())
    }

    /// `/root/year/Y`
    pub fn year_query(&self) -> Option<Query> {
        let y = self.year.as_ref()?;
        Some(QueryBuilder::new(&self.root).value("year", y).build())
    }

    /// `/root[author[...]][title/T]`
    pub fn author_title_query(&self, author: &(String, String)) -> Option<Query> {
        let t = self.title.as_ref()?;
        Some(
            QueryBuilder::new(&self.root)
                .value("author/first", &author.0)
                .value("author/last", &author.1)
                .value("title", t)
                .build(),
        )
    }

    /// `/root[conf/C][year/Y]`
    pub fn conf_year_query(&self) -> Option<Query> {
        let c = self.conf.as_ref()?;
        let y = self.year.as_ref()?;
        Some(
            QueryBuilder::new(&self.root)
                .value("conf", c)
                .value("year", y)
                .build(),
        )
    }

    /// `/root[author[...]][conf/C]`
    pub fn author_conf_query(&self, author: &(String, String)) -> Option<Query> {
        let c = self.conf.as_ref()?;
        Some(
            QueryBuilder::new(&self.root)
                .value("author/first", &author.0)
                .value("author/last", &author.1)
                .value("conf", c)
                .build(),
        )
    }

    /// `/root[author[...]][conf/C][year/Y]`
    pub fn author_conf_year_query(&self, author: &(String, String)) -> Option<Query> {
        let c = self.conf.as_ref()?;
        let y = self.year.as_ref()?;
        Some(
            QueryBuilder::new(&self.root)
                .value("author/first", &author.0)
                .value("author/last", &author.1)
                .value("conf", c)
                .value("year", y)
                .build(),
        )
    }
}

/// A strategy producing the index edges for a descriptor.
///
/// Every edge `(from, to)` must satisfy `from ⊒ to`;
/// [`IndexService::publish`](crate::IndexService::publish) verifies this
/// before inserting anything ("resilient to arbitrary linking", §IV-D).
pub trait IndexScheme {
    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &str;

    /// The query-to-query edges to install for `descriptor`, whose MSD is
    /// `msd`. Chains must terminate at `msd` for the file to be reachable.
    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)>;
}

fn push_edge(edges: &mut Vec<(Query, Query)>, from: Query, to: Query) {
    let edge = (from, to);
    if !edges.contains(&edge) {
        edges.push(edge);
    }
}

/// The *simple* scheme of Fig. 8 (left): two-level chains
/// `author|title → author+title → MSD` and `conf|year → conf+year → MSD`.
///
/// Most space-efficient of the three evaluated schemes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleScheme;

impl IndexScheme for SimpleScheme {
    fn name(&self) -> &str {
        "simple"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let f = BiblioFields::of(descriptor);
        let mut edges = Vec::new();
        // Built once: the title query is the same for every author, and a
        // `Query` clone is two `Arc` bumps.
        let title = f.title_query();
        for author in &f.authors {
            match f.author_title_query(author) {
                Some(at) => {
                    push_edge(&mut edges, f.author_query(author), at.clone());
                    if let Some(t) = &title {
                        push_edge(&mut edges, t.clone(), at.clone());
                    }
                    push_edge(&mut edges, at, msd.clone());
                }
                // No title: the author chain collapses to a direct link.
                None => push_edge(&mut edges, f.author_query(author), msd.clone()),
            }
        }
        if f.authors.is_empty() {
            if let Some(t) = title {
                push_edge(&mut edges, t, msd.clone());
            }
        }
        match f.conf_year_query() {
            Some(cy) => {
                if let Some(c) = f.conf_query() {
                    push_edge(&mut edges, c, cy.clone());
                }
                if let Some(y) = f.year_query() {
                    push_edge(&mut edges, y, cy.clone());
                }
                push_edge(&mut edges, cy, msd.clone());
            }
            // Only one of conf/year present: link it directly.
            None => {
                for q in [f.conf_query(), f.year_query()].into_iter().flatten() {
                    push_edge(&mut edges, q, msd.clone());
                }
            }
        }
        edges
    }
}

/// The *flat* scheme of Fig. 8 (center): every query of the simple scheme
/// maps directly to the MSD, "so that the index query length is always 2".
///
/// Fewest interactions, but the largest result sets, traffic, and storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatScheme;

impl IndexScheme for FlatScheme {
    fn name(&self) -> &str {
        "flat"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let f = BiblioFields::of(descriptor);
        let mut edges = Vec::new();
        for author in &f.authors {
            push_edge(&mut edges, f.author_query(author), msd.clone());
            if let Some(at) = f.author_title_query(author) {
                push_edge(&mut edges, at, msd.clone());
            }
        }
        for q in [
            f.title_query(),
            f.conf_query(),
            f.year_query(),
            f.conf_year_query(),
        ]
        .into_iter()
        .flatten()
        {
            push_edge(&mut edges, q, msd.clone());
        }
        edges
    }
}

/// The *complex* scheme of Fig. 8 (right): some simple-scheme queries are
/// split into more specific intermediate queries to shorten result lists,
/// at the cost of longer chains (up to
/// `conf → conf+year → author+conf+year → MSD`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ComplexScheme;

impl IndexScheme for ComplexScheme {
    fn name(&self) -> &str {
        "complex"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let f = BiblioFields::of(descriptor);
        let mut edges = Vec::new();
        // Built once: these are author-independent, and a `Query` clone
        // is two `Arc` bumps.
        let title = f.title_query();
        let conf_year = f.conf_year_query();
        for author in &f.authors {
            let a = f.author_query(author);
            let mut author_chained = false;
            if let Some(at) = f.author_title_query(author) {
                push_edge(&mut edges, a.clone(), at.clone());
                if let Some(t) = &title {
                    push_edge(&mut edges, t.clone(), at.clone());
                }
                push_edge(&mut edges, at, msd.clone());
                author_chained = true;
            }
            // The author+conference refinement chain.
            if let Some(acy) = f.author_conf_year_query(author) {
                if let Some(ac) = f.author_conf_query(author) {
                    push_edge(&mut edges, a.clone(), ac.clone());
                    push_edge(&mut edges, ac, acy.clone());
                }
                if let Some(cy) = &conf_year {
                    push_edge(&mut edges, cy.clone(), acy.clone());
                }
                push_edge(&mut edges, acy, msd.clone());
                author_chained = true;
            }
            if !author_chained {
                // Not enough fields to refine through: link directly.
                push_edge(&mut edges, a.clone(), msd.clone());
            }
        }
        if f.authors.is_empty() {
            if let Some(t) = title {
                push_edge(&mut edges, t, msd.clone());
            }
        }
        match conf_year {
            Some(cy) => {
                if let Some(c) = f.conf_query() {
                    push_edge(&mut edges, c, cy.clone());
                }
                if let Some(y) = f.year_query() {
                    push_edge(&mut edges, y, cy.clone());
                }
                if f.authors.is_empty() {
                    // No author to refine through: close the chain directly.
                    push_edge(&mut edges, cy, msd.clone());
                }
            }
            None => {
                for q in [f.conf_query(), f.year_query()].into_iter().flatten() {
                    push_edge(&mut edges, q, msd.clone());
                }
            }
        }
        edges
    }
}

/// The hierarchical scheme of Fig. 4, with the extra *Last name* level:
/// `last-name → author → article(author+title) → MSD`,
/// `title → article`, `conf|year → proceedings(conf+year) → MSD`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig4Scheme;

impl IndexScheme for Fig4Scheme {
    fn name(&self) -> &str {
        "fig4-hierarchical"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let f = BiblioFields::of(descriptor);
        let mut edges = Vec::new();
        // Built once: the title query is the same for every author, and a
        // `Query` clone is two `Arc` bumps.
        let title = f.title_query();
        for author in &f.authors {
            let a = f.author_query(author);
            push_edge(&mut edges, f.last_name_query(author), a.clone());
            match f.author_title_query(author) {
                Some(at) => {
                    push_edge(&mut edges, a, at.clone());
                    if let Some(t) = &title {
                        push_edge(&mut edges, t.clone(), at.clone());
                    }
                    push_edge(&mut edges, at, msd.clone());
                }
                None => push_edge(&mut edges, a, msd.clone()),
            }
        }
        if f.authors.is_empty() {
            if let Some(t) = title {
                push_edge(&mut edges, t, msd.clone());
            }
        }
        match f.conf_year_query() {
            Some(cy) => {
                if let Some(c) = f.conf_query() {
                    push_edge(&mut edges, c, cy.clone());
                }
                if let Some(y) = f.year_query() {
                    push_edge(&mut edges, y, cy.clone());
                }
                push_edge(&mut edges, cy, msd.clone());
            }
            None => {
                for q in [f.conf_query(), f.year_query()].into_iter().flatten() {
                    push_edge(&mut edges, q, msd.clone());
                }
            }
        }
        edges
    }
}

/// Decorates another scheme with *initial-letter* author indexes (§IV-C:
/// "one can create an index with all the files of an author that start
/// with the letter 'A', the letter 'B', etc." — substring matching via
/// the `^=` prefix operator).
///
/// For every author, an extra edge links
/// `/article[author/last^=P]` (P = the first `prefix_len` characters of
/// the last name) to the author's full-name query, so users can browse
/// by initial and refine.
///
/// # Examples
///
/// ```
/// use p2p_index_core::{IndexScheme, InitialLetterScheme, SimpleScheme};
/// use p2p_index_xmldoc::Descriptor;
/// use p2p_index_xpath::Query;
///
/// let scheme = InitialLetterScheme::new(SimpleScheme, 1);
/// let d = Descriptor::parse(
///     "<article><author><first>John</first><last>Smith</last></author>\
///      <title>TCP</title></article>",
/// ).unwrap();
/// let msd = Query::most_specific(&d);
/// let edges = scheme.index_edges(&d, &msd);
/// assert!(edges.iter().any(|(from, _)| from.to_string().contains("last^=S")));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InitialLetterScheme<S> {
    inner: S,
    prefix_len: usize,
}

impl<S: IndexScheme> InitialLetterScheme<S> {
    /// Wraps `inner`, adding author-initial entries of `prefix_len`
    /// characters (1 = single letter).
    pub fn new(inner: S, prefix_len: usize) -> Self {
        InitialLetterScheme {
            inner,
            prefix_len: prefix_len.max(1),
        }
    }
}

impl<S: IndexScheme> IndexScheme for InitialLetterScheme<S> {
    fn name(&self) -> &str {
        "initial-letter"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let mut edges = self.inner.index_edges(descriptor, msd);
        let f = BiblioFields::of(descriptor);
        for author in &f.authors {
            let prefix: String = author.1.chars().take(self.prefix_len).collect();
            if prefix.is_empty() {
                continue;
            }
            let initial = QueryBuilder::new(&f.root)
                .compare("author/last", p2p_index_xpath::CmpOp::StartsWith, prefix)
                .build();
            push_edge(&mut edges, initial, f.author_query(author));
        }
        edges
    }
}

/// Decorates another scheme with per-keyword title indexes.
///
/// The paper's related work (Harren et al., IPTPS 2002) splits query
/// strings and uses "each piece to create a key matching the query"; this
/// scheme does exactly that for titles: every title word longer than
/// `min_len` gets an edge `/article[title*=word] → /article/title/T`, so
/// users can find articles knowing only words of the title.
///
/// # Examples
///
/// ```
/// use p2p_index_core::{IndexScheme, KeywordTitleScheme, SimpleScheme};
/// use p2p_index_xmldoc::Descriptor;
/// use p2p_index_xpath::Query;
///
/// let scheme = KeywordTitleScheme::new(SimpleScheme, 4);
/// let d = Descriptor::parse(
///     "<article><author><first>A</first><last>B</last></author>\
///      <title>Adaptive Routing in Overlays</title></article>",
/// ).unwrap();
/// let msd = Query::most_specific(&d);
/// let edges = scheme.index_edges(&d, &msd);
/// assert!(edges.iter().any(|(from, _)| from.to_string().contains("title*=Routing")));
/// // "in" is shorter than min_len and gets no entry.
/// assert!(!edges.iter().any(|(from, _)| from.to_string().contains("title*=in]")));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KeywordTitleScheme<S> {
    inner: S,
    min_len: usize,
}

impl<S: IndexScheme> KeywordTitleScheme<S> {
    /// Wraps `inner`, indexing title words of at least `min_len`
    /// characters (filters stop-words like "in", "of", "the").
    pub fn new(inner: S, min_len: usize) -> Self {
        KeywordTitleScheme {
            inner,
            min_len: min_len.max(1),
        }
    }
}

impl<S: IndexScheme> IndexScheme for KeywordTitleScheme<S> {
    fn name(&self) -> &str {
        "keyword-title"
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        let mut edges = self.inner.index_edges(descriptor, msd);
        let f = BiblioFields::of(descriptor);
        let (Some(title), Some(title_query)) = (&f.title, f.title_query()) else {
            return edges;
        };
        for word in title.split_whitespace() {
            let word = word.trim_matches(|c: char| !c.is_alphanumeric());
            if word.chars().count() < self.min_len {
                continue;
            }
            let keyword = QueryBuilder::new(&f.root)
                .compare("title", p2p_index_xpath::CmpOp::Contains, word)
                .build();
            push_edge(&mut edges, keyword, title_query.clone());
        }
        edges
    }
}

/// A user-defined scheme built from a closure.
///
/// # Examples
///
/// ```
/// use p2p_index_core::{CustomScheme, IndexScheme};
/// use p2p_index_xmldoc::Descriptor;
/// use p2p_index_xpath::{Query, QueryBuilder};
///
/// // Index every article only under its publication year.
/// let scheme = CustomScheme::new("year-only", |d: &Descriptor, msd: &Query| {
///     let year = d.field("year")?;
///     let q = QueryBuilder::new(d.root().name()).value("year", year).build();
///     Some(vec![(q, msd.clone())])
/// });
/// let d = Descriptor::parse("<article><title>X</title><year>1999</year></article>").unwrap();
/// let msd = Query::most_specific(&d);
/// assert_eq!(scheme.index_edges(&d, &msd).len(), 1);
/// ```
pub struct CustomScheme<F> {
    name: String,
    edges_fn: F,
}

impl<F> CustomScheme<F>
where
    F: Fn(&Descriptor, &Query) -> Option<Vec<(Query, Query)>>,
{
    /// Creates a scheme from a closure. Returning `None` indexes nothing
    /// (the file stays reachable only through its complete key — the
    /// paper's "versatility" property).
    pub fn new(name: impl Into<String>, edges_fn: F) -> Self {
        CustomScheme {
            name: name.into(),
            edges_fn,
        }
    }
}

impl<F> IndexScheme for CustomScheme<F>
where
    F: Fn(&Descriptor, &Query) -> Option<Vec<(Query, Query)>>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn index_edges(&self, descriptor: &Descriptor, msd: &Query) -> Vec<(Query, Query)> {
        (self.edges_fn)(descriptor, msd).unwrap_or_default()
    }
}

impl<F> std::fmt::Debug for CustomScheme<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomScheme")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2() -> Descriptor {
        Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>IPv6</title><conf>INFOCOM</conf><year>1996</year><size>312352</size></article>",
        )
        .unwrap()
    }

    fn edges_of(scheme: &dyn IndexScheme, d: &Descriptor) -> Vec<(Query, Query)> {
        let msd = Query::most_specific(d);
        scheme.index_edges(d, &msd)
    }

    #[test]
    fn fields_extraction() {
        let f = BiblioFields::of(&d2());
        assert_eq!(f.root, "article");
        assert_eq!(f.authors, vec![("John".to_string(), "Smith".to_string())]);
        assert_eq!(f.title.as_deref(), Some("IPv6"));
        assert_eq!(f.conf.as_deref(), Some("INFOCOM"));
        assert_eq!(f.year.as_deref(), Some("1996"));
    }

    #[test]
    fn fields_of_partial_descriptor() {
        let d = Descriptor::parse("<article><title>X</title></article>").unwrap();
        let f = BiblioFields::of(&d);
        assert!(f.authors.is_empty());
        assert!(f.conf.is_none());
        assert!(f.conf_year_query().is_none());
        assert!(f.title_query().is_some());
    }

    #[test]
    fn every_edge_satisfies_covering() {
        let d = d2();
        let msd = Query::most_specific(&d);
        for scheme in [
            &SimpleScheme as &dyn IndexScheme,
            &FlatScheme,
            &ComplexScheme,
            &Fig4Scheme,
        ] {
            for (from, to) in scheme.index_edges(&d, &msd) {
                assert!(
                    from.covers(&to),
                    "{}: {from} must cover {to}",
                    scheme.name()
                );
                assert!(
                    from.covers(&msd),
                    "{}: {from} must cover msd",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn every_chain_reaches_msd() {
        // From any edge source, following edges must reach the MSD.
        let d = d2();
        let msd = Query::most_specific(&d);
        for scheme in [
            &SimpleScheme as &dyn IndexScheme,
            &FlatScheme,
            &ComplexScheme,
            &Fig4Scheme,
        ] {
            let edges = scheme.index_edges(&d, &msd);
            for (start, _) in &edges {
                let mut frontier = vec![start.clone()];
                let mut seen = vec![];
                let mut reached = false;
                while let Some(q) = frontier.pop() {
                    if q == msd {
                        reached = true;
                        break;
                    }
                    if seen.contains(&q) {
                        continue;
                    }
                    seen.push(q.clone());
                    frontier.extend(
                        edges
                            .iter()
                            .filter(|(f, _)| *f == q)
                            .map(|(_, t)| t.clone()),
                    );
                }
                assert!(
                    reached,
                    "{}: chain from {start} must reach MSD",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn simple_scheme_shape() {
        let edges = edges_of(&SimpleScheme, &d2());
        // author→AT, title→AT, AT→msd, conf→CY, year→CY, CY→msd.
        assert_eq!(edges.len(), 6);
        let msd = Query::most_specific(&d2());
        let to_msd = edges.iter().filter(|(_, t)| *t == msd).count();
        assert_eq!(to_msd, 2);
    }

    #[test]
    fn flat_scheme_all_edges_point_to_msd() {
        let msd = Query::most_specific(&d2());
        let edges = edges_of(&FlatScheme, &d2());
        assert_eq!(edges.len(), 6);
        assert!(edges.iter().all(|(_, t)| *t == msd));
    }

    #[test]
    fn complex_scheme_has_deeper_chains() {
        let edges = edges_of(&ComplexScheme, &d2());
        // Depth of chain conf → conf+year → author+conf+year → msd is 3 edges.
        let f = BiblioFields::of(&d2());
        let author = &f.authors[0];
        let conf = f.conf_query().unwrap();
        let cy = f.conf_year_query().unwrap();
        let acy = f.author_conf_year_query(author).unwrap();
        let msd = Query::most_specific(&d2());
        assert!(edges.contains(&(conf, cy.clone())));
        assert!(edges.contains(&(cy, acy.clone())));
        assert!(edges.contains(&(acy, msd)));
        assert!(edges.len() > 6);
    }

    #[test]
    fn fig4_scheme_has_last_name_level() {
        let f = BiblioFields::of(&d2());
        let author = &f.authors[0];
        let edges = edges_of(&Fig4Scheme, &d2());
        assert!(edges.contains(&(f.last_name_query(author), f.author_query(author))));
    }

    #[test]
    fn multi_author_descriptor_indexes_each_author() {
        let d = Descriptor::parse(
            "<article><author><first>A</first><last>B</last></author>\
             <author><first>C</first><last>D</last></author>\
             <title>T</title><conf>X</conf><year>2000</year></article>",
        )
        .unwrap();
        let f = BiblioFields::of(&d);
        assert_eq!(f.authors.len(), 2);
        let edges = edges_of(&SimpleScheme, &d);
        let author_sources = edges
            .iter()
            .filter(|(from, _)| from.to_string().contains("first"))
            .count();
        assert!(author_sources >= 2, "each author gets an index entry");
    }

    #[test]
    fn descriptor_without_indexable_fields_yields_no_edges() {
        let d = Descriptor::parse("<article><size>99</size></article>").unwrap();
        for scheme in [
            &SimpleScheme as &dyn IndexScheme,
            &FlatScheme,
            &ComplexScheme,
        ] {
            assert!(edges_of(scheme, &d).is_empty(), "{}", scheme.name());
        }
    }

    #[test]
    fn complex_without_author_still_closes_conf_chain() {
        let d =
            Descriptor::parse("<article><title>T</title><conf>X</conf><year>2000</year></article>")
                .unwrap();
        let msd = Query::most_specific(&d);
        let edges = edges_of(&ComplexScheme, &d);
        let f = BiblioFields::of(&d);
        assert!(edges.contains(&(f.conf_year_query().unwrap(), msd)));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SimpleScheme.name(), "simple");
        assert_eq!(FlatScheme.name(), "flat");
        assert_eq!(ComplexScheme.name(), "complex");
        assert_eq!(Fig4Scheme.name(), "fig4-hierarchical");
    }

    #[test]
    fn initial_letter_scheme_adds_prefix_edges() {
        let scheme = InitialLetterScheme::new(SimpleScheme, 1);
        let d = d2();
        let msd = Query::most_specific(&d);
        let edges = scheme.index_edges(&d, &msd);
        let inner_edges = SimpleScheme.index_edges(&d, &msd);
        assert_eq!(edges.len(), inner_edges.len() + 1);
        let f = BiblioFields::of(&d);
        let initial: Query = "/article[author/last^=S]".parse().unwrap();
        assert!(edges.contains(&(initial.clone(), f.author_query(&f.authors[0]))));
        // Covering invariant holds for the prefix edge too.
        for (from, to) in &edges {
            assert!(from.covers(to), "{from} must cover {to}");
        }
        assert_eq!(scheme.name(), "initial-letter");
    }

    #[test]
    fn initial_letter_scheme_longer_prefixes() {
        let scheme = InitialLetterScheme::new(FlatScheme, 3);
        let d = d2();
        let msd = Query::most_specific(&d);
        let edges = scheme.index_edges(&d, &msd);
        assert!(edges
            .iter()
            .any(|(from, _)| from.to_string().contains("last^=Smi")));
    }

    #[test]
    fn keyword_title_scheme_indexes_long_words() {
        let scheme = KeywordTitleScheme::new(SimpleScheme, 4);
        let d = Descriptor::parse(
            "<article><author><first>A</first><last>B</last></author>\
             <title>Adaptive Routing in Overlay Networks</title>\
             <conf>X</conf><year>2000</year></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        let edges = scheme.index_edges(&d, &msd);
        let keyword_edges: Vec<_> = edges
            .iter()
            .filter(|(from, _)| from.to_string().contains("title*="))
            .collect();
        // Adaptive, Routing, Overlay, Networks — not "in".
        assert_eq!(keyword_edges.len(), 4);
        let f = BiblioFields::of(&d);
        for (from, to) in &keyword_edges {
            assert!(from.covers(to), "{from} must cover {to}");
            assert_eq!(*to, f.title_query().unwrap());
        }
        assert_eq!(scheme.name(), "keyword-title");
    }

    #[test]
    fn keyword_title_scheme_without_title_is_inner_only() {
        let scheme = KeywordTitleScheme::new(FlatScheme, 4);
        let d = Descriptor::parse(
            "<article><author><first>A</first><last>B</last></author><year>2000</year></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        assert_eq!(
            scheme.index_edges(&d, &msd),
            FlatScheme.index_edges(&d, &msd)
        );
    }

    #[test]
    fn custom_scheme_none_indexes_nothing() {
        let scheme = CustomScheme::new("nothing", |_: &Descriptor, _: &Query| None);
        assert!(edges_of(&scheme, &d2()).is_empty());
        assert_eq!(scheme.name(), "nothing");
        assert!(format!("{scheme:?}").contains("nothing"));
    }
}
