//! `p2p-library` — an interactive command-line front end to the indexed
//! peer-to-peer library.
//!
//! Spins up an in-process network, optionally seeds it with a synthetic
//! corpus, and accepts commands on stdin:
//!
//! ```text
//! add <file> <xml-descriptor>     publish a file
//! del <file> <xml-descriptor>     unpublish a file
//! find <query>                    automated search (all matching files)
//! step <query>                    one lookup step (show raw index entries)
//! stats                           network and traffic statistics
//! help                            this text
//! quit                            exit
//! ```
//!
//! Example session:
//!
//! ```text
//! $ cargo run --bin p2p-library -- --nodes 50 --seed-corpus 100
//! > find /article/conf/SIGCOMM
//! > add my.pdf <article><title>My Paper</title><year>2024</year></article>
//! > find /article[year>=2020]
//! ```

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use p2p_index::prelude::*;

struct App {
    service: IndexService<RingDht>,
}

impl App {
    fn new(nodes: usize) -> App {
        App {
            service: IndexService::new(RingDht::with_named_nodes(nodes), CachePolicy::Lru(30)),
        }
    }

    fn seed(&mut self, articles: usize) -> usize {
        let corpus = Corpus::generate(CorpusConfig {
            articles,
            author_pool: (articles / 4).max(8),
            ..CorpusConfig::default()
        });
        for a in corpus.articles() {
            self.service
                .publish(&a.descriptor(), a.file_name(), &SimpleScheme)
                .expect("seeding a live network cannot fail");
        }
        articles
    }

    fn dispatch(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => return Ok(false),
            "help" => {
                writeln!(
                    out,
                    "commands: add <file> <xml> | del <file> <xml> | find <query> | \
                     step <query> | stats | help | quit"
                )?;
            }
            "add" | "del" => {
                let Some((file, xml)) = rest.split_once(' ') else {
                    writeln!(out, "usage: {cmd} <file> <xml-descriptor>")?;
                    return Ok(true);
                };
                match Descriptor::parse(xml.trim()) {
                    Ok(d) => {
                        let result = if cmd == "add" {
                            self.service
                                .publish(&d, file, &SimpleScheme)
                                .map(|msd| format!("published {file} under {msd}"))
                        } else {
                            self.service
                                .unpublish(&d, file, &SimpleScheme)
                                .map(|msd| format!("removed {file} (was under {msd})"))
                        };
                        match result {
                            Ok(msg) => writeln!(out, "{msg}")?,
                            Err(e) => writeln!(out, "error: {e}")?,
                        }
                    }
                    Err(e) => writeln!(out, "bad descriptor: {e}")?,
                }
            }
            "find" => match rest.trim().parse::<Query>() {
                Ok(q) => match self.service.search(&q) {
                    Ok(report) => {
                        writeln!(
                            out,
                            "{} file(s) in {} interaction(s){}",
                            report.files.len(),
                            report.interactions,
                            if report.generalized() {
                                " (generalized)"
                            } else {
                                ""
                            }
                        )?;
                        for hit in &report.files {
                            writeln!(out, "  {}", hit.file)?;
                        }
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "bad query: {e}")?,
            },
            "step" => match rest.trim().parse::<Query>() {
                Ok(q) => match self.service.lookup_step(&q) {
                    Ok(resp) => {
                        writeln!(
                            out,
                            "node {}: {} cached, {} indexed",
                            resp.node.map(|n| n.to_string()).unwrap_or_default(),
                            resp.cached.len(),
                            resp.indexed.len()
                        )?;
                        for t in resp.all_targets() {
                            writeln!(out, "  {t}")?;
                        }
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "bad query: {e}")?,
            },
            "stats" => {
                let t = self.service.traffic();
                let dht = self.service.dht();
                writeln!(
                    out,
                    "nodes {}, stored keys {}, index bytes {}, traffic: {} normal + {} cache bytes, {} messages",
                    dht.len(),
                    dht.total_keys(),
                    dht.total_value_bytes(),
                    t.normal_bytes,
                    t.cache_bytes,
                    t.messages
                )?;
            }
            other => writeln!(out, "unknown command {other:?}; try help")?,
        }
        Ok(true)
    }
}

fn main() -> ExitCode {
    let mut nodes = 50usize;
    let mut seed_corpus = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = args.next();
        let parsed = value.as_deref().and_then(|v| v.parse::<usize>().ok());
        match (flag.as_str(), parsed) {
            ("--nodes", Some(n)) => nodes = n.max(1),
            ("--seed-corpus", Some(n)) => seed_corpus = n,
            _ => {
                eprintln!("usage: p2p-library [--nodes N] [--seed-corpus N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut app = App::new(nodes);
    if seed_corpus > 0 {
        let n = app.seed(seed_corpus);
        eprintln!("seeded {n} synthetic articles");
    }
    eprintln!("p2p-library ready ({nodes} nodes); type help");

    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match app.dispatch(&line, &mut out) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => break,
        }
        let _ = out.flush();
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(app: &mut App, line: &str) -> String {
        let mut out = Vec::new();
        app.dispatch(line, &mut out)
            .expect("dispatch never errors on Vec");
        String::from_utf8(out).expect("utf8 output")
    }

    #[test]
    fn add_find_del_cycle() {
        let mut app = App::new(10);
        let added = run(
            &mut app,
            "add x.pdf <article><title>TCP</title><year>1989</year></article>",
        );
        assert!(added.contains("published x.pdf"));
        let found = run(&mut app, "find /article/title/TCP");
        assert!(found.contains("1 file(s)"));
        assert!(found.contains("x.pdf"));
        let removed = run(
            &mut app,
            "del x.pdf <article><title>TCP</title><year>1989</year></article>",
        );
        assert!(removed.contains("removed x.pdf"));
        let gone = run(&mut app, "find /article/title/TCP");
        assert!(gone.contains("0 file(s)"));
    }

    #[test]
    fn seeded_corpus_is_searchable() {
        let mut app = App::new(20);
        app.seed(50);
        // Reconstruct the same deterministic corpus to know a real title.
        let corpus = Corpus::generate(CorpusConfig {
            articles: 50,
            author_pool: 12,
            ..CorpusConfig::default()
        });
        let title = &corpus.article(0).unwrap().title;
        let out = run(&mut app, &format!("find /article/title/\"{title}\""));
        assert!(out.contains("article-0.pdf"), "{out}");
        let stats = run(&mut app, "stats");
        assert!(stats.contains("nodes 20"));
    }

    #[test]
    fn error_paths_are_reported() {
        let mut app = App::new(5);
        assert!(run(&mut app, "find not-a-query").contains("bad query"));
        assert!(run(&mut app, "add only-one-arg").contains("usage"));
        assert!(run(&mut app, "add f.pdf <broken").contains("bad descriptor"));
        assert!(run(&mut app, "bogus").contains("unknown command"));
        assert!(run(&mut app, "help").contains("commands"));
    }

    #[test]
    fn step_shows_raw_entries() {
        let mut app = App::new(10);
        run(
            &mut app,
            "add x.pdf <article><author><first>A</first><last>B</last></author><title>T</title></article>",
        );
        let out = run(&mut app, "step /article/author[first/A][last/B]");
        assert!(out.contains("indexed"));
        assert!(out.contains("query /article"));
    }

    #[test]
    fn quit_stops_the_loop() {
        let mut app = App::new(5);
        let mut out = Vec::new();
        assert!(!app.dispatch("quit", &mut out).unwrap());
        assert!(app.dispatch("", &mut out).unwrap());
    }
}
