//! Cross-layer observability invariants.
//!
//! The metrics registry is only trustworthy if it *structurally mirrors*
//! the accounting the instrumented layers already keep for themselves.
//! This suite closes that loop: for every DHT substrate × cache policy it
//! publishes a corpus, attaches a registry, drives traced searches and
//! manual interactive lookups, and then asserts equalities between the
//! registry's counters and the independent sources of truth —
//!
//! * `dht.messages` / `dht.lookups` / `dht.hops` == the substrate's own
//!   [`DhtStats`](p2p_index_dht::DhtStats) deltas;
//! * trace `lookup` span counts == [`SearchReport::interactions`];
//! * `index.cache_probe.hit + index.cache_probe.miss` == cached-mode
//!   lookup totals, and `cache.get.hit` == the probe hits;
//! * `retry.*` == [`RetryStats`](p2p_index_core::RetryStats) deltas, and
//!   `fault.*` == [`FaultyDht::fault_stats`] — including under injected
//!   faults with a live retry policy.
//!
//! Everything here is deterministic (seeded RNGs, no clocks), so each
//! case also doubles as a byte-equality check: two identical runs must
//! produce identical snapshots.

use p2p_index_core::{CachePolicy, IndexService, IndexTarget, RetryPolicy, SimpleScheme};
use p2p_index_dht::{
    ChordNetwork, Dht, FaultConfig, FaultyDht, KademliaNetwork, Key, NodeChurn, PastryNetwork,
    RingDht,
};
use p2p_index_obs::{MetricsRegistry, MetricsSnapshot};
use p2p_index_xmldoc::Descriptor;
use p2p_index_xpath::Query;

fn keys(n: usize) -> Vec<Key> {
    (0..n).map(|i| Key::hash_of(&format!("node-{i}"))).collect()
}

fn policies() -> [CachePolicy; 4] {
    [
        CachePolicy::None,
        CachePolicy::Multi,
        CachePolicy::Single,
        CachePolicy::Lru(2),
    ]
}

/// A small bibliographic corpus with shared surnames, conferences, and
/// years, so chain lookups (`year -> conf+year -> MSD -> file`) have
/// real fan-out.
fn corpus() -> Vec<(Descriptor, String)> {
    let rows = [
        ("John", "Smith", "TCP", "SIGCOMM", "1989"),
        ("Jane", "Smith", "Indexing", "ICDCS", "2004"),
        ("Ada", "Lovelace", "Notes", "LMS", "1843"),
        ("Alan", "Turing", "Machines", "LMS", "1936"),
        ("Paul", "Baran", "Packets", "SIGCOMM", "1989"),
        ("Grace", "Hopper", "Compilers", "ICDCS", "2004"),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, (first, last, title, conf, year))| {
            let xml = format!(
                "<article><author><first>{first}</first><last>{last}</last></author>\
                 <title>{title}</title><conf>{conf}</conf><year>{year}</year></article>"
            );
            (
                Descriptor::parse(&xml).expect("corpus XML parses"),
                format!("file-{i}.pdf"),
            )
        })
        .collect()
}

fn parse(q: &str) -> Query {
    q.parse().expect("test query parses")
}

/// Queries driven through `search`: indexed entry points at several
/// levels plus one non-indexed query that exercises generalization.
fn search_queries() -> Vec<Query> {
    vec![
        parse("/article/author[first/John][last/Smith]"),
        parse("/article/title/Notes"),
        parse("/article/conf/SIGCOMM"),
        parse("/article/year/2004"),
        parse("/article/author/last/Smith"),
    ]
}

/// Queries driven through the *interactive* path (`lookup_step` +
/// `create_shortcuts`): three-level chains so shortcut installation and
/// subsequent probe hits are guaranteed under every caching policy.
fn interactive_queries() -> Vec<Query> {
    vec![parse("/article/year/1989"), parse("/article/conf/ICDCS")]
}

/// Runs the full invariant scenario for one `(substrate, policy)` cell
/// and returns the registry snapshot (so callers can also compare two
/// identical runs byte for byte).
fn run_case<D: Dht>(name: &str, dht: D, policy: CachePolicy) -> MetricsSnapshot {
    let mut service = IndexService::new(dht, policy);
    for (descriptor, file) in corpus() {
        service
            .publish(&descriptor, &file, &SimpleScheme)
            .expect("publish on a healthy network");
    }

    // Attach the registry only now: the snapshot then covers exactly the
    // query phase, and the substrate/retry equalities below are checked
    // against deltas over the same window.
    let stats_before = service.dht().stats();
    let retry_before = service.retry_stats();
    let registry = MetricsRegistry::new();
    service.set_metrics(registry.clone());

    // -- automated searches, each traced -------------------------------
    let queries = search_queries();
    let mut total_interactions = 0u64;
    let mut total_files = 0usize;
    for query in &queries {
        service.start_trace(format!("invariant {query}"));
        let report = service.search(query).expect("search on a healthy network");
        let trace = service.finish_trace().expect("trace was started");
        assert_eq!(
            trace.count_spans("lookup "),
            report.interactions as usize,
            "{name}/{policy}: every interaction must open exactly one lookup span ({query})"
        );
        total_interactions += u64::from(report.interactions);
        total_files += report.files.len();
    }
    assert!(
        total_files > 0,
        "{name}/{policy}: the corpus queries must locate files"
    );

    // -- interactive lookups: probe caches, install shortcuts ----------
    // Two passes per query: the first walks the index chain and installs
    // shortcuts per the policy; the second probes them (and must hit on
    // the first node whenever the policy caches at all).
    let mut cached_lookups = 0u64;
    for query in &interactive_queries() {
        for _pass in 0..2 {
            let mut path: Vec<(p2p_index_dht::NodeId, Query)> = Vec::new();
            let mut current = query.clone();
            for _ in 0..8 {
                let resp = service
                    .lookup_step(&current)
                    .expect("lookup on a healthy network");
                cached_lookups += 1;
                let node = resp.node.expect("healthy lookups name a node");
                path.push((node, current.clone()));
                let next = resp.all_targets().find_map(|t| match t {
                    IndexTarget::Query(q) => Some(q.clone()),
                    IndexTarget::File(_) => None,
                });
                match next {
                    Some(q) if q != current => current = q,
                    _ => break,
                }
            }
            service.create_shortcuts(&path, &IndexTarget::Query(current));
        }
    }

    // -- the invariants -------------------------------------------------
    let snap = registry.snapshot();
    let stats = service.dht().stats();
    assert_eq!(
        snap.counter("dht.messages"),
        stats.messages - stats_before.messages,
        "{name}/{policy}: registry messages must equal the substrate's own delta"
    );
    assert_eq!(
        snap.counter("dht.lookups"),
        stats.lookups - stats_before.lookups,
        "{name}/{policy}: lookups"
    );
    assert_eq!(
        snap.counter("dht.hops"),
        stats.hops - stats_before.hops,
        "{name}/{policy}: hops"
    );

    let retry = service.retry_stats();
    assert_eq!(
        snap.counter("retry.attempts"),
        retry.attempts - retry_before.attempts,
        "{name}/{policy}: retry attempts"
    );
    assert_eq!(snap.counter("retry.retries"), 0, "{name}/{policy}: healthy");
    assert_eq!(snap.counter("retry.gave_up"), 0, "{name}/{policy}");

    assert_eq!(
        snap.counter("index.searches"),
        queries.len() as u64,
        "{name}/{policy}"
    );
    assert_eq!(
        snap.counter("index.search.interactions"),
        total_interactions,
        "{name}/{policy}: interaction counter must match SearchReport totals"
    );
    let (hname, hist) = snap
        .histograms()
        .iter()
        .find(|(n, _)| n == "search.interactions_per_query")
        .expect("interaction histogram recorded");
    assert_eq!(
        hist.count(),
        queries.len() as u64,
        "{name}/{policy}: {hname}"
    );
    assert_eq!(hist.sum(), total_interactions, "{name}/{policy}: {hname}");

    // Cache probes: every cached-mode lookup probes exactly once, and a
    // probe is a hit iff the node's ShortcutCache answered.
    assert_eq!(
        snap.counter("index.lookups.cached"),
        cached_lookups,
        "{name}/{policy}"
    );
    assert_eq!(
        snap.counter("index.cache_probe.hit") + snap.counter("index.cache_probe.miss"),
        cached_lookups,
        "{name}/{policy}: probe hit + miss must equal cached-mode lookups"
    );
    assert_eq!(
        snap.counter("cache.get.hit"),
        snap.counter("index.cache_probe.hit"),
        "{name}/{policy}: every probe hit is a ShortcutCache hit"
    );
    assert!(
        snap.counter("cache.get.hit") + snap.counter("cache.get.miss") <= cached_lookups,
        "{name}/{policy}: nodes without a cache never reach ShortcutCache::get"
    );
    if policy.caches() {
        assert!(
            snap.counter("cache.insert.created") > 0,
            "{name}/{policy}: interactive passes must install shortcuts"
        );
        assert!(
            snap.counter("index.cache_probe.hit") > 0,
            "{name}/{policy}: the second pass must hit the installed shortcut"
        );
    } else {
        assert_eq!(snap.counter("cache.insert.created"), 0, "{name}/{policy}");
        assert_eq!(snap.counter("cache.get.hit"), 0, "{name}/{policy}");
        assert_eq!(snap.counter("cache.get.miss"), 0, "{name}/{policy}");
        assert_eq!(snap.counter("index.cache_probe.hit"), 0, "{name}/{policy}");
    }

    // Searches bypass caches by design; the bypass counter must cover
    // every search interaction and nothing else.
    assert_eq!(
        snap.counter("index.lookups.bypass"),
        total_interactions,
        "{name}/{policy}: search lookups all run in bypass mode"
    );

    snap
}

#[test]
fn registry_mirrors_every_substrate_and_policy() {
    for policy in policies() {
        run_case("ring", RingDht::from_ids(keys(16)), policy);
        run_case("chord", ChordNetwork::with_perfect_tables(keys(16)), policy);
        run_case("kademlia", KademliaNetwork::with_nodes(keys(16)), policy);
        run_case(
            "pastry",
            PastryNetwork::with_perfect_tables(keys(16)),
            policy,
        );
    }
}

#[test]
fn identical_runs_produce_identical_snapshots() {
    for policy in [CachePolicy::None, CachePolicy::Lru(2)] {
        let a = run_case("chord", ChordNetwork::with_perfect_tables(keys(16)), policy);
        let b = run_case("chord", ChordNetwork::with_perfect_tables(keys(16)), policy);
        assert_eq!(a, b, "{policy}: snapshots must be deterministic");
        assert_eq!(a.to_json(), b.to_json(), "{policy}");
        assert_eq!(a.to_csv(), b.to_csv(), "{policy}");
    }
}

/// Under injected faults with a live retry policy, the registry must
/// still mirror all three independent accountings: the fault injector's,
/// the retry machinery's, and the wrapped substrate's.
fn run_faulty_case<D: Dht + NodeChurn>(name: &str, inner: D) {
    let faulty = FaultyDht::new(inner, FaultConfig::lossy(11, 0.2));
    let mut service =
        IndexService::with_retry(faulty, CachePolicy::Single, RetryPolicy::with_budget(5, 8));
    for (descriptor, file) in corpus() {
        service
            .publish(&descriptor, &file, &SimpleScheme)
            .expect("publish survives 20% loss under an 8-attempt budget");
    }

    let stats_before = service.dht().stats();
    let fault_before = service.dht().fault_stats();
    let retry_before = service.retry_stats();
    let registry = MetricsRegistry::new();
    service.set_metrics(registry.clone());

    for query in &search_queries() {
        // Branches may be abandoned under loss; the report stays honest
        // about it and the invariants must hold regardless.
        let report = service.search(query).expect("search itself cannot fail");
        assert!(
            report.completeness.attempts >= report.completeness.retries,
            "{name}: retries are a subset of attempts"
        );
    }

    let snap = registry.snapshot();
    let fstats = service.dht().fault_stats();
    assert!(
        fstats.injected() > fault_before.injected(),
        "{name}: 20% loss must inject faults during the query phase"
    );
    assert_eq!(
        snap.counter("fault.attempts"),
        fstats.attempts - fault_before.attempts,
        "{name}"
    );
    assert_eq!(
        snap.counter("fault.requests_lost"),
        fstats.requests_lost - fault_before.requests_lost,
        "{name}"
    );
    assert_eq!(
        snap.counter("fault.responses_lost"),
        fstats.responses_lost - fault_before.responses_lost,
        "{name}"
    );

    let retry = service.retry_stats();
    assert!(
        retry.retries > retry_before.retries,
        "{name}: the retry path must actually run"
    );
    assert_eq!(
        snap.counter("retry.attempts"),
        retry.attempts - retry_before.attempts,
        "{name}"
    );
    assert_eq!(
        snap.counter("retry.retries"),
        retry.retries - retry_before.retries,
        "{name}"
    );
    assert_eq!(
        snap.counter("retry.backoff_ms"),
        retry.backoff_ms - retry_before.backoff_ms,
        "{name}"
    );
    assert_eq!(
        snap.counter("retry.gave_up"),
        retry.gave_up - retry_before.gave_up,
        "{name}"
    );

    // The wrapped substrate only sees operations whose *request*
    // survived; the registry's dht.* series must agree with it even
    // through the retry storm.
    let stats = service.dht().stats();
    assert_eq!(
        snap.counter("dht.messages"),
        stats.messages - stats_before.messages,
        "{name}: registry and substrate must agree under faults"
    );
}

#[test]
fn faulty_substrate_invariants_hold_with_retries() {
    run_faulty_case("ring", RingDht::from_ids(keys(16)));
    run_faulty_case("chord", ChordNetwork::with_perfect_tables(keys(16)));
    run_faulty_case("kademlia", KademliaNetwork::with_nodes(keys(16)));
    run_faulty_case("pastry", PastryNetwork::with_perfect_tables(keys(16)));
}
