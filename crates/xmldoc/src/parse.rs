//! A recursive-descent parser for the XML subset descriptors use.
//!
//! Handles elements, attributes, character data, the five predefined
//! entities plus numeric character references, comments, processing
//! instructions / the XML declaration, and CDATA sections. It does *not*
//! implement DTDs or namespaces — descriptor documents (DBLP-style records)
//! never use them.
//!
//! # Examples
//!
//! ```
//! use p2p_index_xmldoc::parse;
//!
//! let doc = parse("<article><title>TCP &amp; IP</title></article>")?;
//! assert_eq!(doc.find("title").unwrap().text(), "TCP & IP");
//! # Ok::<(), p2p_index_xmldoc::ParseXmlError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::tree::{Element, XmlNode};

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the current construct.
    UnexpectedChar(char),
    /// `</a>` closed an element opened as `<b>`.
    MismatchedClose {
        /// The name in the open tag.
        expected: String,
        /// The name found in the close tag.
        found: String,
    },
    /// An entity reference that is not predefined or numeric.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid scalar value.
    InvalidCharRef(String),
    /// Content found after the document element closed.
    TrailingContent,
    /// The document contains no element at all.
    NoRootElement,
}

/// An error produced while parsing XML, with 1-based line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// 1-based line of the offending position.
    pub line: usize,
    /// 1-based column of the offending position.
    pub column: usize,
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            ParseErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            ParseErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ParseErrorKind::MismatchedClose { expected, found } => {
                format!("mismatched close tag: expected </{expected}>, found </{found}>")
            }
            ParseErrorKind::UnknownEntity(e) => format!("unknown entity &{e};"),
            ParseErrorKind::InvalidCharRef(r) => format!("invalid character reference &#{r};"),
            ParseErrorKind::TrailingContent => "content after document element".to_string(),
            ParseErrorKind::NoRootElement => "no root element".to_string(),
        };
        write!(f, "{msg} at line {} column {}", self.line, self.column)
    }
}

impl Error for ParseXmlError {}

/// Parses a complete XML document and returns its root element.
///
/// # Errors
///
/// Returns [`ParseXmlError`] on malformed input; the error carries the
/// 1-based line and column of the problem.
pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = match p.peek() {
        Some('<') => p.parse_element()?,
        Some(_) | None => return Err(p.err(ParseErrorKind::NoRootElement)),
    };
    p.skip_misc()?;
    if p.peek().is_some() {
        return Err(p.err(ParseErrorKind::TrailingContent));
    }
    Ok(root)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            input,
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseXmlError {
        // Compute line/column from consumed chars.
        let mut line = 1;
        let mut column = 1;
        for &c in &self.chars[..self.pos.min(self.chars.len())] {
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        let _ = self.input; // retained for future diagnostics
        ParseXmlError { kind, line, column }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) -> Result<(), ParseXmlError> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => {
                self.pos -= 1;
                Err(self.err(ParseErrorKind::UnexpectedChar(c)))
            }
            None => Err(self.err(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, marker: &str) -> Result<(), ParseXmlError> {
        while !self.starts_with(marker) {
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            }
        }
        self.pos += marker.chars().count();
        Ok(())
    }

    /// Skips the XML declaration, whitespace, comments, PIs, and DOCTYPE.
    fn skip_prolog(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>', tolerating nested brackets.
                let mut depth = 0i32;
                loop {
                    match self.bump() {
                        Some('[') => depth += 1,
                        Some(']') => depth -= 1,
                        Some('>') if depth <= 0 => break,
                        Some(_) => {}
                        None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Skips trailing whitespace/comments/PIs after the root element.
    fn skip_misc(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return match self.peek() {
                Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar(c))),
                None => Err(self.err(ParseErrorKind::UnexpectedEof)),
            };
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        self.eat('<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(&name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.pos += 1;
                    self.eat('>')?;
                    return Ok(element);
                }
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    self.eat('=')?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ ('"' | '\'')) => q,
                        Some(c) => {
                            self.pos -= 1;
                            return Err(self.err(ParseErrorKind::UnexpectedChar(c)));
                        }
                        None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    };
                    let mut value = String::new();
                    loop {
                        match self.peek() {
                            Some(c) if c == quote => {
                                self.pos += 1;
                                break;
                            }
                            Some('&') => value.push_str(&self.parse_entity()?),
                            Some(c) => {
                                value.push(c);
                                self.pos += 1;
                            }
                            None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                        }
                    }
                    element.push_attribute(attr, value);
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(ParseErrorKind::MismatchedClose {
                        expected: name,
                        found: close,
                    }));
                }
                self.skip_ws();
                self.eat('>')?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".chars().count();
                let start = self.pos;
                while !self.starts_with("]]>") {
                    if self.bump().is_none() {
                        return Err(self.err(ParseErrorKind::UnexpectedEof));
                    }
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                element.push_child(XmlNode::Text(text));
                self.pos += 3;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some('<') {
                let child = self.parse_element()?;
                element.push_child(child);
            } else if self.peek().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof));
            } else {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    element.push_child(XmlNode::Text(text));
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, ParseXmlError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                Some('<') | None => return Ok(out),
                Some('&') => out.push_str(&self.parse_entity()?),
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_entity(&mut self) -> Result<String, ParseXmlError> {
        self.eat('&')?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != ';') {
            self.pos += 1;
        }
        if self.peek().is_none() {
            return Err(self.err(ParseErrorKind::UnexpectedEof));
        }
        let body: String = self.chars[start..self.pos].iter().collect();
        self.pos += 1; // ';'
        let resolved = match body.as_str() {
            "amp" => "&".to_string(),
            "lt" => "<".to_string(),
            "gt" => ">".to_string(),
            "quot" => "\"".to_string(),
            "apos" => "'".to_string(),
            _ if body.starts_with('#') => {
                let digits = &body[1..];
                let code = if let Some(hex) = digits.strip_prefix('x').or(digits.strip_prefix('X'))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse::<u32>()
                };
                match code.ok().and_then(char::from_u32) {
                    Some(c) => c.to_string(),
                    None => {
                        return Err(self.err(ParseErrorKind::InvalidCharRef(digits.to_string())))
                    }
                }
            }
            _ => return Err(self.err(ParseErrorKind::UnknownEntity(body))),
        };
        Ok(resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_1_descriptor() {
        let doc = parse(
            "<article>\n  <author>\n    <first>John</first>\n    <last>Smith</last>\n  </author>\n  <title>TCP</title>\n  <conf>SIGCOMM</conf>\n  <year>1989</year>\n  <size>315635</size>\n</article>",
        )
        .unwrap();
        assert_eq!(doc.name(), "article");
        assert_eq!(doc.path_text("author/first").as_deref(), Some("John"));
        assert_eq!(doc.path_text("size").as_deref(), Some("315635"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let src = "<a><b>text</b><c x=\"1\"/></a>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
        // Parse what we wrote: stable fixpoint.
        assert_eq!(parse(&doc.to_xml()).unwrap(), doc);
    }

    #[test]
    fn xml_declaration_and_comments() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- DBLP-like -->\n<article><title>X</title></article>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.find("title").unwrap().text(), "X");
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse("<!DOCTYPE dblp SYSTEM \"dblp.dtd\"><dblp><article/></dblp>").unwrap();
        assert_eq!(doc.name(), "dblp");
    }

    #[test]
    fn entities_decode() {
        let doc =
            parse("<t>a &amp; b &lt;c&gt; &quot;d&quot; &apos;e&apos; &#65; &#x42;</t>").unwrap();
        assert_eq!(doc.text(), "a & b <c> \"d\" 'e' A B");
    }

    #[test]
    fn entities_in_attributes() {
        let doc = parse("<t k=\"a&amp;b\"/>").unwrap();
        assert_eq!(doc.attribute("k"), Some("a&b"));
    }

    #[test]
    fn cdata_section() {
        let doc = parse("<t><![CDATA[<raw> & unescaped]]></t>").unwrap();
        assert_eq!(doc.text(), "<raw> & unescaped");
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<t k='v'/>").unwrap();
        assert_eq!(doc.attribute("k"), Some("v"));
    }

    #[test]
    fn error_mismatched_close() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedClose { .. }));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_unexpected_eof() {
        let err = parse("<a><b>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_unknown_entity() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnknownEntity("nope".into()));
    }

    #[test]
    fn error_invalid_char_ref() {
        let err = parse("<a>&#xD800;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidCharRef(_)));
    }

    #[test]
    fn error_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TrailingContent);
    }

    #[test]
    fn error_no_root() {
        let err = parse("   ").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NoRootElement);
        let err = parse("just text").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::NoRootElement);
    }

    #[test]
    fn error_positions_track_lines() {
        let err = parse("<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.column > 1);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.children().len(), 1);
    }

    #[test]
    fn display_of_errors() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("unknown entity"));
        assert!(text.contains("line 1"));
    }

    #[test]
    fn deeply_nested() {
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("<n{i}>"));
        }
        src.push_str("leaf");
        for i in (0..50).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&src).unwrap();
        let mut cur = &doc;
        for _ in 0..49 {
            cur = cur.child_elements().next().unwrap();
        }
        assert_eq!(cur.text(), "leaf");
    }
}
