//! [`RemoteDht`]: the [`Dht`] trait over real TCP sockets.
//!
//! The client holds the cluster membership (node id → address) and routes
//! exactly like [`RingDht`](p2p_index_dht::RingDht): the node responsible
//! for a key is its clockwise successor on the identifier circle, resolved
//! with one local `BTreeMap::range` lookup. Only storage operations (put /
//! get / remove) cross the wire — `NodeFor` is answered locally at zero
//! message cost, mirroring the in-process substrates — so a cluster of
//! single-node servers named `node-0..n-1` produces results and message
//! counts identical to an in-process `RingDht::with_named_nodes(n)`.
//!
//! # Error mapping
//!
//! Remote [`DhtError`]s travel the wire as stable codes and surface
//! unchanged. Transport failures — connect refused, socket timeout, short
//! read, malformed reply, response-id mismatch — all map to
//! [`DhtError::Timeout`], the transient variant, so the index layer's
//! existing `RetryPolicy` retries them without knowing sockets exist. A
//! failed connection is dropped from the pool and redialed on the next
//! call.
//!
//! # Accounting
//!
//! The `messages` counter increments by 2 for every request/response frame
//! pair that completes (the RPC-pair convention pinned in the conformance
//! suite); `lookups` increments for successful put/get, matching
//! `RingDht`. Transport failures count nothing — no response arrived, so
//! no pair completed. `net.*` metrics additionally count raw frames and
//! bytes, which is what lets the multi-process harness cross-check
//! `net.frames_out + net.frames_in == dht.messages`.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;
use p2p_index_dht::{self as dht_api, Dht, DhtError, DhtOp, DhtResponse, DhtStats, Key, NodeId};
use p2p_index_obs::MetricsRegistry;

use crate::wire::{read_message, write_message, Message, RecvError};

/// Tuning knobs for a [`RemoteDht`] client.
#[derive(Debug, Clone)]
pub struct RemoteDhtConfig {
    /// Timeout for dialing a member.
    pub connect_timeout: Duration,
    /// Socket read timeout — bounds how long one RPC can stall.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for RemoteDhtConfig {
    fn default() -> Self {
        RemoteDhtConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// One cluster member: a pooled connection to a `dhtd` server, keyed by
/// the node identifier it serves.
struct Member {
    id: NodeId,
    addr: SocketAddr,
    /// Lazily-dialed pooled connection; poisoned-on-failure (dropped and
    /// redialed on the next call).
    conn: Mutex<Option<TcpStream>>,
}

/// A transport-level failure: no response frame arrived. Distinct from a
/// remote [`DhtError`], which is a *successful* RPC reporting a fault.
struct Transport;

/// A DHT client speaking the `crates/net` wire protocol to a cluster of
/// `dhtd` servers, implementing the same [`Dht`] trait the in-process
/// substrates do — `IndexService`, retry policies, and metrics all run
/// unchanged over real sockets.
pub struct RemoteDht {
    /// Node position → member, ordered around the identifier circle so
    /// `range(key..)` resolves the clockwise successor, as in `RingDht`.
    members: BTreeMap<Key, Member>,
    config: RemoteDhtConfig,
    next_request_id: AtomicU64,
    lookups: AtomicU64,
    messages: AtomicU64,
    metrics: MetricsRegistry,
}

impl RemoteDht {
    /// Creates a client for the given `(node id, address)` members.
    /// Connections are dialed lazily on first use, so constructing a
    /// client never blocks; an empty member list yields a valid client
    /// whose operations report [`DhtError::NoLiveNodes`].
    pub fn connect(members: Vec<(NodeId, SocketAddr)>, config: RemoteDhtConfig) -> RemoteDht {
        let members = members
            .into_iter()
            .map(|(id, addr)| {
                (
                    *id.key(),
                    Member {
                        id,
                        addr,
                        conn: Mutex::new(None),
                    },
                )
            })
            .collect();
        RemoteDht {
            members,
            config,
            next_request_id: AtomicU64::new(1),
            lookups: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Maps addresses to the standard experiment node naming: the `i`-th
    /// address serves `NodeId::hash_of("node-{i}")` — the same identifiers
    /// `RingDht::with_named_nodes` uses, which is what makes remote and
    /// in-process runs comparable.
    pub fn named_members(addrs: &[SocketAddr]) -> Vec<(NodeId, SocketAddr)> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| (NodeId::hash_of(&format!("node-{i}")), *addr))
            .collect()
    }

    /// The configured members as `(id, addr)`, in ring order.
    pub fn members(&self) -> Vec<(NodeId, SocketAddr)> {
        self.members.values().map(|m| (m.id, m.addr)).collect()
    }

    /// Sends a shutdown frame to every member, telling each `dhtd` to stop
    /// gracefully. Dial or write failures are ignored: an unreachable
    /// server needs no shutdown.
    pub fn shutdown_members(&self) {
        for member in self.members.values() {
            let mut slot = member.conn.lock().expect("connection pool poisoned");
            let stream = match slot.take() {
                Some(stream) => Some(stream),
                None => self.dial(member.addr).ok(),
            };
            if let Some(mut stream) = stream {
                let _ = write_message(&mut stream, &Message::Shutdown);
            }
        }
    }

    /// The clockwise successor of `key` among the members, or `None` when
    /// the member list is empty. Identical placement to `RingDht::owner`.
    fn owner_key(&self, key: &Key) -> Option<Key> {
        self.members
            .range(*key..)
            .next()
            .or_else(|| self.members.iter().next())
            .map(|(k, _)| *k)
    }

    fn dial(&self, addr: SocketAddr) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One RPC round-trip against `member`. The outer `Err(Transport)`
    /// means no response frame arrived (and the pooled connection was
    /// dropped); the inner result is whatever the server answered.
    fn call(&self, member: &Member, op: DhtOp) -> Result<Result<DhtResponse, DhtError>, Transport> {
        let mut slot = member.conn.lock().expect("connection pool poisoned");
        if slot.is_none() {
            match self.dial(member.addr) {
                Ok(stream) => *slot = Some(stream),
                Err(_) => {
                    self.metrics.incr("net.connect_errors");
                    return Err(Transport);
                }
            }
        }
        let stream = slot.as_mut().expect("connection just ensured");
        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let sent = match write_message(stream, &Message::Request { id, op }) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.metrics.incr("net.transport_errors");
                *slot = None;
                return Err(Transport);
            }
        };
        self.metrics.incr("net.frames_out");
        self.metrics.add("net.bytes_out", sent as u64);
        let (reply, received) = match read_message(stream) {
            Ok(ok) => ok,
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => {
                self.metrics.incr("net.transport_errors");
                *slot = None;
                return Err(Transport);
            }
            Err(RecvError::Wire(_)) => {
                self.metrics.incr("net.decode_errors");
                *slot = None;
                return Err(Transport);
            }
        };
        self.metrics.incr("net.frames_in");
        self.metrics.add("net.bytes_in", received as u64);
        match reply {
            Message::Response {
                id: reply_id,
                result,
            } if reply_id == id => {
                self.metrics
                    .observe("net.rpc_micros", started.elapsed().as_micros() as u64);
                Ok(result)
            }
            // A mismatched id or an unexpected message kind means the
            // stream is out of sync; drop it rather than guess.
            _ => {
                self.metrics.incr("net.decode_errors");
                *slot = None;
                Err(Transport)
            }
        }
    }

    /// Routes a storage op to the responsible member and applies the
    /// ring accounting convention: +2 messages per completed RPC pair,
    /// +1 lookup for successful put/get.
    fn remote_op(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let kind = op.kind();
        let owner = self.owner_key(op.key()).ok_or(DhtError::NoLiveNodes)?;
        let member = &self.members[&owner];
        self.metrics.incr(&format!("net.ops.{kind}"));
        match self.call(member, op) {
            Ok(result) => {
                self.messages.fetch_add(2, Ordering::Relaxed);
                if result.is_ok() && matches!(kind, "put" | "get") {
                    self.lookups.fetch_add(1, Ordering::Relaxed);
                }
                result
            }
            Err(Transport) => Err(DhtError::Timeout),
        }
    }

    fn execute_inner(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if self.members.is_empty() {
            return Err(DhtError::NoLiveNodes);
        }
        match op {
            DhtOp::NodeFor(key) => {
                let owner = self.owner_key(&key).expect("non-empty member list");
                Ok(DhtResponse::Node(self.members[&owner].id))
            }
            op => self.remote_op(op),
        }
    }
}

impl Dht for RemoteDht {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        dht_api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.owner_key(key).map(|k| self.members[&k].id)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.members.values().map(|m| m.id).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        if self.members.is_empty() {
            return Vec::new();
        }
        match self.remote_op(DhtOp::Get(*key)) {
            Ok(response) => response.into_values(),
            Err(_) => Vec::new(),
        }
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.messages.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hops: 0,
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DhtServer, ServerConfig};
    use p2p_index_dht::RingDht;

    fn free_addr() -> SocketAddr {
        // Bind then drop: the port is free again immediately after, giving
        // a loopback address that refuses connections.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn empty_member_list_reports_no_live_nodes() {
        let mut remote = RemoteDht::connect(Vec::new(), RemoteDhtConfig::default());
        assert!(remote.is_empty());
        assert_eq!(
            remote.execute(DhtOp::Get(Key::hash_of("k"))),
            Err(DhtError::NoLiveNodes)
        );
        assert_eq!(remote.node_for(&Key::hash_of("k")), None);
        assert!(Dht::get(&remote, &Key::hash_of("k")).is_empty());
    }

    #[test]
    fn connect_refused_maps_to_transient_timeout() {
        let mut remote = RemoteDht::connect(
            vec![(NodeId::hash_of("node-0"), free_addr())],
            RemoteDhtConfig {
                connect_timeout: Duration::from_millis(200),
                ..RemoteDhtConfig::default()
            },
        );
        let err = remote
            .execute(DhtOp::Get(Key::hash_of("k")))
            .expect_err("nobody is listening");
        assert_eq!(err, DhtError::Timeout);
        assert!(err.is_transient(), "transport faults must be retriable");
        // No response frame arrived, so no RPC pair completed.
        assert_eq!(remote.stats().messages, 0);
    }

    #[test]
    fn node_for_is_local_and_free() {
        let server = DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let mut remote = RemoteDht::connect(
            RemoteDht::named_members(&[server.local_addr()]),
            RemoteDhtConfig::default(),
        );
        let resolved = remote
            .execute(DhtOp::NodeFor(Key::hash_of("anything")))
            .unwrap();
        assert_eq!(resolved, DhtResponse::Node(NodeId::hash_of("node-0")));
        assert_eq!(remote.stats().messages, 0, "NodeFor never hits the wire");
        server.shutdown();
    }

    #[test]
    fn remote_accounting_matches_in_process_ring() {
        let ids: Vec<Key> = (0..3).map(|i| Key::hash_of(&format!("node-{i}"))).collect();
        let servers: Vec<DhtServer> = ids
            .iter()
            .map(|id| {
                DhtServer::spawn(
                    Box::new(RingDht::from_ids([*id])),
                    "127.0.0.1:0",
                    ServerConfig::default(),
                )
                .unwrap()
            })
            .collect();
        let members: Vec<(NodeId, SocketAddr)> = ids
            .iter()
            .zip(&servers)
            .map(|(id, s)| (NodeId::from_key(*id), s.local_addr()))
            .collect();
        let mut remote = RemoteDht::connect(members, RemoteDhtConfig::default());
        let mut ring = RingDht::from_ids(ids);

        for i in 0..20 {
            let key = Key::hash_of(&format!("item-{i}"));
            let value = Bytes::from(format!("value-{i}"));
            assert_eq!(remote.put(key, value.clone()), ring.put(key, value));
        }
        for i in 0..20 {
            let key = Key::hash_of(&format!("item-{i}"));
            assert_eq!(Dht::get(&remote, &key), Dht::get(&ring, &key), "item {i}");
            assert_eq!(remote.node_for(&key), ring.node_for(&key));
        }
        assert!(remote.remove(&Key::hash_of("item-0"), b"value-0"));
        assert!(ring.remove(&Key::hash_of("item-0"), b"value-0"));

        assert_eq!(remote.stats(), ring.stats(), "accounting must be identical");
        remote.shutdown_members();
    }
}
