//! Deterministic fault injection around any [`Dht`] substrate.
//!
//! Real DHT deployments lose messages and churn nodes; the Kademlia
//! harvesting literature treats partial failure as the normal case. This
//! module wraps a healthy substrate in [`FaultyDht`], which injects three
//! fault classes into every [`Dht::execute`] call, driven by a seeded RNG
//! so experiment runs are exactly reproducible:
//!
//! * **request loss** — the operation never reaches the responsible node
//!   (no effect on storage, the caller sees [`DhtError::Timeout`]);
//! * **response loss** — the operation takes effect but the acknowledgement
//!   is lost (storage mutated, the caller still sees a timeout — the
//!   at-least-once ambiguity retry layers must tolerate);
//! * **node churn** — a random live node crashes, or a fresh node joins,
//!   after which the substrate's [`NodeChurn::stabilize`] repair runs.
//!
//! The `&self` read paths (`node_for`, `get`, `nodes`) pass through
//! fault-free: the index layer drives all accounted traffic through
//! `execute`, and keeping the shared read path infallible preserves the
//! historical trait contract for concurrent readers.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use p2p_index_dht::{Dht, DhtOp, FaultConfig, FaultyDht, Key, RingDht};
//!
//! let ring = RingDht::with_named_nodes(64);
//! let mut dht = FaultyDht::new(ring, FaultConfig::lossy(42, 0.5));
//! let key = Key::hash_of("item");
//! // Half the operations time out; with enough attempts one lands.
//! let mut stored = false;
//! for _ in 0..32 {
//!     if dht.execute(DhtOp::Put { key, value: Bytes::from_static(b"v") }).is_ok() {
//!         stored = true;
//!         break;
//!     }
//! }
//! assert!(stored || dht.fault_stats().injected() > 0);
//! ```

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId};
use crate::key::Key;

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Used for fault rolls here and backoff jitter in the retry layer; kept
/// dependency-free so the substrate crate stays self-contained.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform index in `[0, n)`. `n` must be non-zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Fault rates and the seed that drives them.
///
/// The default configuration injects nothing, so wrapping a substrate in
/// [`FaultyDht`] with `FaultConfig::default()` is behavior-neutral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault RNG; equal seeds replay the same fault sequence.
    pub seed: u64,
    /// Probability that an operation's request or response is lost.
    pub loss: f64,
    /// Probability that an operation is preceded by a churn event
    /// (alternating crash / join).
    pub churn: f64,
}

impl FaultConfig {
    /// No faults at all (the default).
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            loss: 0.0,
            churn: 0.0,
        }
    }

    /// Message loss only, at rate `loss`, driven by `seed`.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultConfig {
            seed,
            loss,
            churn: 0.0,
        }
    }

    /// `true` if this configuration can inject any fault.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0 || self.churn > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters describing the faults a [`FaultyDht`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations submitted through `execute`.
    pub attempts: u64,
    /// Operations dropped before reaching the responsible node.
    pub requests_lost: u64,
    /// Operations applied whose acknowledgement was then dropped.
    pub responses_lost: u64,
    /// Nodes crashed by churn.
    pub crashes: u64,
    /// Nodes joined by churn.
    pub joins: u64,
}

impl FaultStats {
    /// Total injected faults of any class.
    pub fn injected(&self) -> u64 {
        self.requests_lost + self.responses_lost + self.crashes + self.joins
    }
}

/// A fault-injecting wrapper around any substrate that supports churn.
///
/// All faults are injected in [`Dht::execute`]; see the [module
/// docs](self) for the fault model. Reads through `&self` pass through
/// untouched. With [`FaultConfig::none`] the wrapper is fully transparent:
/// same results, same [`DhtStats`], no RNG draws.
#[derive(Debug, Clone)]
pub struct FaultyDht<D> {
    inner: D,
    cfg: FaultConfig,
    rng: SplitMix64,
    fstats: FaultStats,
    /// Sequence number for naming churn joiners; also alternates
    /// crash/join so membership stays roughly stable.
    churn_events: u64,
    metrics: MetricsRegistry,
}

impl<D> FaultyDht<D> {
    /// Wraps `inner`, injecting faults according to `cfg`.
    pub fn new(inner: D, cfg: FaultConfig) -> Self {
        FaultyDht {
            inner,
            cfg,
            rng: SplitMix64::new(cfg.seed),
            fstats: FaultStats::default(),
            churn_events: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    /// Wraps `inner` with faults disabled (transparent passthrough).
    pub fn transparent(inner: D) -> Self {
        Self::new(inner, FaultConfig::none())
    }

    /// The active fault configuration.
    pub fn fault_config(&self) -> FaultConfig {
        self.cfg
    }

    /// Replaces the fault configuration and reseeds the fault RNG.
    ///
    /// Typical experiment shape: build and populate the index with faults
    /// disabled, then switch them on for the query phase.
    pub fn set_fault_config(&mut self, cfg: FaultConfig) {
        self.cfg = cfg;
        self.rng = SplitMix64::new(cfg.seed);
    }

    /// Counters for the faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Read access to the wrapped substrate.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped substrate (bypasses fault injection).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the substrate, discarding fault state.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: Dht + NodeChurn> FaultyDht<D> {
    /// Rolls for a churn event before an operation.
    fn maybe_churn(&mut self) {
        if self.cfg.churn <= 0.0 || !self.rng.gen_bool(self.cfg.churn) {
            return;
        }
        self.churn_events += 1;
        if self.churn_events % 2 == 1 {
            // Crash a random live node — but never the last one, which
            // would wipe the network (and its data) outright.
            let nodes = self.inner.nodes();
            if nodes.len() > 1 {
                let victim = nodes[self.rng.gen_index(nodes.len())];
                if self.inner.kill(victim) {
                    self.fstats.crashes += 1;
                    self.metrics.incr("fault.crashes");
                    self.inner.stabilize();
                }
            }
        } else {
            let id = NodeId::hash_of(&format!("faulty-churn-{}", self.churn_events));
            if self.inner.spawn(id) {
                self.fstats.joins += 1;
                self.metrics.incr("fault.joins");
                self.inner.stabilize();
            }
        }
    }
}

impl<D: Dht + NodeChurn> Dht for FaultyDht<D> {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        self.fstats.attempts += 1;
        self.metrics.incr("fault.attempts");
        self.maybe_churn();
        if self.cfg.loss > 0.0 && self.rng.gen_bool(self.cfg.loss) {
            // A lost message: even odds the request itself vanished (the
            // operation never happened) vs. the response (it happened but
            // the caller cannot know). Callers observe only the timeout.
            if self.rng.gen_bool(0.5) {
                self.fstats.requests_lost += 1;
                self.metrics.incr("fault.requests_lost");
            } else {
                self.fstats.responses_lost += 1;
                self.metrics.incr("fault.responses_lost");
                let _ = self.inner.execute(op);
            }
            return Err(DhtError::Timeout);
        }
        self.inner.execute(op)
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.inner.node_for(key)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.inner.nodes()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        self.inner.get(key)
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        // Maintenance enumeration bypasses fault injection: drain and
        // repair walk the substrate's real contents, faults apply only
        // to the operation path.
        self.inner.entries()
    }

    fn stats(&self) -> DhtStats {
        self.inner.stats()
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        // Keep a handle for fault counters and forward the same registry
        // to the wrapped substrate, which records the `dht.*` series.
        self.metrics = metrics.clone();
        self.inner.set_metrics(metrics);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<D: Dht + NodeChurn> NodeChurn for FaultyDht<D> {
    fn spawn(&mut self, id: NodeId) -> bool {
        self.inner.spawn(id)
    }

    fn kill(&mut self, id: NodeId) -> bool {
        self.inner.kill(id)
    }

    fn stabilize(&mut self) {
        self.inner.stabilize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingDht;

    fn put_op(name: &str) -> DhtOp {
        DhtOp::Put {
            key: Key::hash_of(name),
            value: Bytes::from(format!("v-{name}")),
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        let hits = (0..10_000).filter(|_| c.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.gen_index(5) < 5);
        }
    }

    #[test]
    fn transparent_wrapper_changes_nothing() {
        let mut plain = RingDht::with_named_nodes(32);
        let mut wrapped = FaultyDht::transparent(RingDht::with_named_nodes(32));
        for i in 0..50 {
            let op = put_op(&format!("item-{i}"));
            assert_eq!(plain.execute(op.clone()), wrapped.execute(op));
        }
        let probe = Key::hash_of("item-7");
        assert_eq!(plain.get(&probe), wrapped.get(&probe));
        assert_eq!(plain.stats(), wrapped.stats());
        assert_eq!(wrapped.fault_stats().injected(), 0);
    }

    #[test]
    fn loss_rate_one_times_out_everything() {
        let ring = RingDht::with_named_nodes(8);
        let mut dht = FaultyDht::new(ring, FaultConfig::lossy(1, 1.0));
        for i in 0..20 {
            assert_eq!(
                dht.execute(put_op(&format!("i{i}"))),
                Err(DhtError::Timeout)
            );
        }
        let s = dht.fault_stats();
        assert_eq!(s.attempts, 20);
        assert_eq!(s.requests_lost + s.responses_lost, 20);
        // Response-lost writes really landed; request-lost ones did not.
        let landed: usize = (0..20)
            .filter(|i| !dht.get(&Key::hash_of(&format!("i{i}"))).is_empty())
            .count();
        assert_eq!(landed as u64, s.responses_lost);
    }

    #[test]
    fn same_seed_replays_same_fault_sequence() {
        let run = || {
            let mut dht =
                FaultyDht::new(RingDht::with_named_nodes(16), FaultConfig::lossy(99, 0.4));
            (0..100)
                .map(|i| dht.execute(put_op(&format!("x{i}"))).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_crashes_and_joins_nodes() {
        let cfg = FaultConfig {
            seed: 5,
            loss: 0.0,
            churn: 1.0,
        };
        let mut dht = FaultyDht::new(RingDht::with_named_nodes(16), cfg);
        for i in 0..40 {
            let _ = dht.execute(put_op(&format!("c{i}")));
        }
        let s = dht.fault_stats();
        assert!(s.crashes > 0, "expected crashes, got {s:?}");
        assert!(s.joins > 0, "expected joins, got {s:?}");
        // Alternating crash/join keeps the network near its original size.
        assert!(dht.len() >= 8 && dht.len() <= 24, "len = {}", dht.len());
        assert!(!dht.is_empty());
    }

    #[test]
    fn reseeding_restarts_the_fault_stream() {
        let mut dht = FaultyDht::new(RingDht::with_named_nodes(8), FaultConfig::lossy(3, 0.5));
        let first: Vec<bool> = (0..50)
            .map(|i| dht.execute(put_op(&format!("r{i}"))).is_ok())
            .collect();
        dht.set_fault_config(FaultConfig::lossy(3, 0.5));
        let second: Vec<bool> = (0..50)
            .map(|i| dht.execute(put_op(&format!("r{i}"))).is_ok())
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn empty_network_reports_no_live_nodes() {
        let mut dht = FaultyDht::transparent(RingDht::new());
        assert_eq!(
            dht.execute(DhtOp::Get(Key::hash_of("k"))),
            Err(DhtError::NoLiveNodes)
        );
    }
}
