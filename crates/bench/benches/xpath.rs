//! Micro-benchmarks of the query language: parsing, evaluation,
//! normalization, and the covering relation.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_index_xmldoc::Descriptor;
use p2p_index_xpath::{parse_query, Query};
use std::hint::black_box;

const MSD_TEXT: &str =
    "/article[author[first/John][last/Smith]][conf/SIGCOMM][size/315635][title/TCP][year/1989]";
const BROAD_TEXT: &str = "/article/author[first/John][last/Smith]";

fn descriptor() -> Descriptor {
    Descriptor::parse(
        "<article><author><first>John</first><last>Smith</last></author>\
         <title>TCP</title><conf>SIGCOMM</conf><year>1989</year><size>315635</size></article>",
    )
    .expect("valid descriptor")
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("xpath/parse_broad", |b| {
        b.iter(|| parse_query(black_box(BROAD_TEXT)).expect("parses"))
    });
    c.bench_function("xpath/parse_msd", |b| {
        b.iter(|| parse_query(black_box(MSD_TEXT)).expect("parses"))
    });
}

fn bench_display(c: &mut Criterion) {
    let q = parse_query(MSD_TEXT).expect("parses");
    c.bench_function("xpath/canonical_text", |b| {
        b.iter(|| black_box(&q).to_string())
    });
}

fn bench_matches(c: &mut Criterion) {
    let d = descriptor();
    let broad = parse_query(BROAD_TEXT).expect("parses");
    let msd = parse_query(MSD_TEXT).expect("parses");
    let descendant = parse_query("//last/Smith").expect("parses");
    c.bench_function("xpath/matches_broad", |b| {
        b.iter(|| broad.matches(black_box(d.root())))
    });
    c.bench_function("xpath/matches_msd", |b| {
        b.iter(|| msd.matches(black_box(d.root())))
    });
    c.bench_function("xpath/matches_descendant", |b| {
        b.iter(|| descendant.matches(black_box(d.root())))
    });
}

fn bench_covers(c: &mut Criterion) {
    let broad = parse_query(BROAD_TEXT).expect("parses");
    let msd = parse_query(MSD_TEXT).expect("parses");
    let other = parse_query("/article/conf/INFOCOM").expect("parses");
    c.bench_function("xpath/covers_hit", |b| {
        b.iter(|| broad.covers(black_box(&msd)))
    });
    c.bench_function("xpath/covers_miss", |b| {
        b.iter(|| other.covers(black_box(&msd)))
    });
}

fn bench_msd_derivation(c: &mut Criterion) {
    let d = descriptor();
    c.bench_function("xpath/most_specific", |b| {
        b.iter(|| Query::most_specific(black_box(&d)))
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_display,
    bench_matches,
    bench_covers,
    bench_msd_derivation,
);
criterion_main!(benches);
