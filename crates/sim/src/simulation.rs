//! The evaluation simulator (§V-E of the paper).
//!
//! "Our experiments simulate a P2P network of 500 nodes, on top of which a
//! distributed bibliographic database storing 10 000 articles is
//! implemented. … Each simulation consists of sequentially feeding the
//! indexing network with 50 000 queries from our query generator."
//!
//! [`Simulation::run`] executes exactly that protocol for one
//! (scheme, cache policy) cell and returns the [`Metrics`] every figure and
//! table is derived from. The user model follows §V-E(c): a user submits a
//! query, receives a list of more specific queries, "selects one query from
//! the results that matches the target article", and iterates until the
//! article is found; non-indexed queries recover through
//! generalization, and successful lookups create cache shortcuts.

use std::collections::HashMap;
use std::sync::Arc;

use p2p_index_core::{
    CachePolicy, ComplexScheme, Fig4Scheme, FlatScheme, IndexScheme, IndexService, IndexTarget,
    SimpleScheme, Traffic,
};
use p2p_index_dht::{Dht, NodeId, RingDht};
use p2p_index_obs::{MetricsRegistry, MetricsSnapshot};
use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};
use p2p_index_xpath::Query;
use serde::{Deserialize, Serialize};

/// Which of the paper's index schemes a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// Fig. 8 left.
    Simple,
    /// Fig. 8 center.
    Flat,
    /// Fig. 8 right.
    Complex,
    /// Fig. 4 (extension: the deeper hierarchy with a last-name level).
    Fig4,
}

impl SchemeChoice {
    /// The three schemes of the paper's evaluation, in figure order.
    pub const PAPER: [SchemeChoice; 3] = [
        SchemeChoice::Simple,
        SchemeChoice::Flat,
        SchemeChoice::Complex,
    ];

    /// The scheme implementation.
    pub fn scheme(&self) -> &'static dyn IndexScheme {
        match self {
            SchemeChoice::Simple => &SimpleScheme,
            SchemeChoice::Flat => &FlatScheme,
            SchemeChoice::Complex => &ComplexScheme,
            SchemeChoice::Fig4 => &Fig4Scheme,
        }
    }

    /// One-letter label used in the paper's figures (S / F / C).
    pub fn letter(&self) -> &'static str {
        match self {
            SchemeChoice::Simple => "S",
            SchemeChoice::Flat => "F",
            SchemeChoice::Complex => "C",
            SchemeChoice::Fig4 => "H",
        }
    }

    /// Full label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeChoice::Simple => "Simple",
            SchemeChoice::Flat => "Flat",
            SchemeChoice::Complex => "Complex",
            SchemeChoice::Fig4 => "Fig4",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of DHT nodes (paper: 500).
    pub nodes: usize,
    /// Number of articles (paper: 10 000).
    pub articles: usize,
    /// Number of queries fed sequentially (paper: 50 000).
    pub queries: usize,
    /// The index scheme under test.
    pub scheme: SchemeChoice,
    /// The cache policy under test.
    pub policy: CachePolicy,
    /// Query-structure mix (defaults to the §V-C simulation mix).
    pub mix: StructureMix,
    /// Seed for corpus and workload generation.
    pub seed: u64,
    /// Attach a [`MetricsRegistry`] to the service for the query phase,
    /// so [`Simulation::metrics_snapshot`] returns the observability
    /// counters. Off by default: recording is skipped entirely and the
    /// simulation behaves byte-identically to a build without it.
    pub collect_metrics: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 500,
            articles: 10_000,
            queries: 50_000,
            scheme: SchemeChoice::Simple,
            policy: CachePolicy::None,
            mix: StructureMix::paper_simulation(),
            seed: 42,
            collect_metrics: false,
        }
    }
}

impl SimConfig {
    /// A scaled-down configuration for tests and benches.
    pub fn small(scheme: SchemeChoice, policy: CachePolicy) -> SimConfig {
        SimConfig {
            nodes: 50,
            articles: 400,
            queries: 2_000,
            scheme,
            policy,
            ..SimConfig::default()
        }
    }
}

/// Everything measured during one run; the raw material of Figs. 11-15 and
/// Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Scheme label.
    pub scheme: String,
    /// Policy label.
    pub policy: String,
    /// Queries fed.
    pub queries: usize,
    /// Total user-system interactions across all queries (Fig. 11).
    pub interactions: u64,
    /// Queries resolved (fully or partly) through a cache shortcut (Fig. 13).
    pub cache_hits: u64,
    /// Cache hits whose shortcut was found on the *first* node contacted.
    pub cache_hits_first_node: u64,
    /// Queries whose initial lookup found nothing — accesses to non-indexed
    /// data, the paper's recoverable errors (Table I).
    pub errors: u64,
    /// Extra interactions spent generalizing those queries.
    pub generalization_interactions: u64,
    /// Queries whose target was never located (expected 0).
    pub failed: u64,
    /// Final traffic counters (Fig. 12).
    pub traffic: Traffic,
    /// Per-node counts of lookups served, unordered (Fig. 15).
    pub node_query_counts: Vec<u64>,
    /// Per-node regular (index + file) key counts (§V-E(f)).
    pub keys_per_node: Vec<usize>,
    /// Per-node cached-shortcut counts (Fig. 14).
    pub cached_keys_per_node: Vec<usize>,
    /// Fraction of node caches at capacity (LRU policies only).
    pub cache_full_fraction: f64,
    /// Fraction of node caches that stayed completely empty.
    pub cache_empty_fraction: f64,
    /// Total bytes of query-to-query index entries stored in the DHT
    /// (values only; §V-B).
    pub index_entry_bytes: u64,
    /// Total number of stored index values (query-to-query mappings).
    pub index_entry_count: u64,
    /// Per-query-structure breakdown: `(label, queries, interactions,
    /// errors)` — not a paper exhibit, but explains the Fig. 11 averages.
    pub by_structure: Vec<(String, u64, u64, u64)>,
}

impl Metrics {
    /// Mean interactions per query (Fig. 11 y-axis).
    pub fn mean_interactions(&self) -> f64 {
        self.interactions as f64 / self.queries.max(1) as f64
    }

    /// Distributed cache hit ratio (Fig. 13 y-axis).
    pub fn hit_ratio(&self) -> f64 {
        self.cache_hits as f64 / self.queries.max(1) as f64
    }

    /// Of all cache hits, the fraction that occurred on the first node.
    pub fn first_node_hit_fraction(&self) -> f64 {
        if self.cache_hits == 0 {
            0.0
        } else {
            self.cache_hits_first_node as f64 / self.cache_hits as f64
        }
    }

    /// Mean normal traffic per query in bytes (Fig. 12 light bars).
    pub fn normal_bytes_per_query(&self) -> f64 {
        self.traffic.normal_bytes as f64 / self.queries.max(1) as f64
    }

    /// Mean cache traffic per query in bytes (Fig. 12 dark bars).
    pub fn cache_bytes_per_query(&self) -> f64 {
        self.traffic.cache_bytes as f64 / self.queries.max(1) as f64
    }

    /// Mean regular keys per node (§V-E(f)).
    pub fn mean_keys_per_node(&self) -> f64 {
        mean_usize(&self.keys_per_node)
    }

    /// Mean cached keys per node (Fig. 14 y-axis).
    pub fn mean_cached_keys_per_node(&self) -> f64 {
        mean_usize(&self.cached_keys_per_node)
    }

    /// Maximum cached keys on any node (§V-E(f)).
    pub fn max_cached_keys_per_node(&self) -> usize {
        self.cached_keys_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Per-node share of query processing, sorted descending, as
    /// percentages of all queries fed (Fig. 15; sums to >100% because each
    /// query triggers several lookups).
    pub fn node_load_percentages(&self) -> Vec<f64> {
        let mut counts = self.node_query_counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
            .into_iter()
            .map(|c| 100.0 * c as f64 / self.queries.max(1) as f64)
            .collect()
    }
}

fn mean_usize(values: &[usize]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<usize>() as f64 / values.len() as f64
    }
}

/// The per-query outcome, exposed for tests and fine-grained analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Lookup steps performed for this query.
    pub interactions: u32,
    /// Whether a cache shortcut was used.
    pub cache_hit: bool,
    /// Whether the shortcut was found at the first node.
    pub cache_hit_first_node: bool,
    /// Whether the initial query was non-indexed (recoverable error).
    pub error: bool,
    /// Whether the target article was located.
    pub found: bool,
}

/// One full simulation: corpus + DHT + index service + workload.
pub struct Simulation {
    config: SimConfig,
    corpus: Arc<Corpus>,
    service: IndexService<RingDht>,
    msds: Vec<Query>,
    /// Stored-file handles, one per article — rendered once at prepare time
    /// so the query loop never re-formats a file name.
    files: Vec<String>,
}

impl Simulation {
    /// The corpus parameters implied by a simulation config. Cells that
    /// share `(articles, seed)` generate identical corpora, so a grid can
    /// build the corpus once and share it read-only across cells.
    pub fn corpus_config(config: &SimConfig) -> CorpusConfig {
        CorpusConfig {
            articles: config.articles,
            author_pool: (config.articles / 3).max(16),
            seed: config.seed,
            ..CorpusConfig::default()
        }
    }

    /// Builds the network and publishes the whole corpus under the
    /// configured scheme.
    pub fn prepare(config: SimConfig) -> Simulation {
        let corpus = Arc::new(Corpus::generate(Simulation::corpus_config(&config)));
        Simulation::prepare_with_corpus(config, corpus)
    }

    /// Like [`prepare`](Self::prepare), but over a pre-generated corpus —
    /// the experiment grids generate each corpus once and share it
    /// (read-only, behind an `Arc`) across all cells with the same
    /// `(articles, seed)`, instead of re-synthesizing it per cell. The
    /// corpus **must** equal `Corpus::generate(Simulation::corpus_config(&config))`
    /// for the run to be equivalent to [`prepare`](Self::prepare).
    pub fn prepare_with_corpus(config: SimConfig, corpus: Arc<Corpus>) -> Simulation {
        debug_assert_eq!(
            corpus.len(),
            config.articles,
            "corpus does not match config"
        );
        let dht = RingDht::with_named_nodes(config.nodes);
        let mut service = IndexService::new(dht, config.policy);
        let scheme = config.scheme.scheme();
        let mut msds = Vec::with_capacity(corpus.len());
        let mut files = Vec::with_capacity(corpus.len());
        for article in corpus.articles() {
            let file = article.file_name();
            let msd = service
                .publish(&article.descriptor(), file.clone(), scheme)
                .expect("network is non-empty and schemes are covering-safe");
            msds.push(msd);
            files.push(file);
        }
        service.reset_metrics();
        if config.collect_metrics {
            // Attached after publishing so the registry, like the traffic
            // counters, covers exactly the query phase.
            service.set_metrics(MetricsRegistry::new());
        }
        Simulation {
            config,
            corpus,
            service,
            msds,
            files,
        }
    }

    /// The prepared corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The index service (e.g. to inspect the DHT).
    pub fn service(&self) -> &IndexService<RingDht> {
        &self.service
    }

    /// Mutable access to the index service (e.g. to trace a lookup).
    pub fn service_mut(&mut self) -> &mut IndexService<RingDht> {
        &mut self.service
    }

    /// The observability counters recorded so far, if
    /// [`SimConfig::collect_metrics`] attached a registry.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let registry = self.service.metrics();
        registry.is_enabled().then(|| registry.snapshot())
    }

    /// The MSD of article `id`.
    pub fn msd(&self, id: usize) -> &Query {
        &self.msds[id]
    }

    /// Runs the configured number of queries and collects metrics.
    pub fn run(config: SimConfig) -> Metrics {
        let mut sim = Simulation::prepare(config);
        sim.execute()
    }

    /// Like [`run`](Self::run), but also returns the observability
    /// snapshot when [`SimConfig::collect_metrics`] is set.
    pub fn run_with_snapshot(config: SimConfig) -> (Metrics, Option<MetricsSnapshot>) {
        let mut sim = Simulation::prepare(config);
        let metrics = sim.execute();
        let snapshot = sim.metrics_snapshot();
        (metrics, snapshot)
    }

    /// Like [`run_with_snapshot`](Self::run_with_snapshot) over an
    /// already-generated corpus, which must match the config's
    /// `(articles, seed)` (see [`corpus_config`](Self::corpus_config)).
    /// Grid drivers use this to synthesize the corpus once and share it
    /// read-only across every cell.
    pub fn run_with_snapshot_on(
        config: SimConfig,
        corpus: Arc<Corpus>,
    ) -> (Metrics, Option<MetricsSnapshot>) {
        let mut sim = Simulation::prepare_with_corpus(config, corpus);
        let metrics = sim.execute();
        let snapshot = sim.metrics_snapshot();
        (metrics, snapshot)
    }

    /// Feeds the query workload through the prepared network.
    pub fn execute(&mut self) -> Metrics {
        let mut generator = QueryGenerator::new(
            &self.corpus,
            self.config.mix.clone(),
            self.config.seed ^ 0x5eed,
        );
        let mut interactions = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_hits_first = 0u64;
        let mut errors = 0u64;
        let mut gen_interactions = 0u64;
        let mut failed = 0u64;
        let mut by_structure: HashMap<&'static str, (u64, u64, u64)> = HashMap::new();

        // Reused across the whole workload: the per-query lookup path and
        // generalization list grow once and are cleared per query instead
        // of being reallocated 50 000 times.
        let mut path: Vec<(NodeId, Query)> = Vec::new();
        let mut generalizations: Vec<Query> = Vec::new();
        for _ in 0..self.config.queries {
            let item = generator.next_query();
            // Borrowed, not cloned: the target MSD and file handle are
            // read-only inputs to the user model.
            let target_msd = &self.msds[item.target];
            let target_file = self.files[item.target].as_str();
            let outcome = user_search_buffered(
                &mut self.service,
                &item.query,
                target_msd,
                target_file,
                &mut path,
                &mut generalizations,
            );
            interactions += outcome.interactions as u64;
            let slot = by_structure
                .entry(item.structure.label())
                .or_insert((0, 0, 0));
            slot.0 += 1;
            slot.1 += outcome.interactions as u64;
            if outcome.cache_hit {
                cache_hits += 1;
                if outcome.cache_hit_first_node {
                    cache_hits_first += 1;
                }
            }
            if outcome.error {
                errors += 1;
                gen_interactions += outcome.interactions as u64;
                slot.2 += 1;
            }
            if !outcome.found {
                failed += 1;
            }
        }
        let mut by_structure: Vec<(String, u64, u64, u64)> = by_structure
            .into_iter()
            .map(|(label, (q, i, e))| (label.to_string(), q, i, e))
            .collect();
        by_structure.sort_by_key(|(_, queries, _, _)| std::cmp::Reverse(*queries));

        self.collect(
            interactions,
            cache_hits,
            cache_hits_first,
            errors,
            gen_interactions,
            failed,
            by_structure,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        interactions: u64,
        cache_hits: u64,
        cache_hits_first_node: u64,
        errors: u64,
        generalization_interactions: u64,
        failed: u64,
        by_structure: Vec<(String, u64, u64, u64)>,
    ) -> Metrics {
        let dht = self.service.dht();
        // Borrowed straight from the service — snapshotting a cell must not
        // clone the whole per-node map just to read it once.
        let node_counts: &HashMap<NodeId, u64> = self.service.node_query_counts();
        let nodes = dht.nodes();
        let node_query_counts: Vec<u64> = nodes
            .iter()
            .map(|n| node_counts.get(n).copied().unwrap_or(0))
            .collect();
        let keys_per_node: Vec<usize> = dht
            .storage_distribution()
            .iter()
            .map(|(_, k, _)| *k)
            .collect();
        let cached_keys_per_node: Vec<usize> =
            self.service.cache_sizes().iter().map(|(_, c)| *c).collect();
        let (cache_full_fraction, cache_empty_fraction) = self.service.cache_fill_fractions();

        // Index entry footprint: every stored value that is a query-to-query
        // mapping (wire prefix "Q:").
        let mut index_entry_bytes = 0u64;
        let mut index_entry_count = 0u64;
        for node in &nodes {
            if let Some(store) = dht.store_of(node) {
                for (_key, values) in store.iter() {
                    for v in values {
                        if v.starts_with(b"Q:") {
                            index_entry_bytes += v.len() as u64;
                            index_entry_count += 1;
                        }
                    }
                }
            }
        }

        Metrics {
            scheme: self.config.scheme.label().to_string(),
            policy: self.config.policy.to_string(),
            queries: self.config.queries,
            interactions,
            cache_hits,
            cache_hits_first_node,
            errors,
            generalization_interactions,
            failed,
            traffic: *self.service.traffic(),
            node_query_counts,
            keys_per_node,
            cached_keys_per_node,
            cache_full_fraction,
            cache_empty_fraction,
            index_entry_bytes,
            index_entry_count,
            by_structure,
        }
    }
}

/// The §V-E(c) user model: iterate lookups, at each step selecting the
/// result that matches the target article, until the file is found.
///
/// Returns the per-query outcome; creates cache shortcuts on success.
///
/// Generic over the substrate: the paper grid drives it over
/// `RingDht`, the hot-spot scenario over a load-balancing
/// `SplitDht<RingDht>`.
pub fn user_search<D: Dht>(
    service: &mut IndexService<D>,
    query: &Query,
    target_msd: &Query,
    target_file: &str,
) -> QueryOutcome {
    user_search_buffered(
        service,
        query,
        target_msd,
        target_file,
        &mut Vec::new(),
        &mut Vec::new(),
    )
}

/// [`user_search`] with caller-owned scratch buffers for the lookup path
/// and the generalization list — the simulation loop reuses one pair of
/// buffers across its whole workload instead of allocating per query.
/// Both buffers are cleared on entry.
pub fn user_search_buffered<D: Dht>(
    service: &mut IndexService<D>,
    query: &Query,
    target_msd: &Query,
    target_file: &str,
    path: &mut Vec<(NodeId, Query)>,
    generalizations: &mut Vec<Query>,
) -> QueryOutcome {
    const MAX_STEPS: u32 = 64;

    let mut outcome = QueryOutcome {
        interactions: 0,
        cache_hit: false,
        cache_hit_first_node: false,
        error: false,
        found: false,
    };
    path.clear();
    generalizations.clear();
    let mut current = query.clone();
    let mut tried_generalizing = false;

    while outcome.interactions < MAX_STEPS {
        let resp = match service.lookup_step(&current) {
            Ok(r) => r,
            Err(_) => break,
        };
        outcome.interactions += 1;
        let node = resp.node.expect("lookup succeeded on a live node");
        let first_contact = path.is_empty();
        path.push((node, current.clone()));

        // 1. Cached shortcut leading to the target?
        let cached_next = resp
            .cached
            .iter()
            .find(|t| leads_to_target(t, &current, target_msd, target_file))
            .cloned();
        if let Some(t) = cached_next {
            if !outcome.cache_hit {
                outcome.cache_hit = true;
                outcome.cache_hit_first_node = first_contact;
            }
            match t {
                IndexTarget::File(_) => {
                    outcome.found = true;
                    break;
                }
                IndexTarget::Query(q) => {
                    current = q;
                    continue;
                }
            }
        }

        // 2. Unhelpful shortcut: fetch the regular entries from the same
        // node — extra traffic, but the same logical user interaction.
        let indexed = if resp.cached.is_empty() {
            resp.indexed
        } else {
            match service.lookup_step_bypassing_cache(&current) {
                Ok(full) => full.indexed,
                Err(_) => break,
            }
        };

        // Regular index entry leading to the target?
        let indexed_next = indexed
            .iter()
            .find(|t| leads_to_target(t, &current, target_msd, target_file))
            .cloned();
        if let Some(t) = indexed_next {
            match t {
                IndexTarget::File(_) => {
                    outcome.found = true;
                    break;
                }
                IndexTarget::Query(q) => {
                    current = q;
                    continue;
                }
            }
        }

        // 3. Dead end. If the original query returned nothing at all —
        // no shortcut and no index entry — the user accessed non-indexed
        // data (Table I). A cached shortcut counts as an answer even when
        // it doesn't lead to this user's target: "an index entry is
        // created automatically after the first lookup; subsequent queries
        // … do not experience an error" (§V-E(h)). Generalize either way.
        if first_contact && resp.cached.is_empty() && indexed.is_empty() {
            outcome.error = true;
        }
        if !tried_generalizing {
            tried_generalizing = true;
            current.generalizations_into(generalizations);
        }
        match generalizations.pop() {
            Some(g) => {
                // Each generalization attempt is a fresh entry point; keep
                // the original first-contact node as the shortcut location.
                current = g;
            }
            None => break,
        }
    }

    if outcome.found {
        service.create_shortcuts(path, &IndexTarget::Query(target_msd.clone()));
    }
    outcome
}

/// Does `target` move the search toward the wanted article?
fn leads_to_target(
    target: &IndexTarget,
    current: &Query,
    target_msd: &Query,
    target_file: &str,
) -> bool {
    match target {
        IndexTarget::File(f) => f == target_file,
        IndexTarget::Query(q) => q != current && (q == target_msd || q.covers(target_msd)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scheme: SchemeChoice, policy: CachePolicy) -> Metrics {
        Simulation::run(SimConfig {
            nodes: 40,
            articles: 200,
            queries: 1_500,
            scheme,
            policy,
            ..SimConfig::default()
        })
    }

    #[test]
    fn every_query_finds_its_target() {
        for scheme in SchemeChoice::PAPER {
            let m = small(scheme, CachePolicy::None);
            assert_eq!(m.failed, 0, "{}: all targets must be locatable", m.scheme);
        }
    }

    #[test]
    fn flat_needs_fewest_interactions() {
        let simple = small(SchemeChoice::Simple, CachePolicy::None);
        let flat = small(SchemeChoice::Flat, CachePolicy::None);
        let complex = small(SchemeChoice::Complex, CachePolicy::None);
        assert!(
            flat.mean_interactions() < simple.mean_interactions(),
            "flat {} < simple {}",
            flat.mean_interactions(),
            simple.mean_interactions()
        );
        assert!(
            simple.mean_interactions() <= complex.mean_interactions() + 0.05,
            "simple {} <= complex {}",
            simple.mean_interactions(),
            complex.mean_interactions()
        );
    }

    #[test]
    fn caching_reduces_interactions() {
        let none = small(SchemeChoice::Simple, CachePolicy::None);
        let single = small(SchemeChoice::Simple, CachePolicy::Single);
        assert!(single.mean_interactions() < none.mean_interactions());
        assert!(single.hit_ratio() > 0.3);
        assert_eq!(none.hit_ratio(), 0.0);
    }

    #[test]
    fn flat_generates_most_traffic() {
        // Flat's traffic penalty comes from long result lists ("each query
        // receives directly the descriptors of all articles that match"),
        // so the corpus must be large enough for lists to dominate the
        // per-exchange overhead — at tiny scales flat's shorter chains win.
        let run = |scheme| {
            Simulation::run(SimConfig {
                nodes: 40,
                articles: 2_000,
                queries: 600,
                scheme,
                policy: CachePolicy::None,
                ..SimConfig::default()
            })
        };
        let simple = run(SchemeChoice::Simple);
        let flat = run(SchemeChoice::Flat);
        assert!(
            flat.normal_bytes_per_query() > simple.normal_bytes_per_query(),
            "flat {} vs simple {}",
            flat.normal_bytes_per_query(),
            simple.normal_bytes_per_query()
        );
    }

    #[test]
    fn caching_reduces_errors() {
        let none = small(SchemeChoice::Simple, CachePolicy::None);
        let single = small(SchemeChoice::Simple, CachePolicy::Single);
        assert!(none.errors > 0, "author+year queries must trigger errors");
        assert!(single.errors < none.errors);
    }

    #[test]
    fn error_rate_matches_author_year_share() {
        // ~5% of queries are author+year, the only non-indexed structure.
        let m = small(SchemeChoice::Simple, CachePolicy::None);
        let rate = m.errors as f64 / m.queries as f64;
        assert!((rate - 0.05).abs() < 0.02, "error rate {rate}");
    }

    #[test]
    fn lru_capacity_bounds_cache() {
        let m = small(SchemeChoice::Simple, CachePolicy::Lru(10));
        assert!(m.max_cached_keys_per_node() <= 10);
        assert!(m.mean_cached_keys_per_node() <= 10.0);
        assert!(m.cache_full_fraction > 0.0);
    }

    #[test]
    fn multi_cache_stores_more_than_single() {
        let multi = small(SchemeChoice::Simple, CachePolicy::Multi);
        let single = small(SchemeChoice::Simple, CachePolicy::Single);
        assert!(
            multi.mean_cached_keys_per_node() > single.mean_cached_keys_per_node(),
            "multi {} vs single {}",
            multi.mean_cached_keys_per_node(),
            single.mean_cached_keys_per_node()
        );
        assert!(multi.cache_bytes_per_query() > single.cache_bytes_per_query());
    }

    #[test]
    fn flat_cache_hits_concentrate_on_first_node() {
        let m = small(SchemeChoice::Flat, CachePolicy::Multi);
        assert!(
            m.first_node_hit_fraction() > 0.95,
            "flat chains are length 2; fraction {}",
            m.first_node_hit_fraction()
        );
    }

    #[test]
    fn node_load_is_skewed() {
        let m = small(SchemeChoice::Simple, CachePolicy::None);
        let loads = m.node_load_percentages();
        assert!(
            loads[0] > loads[loads.len() / 2] * 3.0,
            "hot spots expected"
        );
        // Total > 100%: each query generates several lookups.
        let total: f64 = loads.iter().sum();
        assert!(total > 100.0);
    }

    #[test]
    fn metrics_are_deterministic() {
        let a = small(SchemeChoice::Simple, CachePolicy::Lru(20));
        let b = small(SchemeChoice::Simple, CachePolicy::Lru(20));
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.cache_hits, b.cache_hits);
    }

    #[test]
    fn index_storage_simple_smallest_flat_largest() {
        let simple = small(SchemeChoice::Simple, CachePolicy::None);
        let flat = small(SchemeChoice::Flat, CachePolicy::None);
        let complex = small(SchemeChoice::Complex, CachePolicy::None);
        assert!(simple.index_entry_bytes < complex.index_entry_bytes);
        assert!(simple.index_entry_bytes < flat.index_entry_bytes);
    }

    #[test]
    fn scheme_choice_helpers() {
        assert_eq!(SchemeChoice::Simple.letter(), "S");
        assert_eq!(SchemeChoice::Flat.label(), "Flat");
        assert_eq!(SchemeChoice::PAPER.len(), 3);
        assert_eq!(SchemeChoice::Complex.scheme().name(), "complex");
    }

    #[test]
    fn node_query_counts_snapshot_matches_service_state() {
        // `collect` reads the per-node lookup counts by reference (no map
        // clone per snapshot); this pins that the reported vector is still
        // exactly the service's counts in DHT node order.
        let mut sim = Simulation::prepare(SimConfig {
            nodes: 30,
            articles: 100,
            queries: 500,
            scheme: SchemeChoice::Simple,
            policy: CachePolicy::Single,
            ..SimConfig::default()
        });
        let metrics = sim.execute();
        let counts = sim.service().node_query_counts();
        let expected: Vec<u64> = sim
            .service()
            .dht()
            .nodes()
            .iter()
            .map(|n| counts.get(n).copied().unwrap_or(0))
            .collect();
        assert_eq!(metrics.node_query_counts, expected);
        assert_eq!(
            metrics.node_query_counts.iter().sum::<u64>(),
            counts.values().sum::<u64>(),
            "every served lookup is accounted"
        );
        assert!(metrics.node_query_counts.iter().sum::<u64>() > 0);
    }

    #[test]
    fn shared_corpus_cell_matches_fresh_prepare() {
        // Grid cells share one Arc'd corpus; a shared-corpus run must be
        // indistinguishable from a run that generated its own.
        let config = SimConfig {
            nodes: 30,
            articles: 120,
            queries: 600,
            scheme: SchemeChoice::Simple,
            policy: CachePolicy::Lru(20),
            ..SimConfig::default()
        };
        let corpus = Arc::new(Corpus::generate(Simulation::corpus_config(&config)));
        let mut shared = Simulation::prepare_with_corpus(config.clone(), corpus);
        let mut fresh = Simulation::prepare(config);
        assert_eq!(shared.execute(), fresh.execute());
    }

    #[test]
    fn user_search_direct_msd_lookup() {
        let sim = Simulation::prepare(SimConfig {
            nodes: 20,
            articles: 50,
            queries: 0,
            scheme: SchemeChoice::Simple,
            policy: CachePolicy::None,
            ..SimConfig::default()
        });
        let msd = sim.msd(0).clone();
        let file = sim.corpus().article(0).unwrap().file_name();
        let mut svc = sim.service;
        let out = user_search(&mut svc, &msd, &msd, &file);
        assert!(out.found);
        assert_eq!(out.interactions, 1);
        assert!(!out.error);
    }
}
