//! Realistic query generation: structure mix × article popularity.
//!
//! The paper models users from the BibFinder and NetBib query logs (§V-C):
//! the *structure* of a query (which fields it uses) follows the observed
//! log frequencies, and the *target* article follows the power-law
//! popularity model. "When constructing the query workload for the
//! simulation, we first choose an article according to the popularity
//! distribution. Then, we select the structure of the query and assign the
//! corresponding fields."

use std::collections::HashMap;

use p2p_index_xpath::{Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::corpus::{Article, Corpus};
use crate::popularity::PaperCcdf;

/// Which descriptor fields a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryStructure {
    /// Author first+last name only.
    Author,
    /// Title only.
    Title,
    /// Publication year only.
    Year,
    /// Conference only.
    Conference,
    /// Author and title.
    AuthorTitle,
    /// Author and year — indexed by **no** built-in scheme, so these are
    /// the paper's "recoverable error" queries.
    AuthorYear,
    /// Title and year.
    TitleYear,
    /// Author, title, and year.
    AuthorTitleYear,
}

impl QueryStructure {
    /// Short label used in reports (matches the Fig. 7 x-axis style).
    pub fn label(&self) -> &'static str {
        match self {
            QueryStructure::Author => "/author",
            QueryStructure::Title => "/title",
            QueryStructure::Year => "/year",
            QueryStructure::Conference => "/conf",
            QueryStructure::AuthorTitle => "/author/title",
            QueryStructure::AuthorYear => "/author/year",
            QueryStructure::TitleYear => "/title/year",
            QueryStructure::AuthorTitleYear => "/author/title/year",
        }
    }

    /// Builds the concrete query of this structure targeting `article`.
    pub fn query_for(&self, article: &Article) -> Query {
        let (first, last) = article.primary_author();
        let b = QueryBuilder::new("article");
        let b = match self {
            QueryStructure::Author => b.value("author/first", first).value("author/last", last),
            QueryStructure::Title => b.value("title", &article.title),
            QueryStructure::Year => b.value("year", article.year.to_string()),
            QueryStructure::Conference => b.value("conf", &article.conf),
            QueryStructure::AuthorTitle => b
                .value("author/first", first)
                .value("author/last", last)
                .value("title", &article.title),
            QueryStructure::AuthorYear => b
                .value("author/first", first)
                .value("author/last", last)
                .value("year", article.year.to_string()),
            QueryStructure::TitleYear => b
                .value("title", &article.title)
                .value("year", article.year.to_string()),
            QueryStructure::AuthorTitleYear => b
                .value("author/first", first)
                .value("author/last", last)
                .value("title", &article.title)
                .value("year", article.year.to_string()),
        };
        b.build()
    }
}

/// A weighted mix of query structures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureMix {
    weights: Vec<(QueryStructure, f64)>,
}

impl StructureMix {
    /// Builds a mix from `(structure, weight)` pairs; weights are
    /// normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are ≤ 0.
    pub fn new(weights: impl Into<Vec<(QueryStructure, f64)>>) -> StructureMix {
        let weights = weights.into();
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "structure mix needs positive weight");
        StructureMix {
            weights: weights
                .into_iter()
                .map(|(s, w)| (s, w.max(0.0) / total))
                .collect(),
        }
    }

    /// The simulation mix of §V-C: "author only (with probability 0.6);
    /// title only (0.2); year only (0.1); both author and title (0.05);
    /// both author and year (0.05)".
    pub fn paper_simulation() -> StructureMix {
        StructureMix::new(vec![
            (QueryStructure::Author, 0.60),
            (QueryStructure::Title, 0.20),
            (QueryStructure::Year, 0.10),
            (QueryStructure::AuthorTitle, 0.05),
            (QueryStructure::AuthorYear, 0.05),
        ])
    }

    /// The full BibFinder log histogram of Fig. 7 (9 108 queries), with the
    /// small "others" bucket mapped to conference-only queries.
    /// Percentages are read off the figure and therefore approximate.
    pub fn bibfinder_log() -> StructureMix {
        StructureMix::new(vec![
            (QueryStructure::Author, 0.57),
            (QueryStructure::Title, 0.20),
            (QueryStructure::AuthorTitle, 0.09),
            (QueryStructure::AuthorYear, 0.06),
            (QueryStructure::TitleYear, 0.03),
            (QueryStructure::AuthorTitleYear, 0.02),
            (QueryStructure::Conference, 0.03),
        ])
    }

    /// The normalized `(structure, probability)` pairs.
    pub fn weights(&self) -> &[(QueryStructure, f64)] {
        &self.weights
    }

    /// Samples a structure.
    pub fn sample(&self, rng: &mut StdRng) -> QueryStructure {
        let mut u: f64 = rng.gen();
        for (s, w) in &self.weights {
            if u < *w {
                return *s;
            }
            u -= w;
        }
        self.weights.last().expect("mix is non-empty").0
    }
}

/// One generated workload item: a query plus the article the simulated
/// user is actually after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedQuery {
    /// The query submitted to the system.
    pub query: Query,
    /// The corpus id of the target article.
    pub target: usize,
    /// The structure the query was built with.
    pub structure: QueryStructure,
}

/// The workload generator: popularity-weighted targets, log-derived
/// structures, deterministic by seed.
///
/// # Examples
///
/// ```
/// use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};
///
/// let corpus = Corpus::generate(CorpusConfig { articles: 100, ..Default::default() });
/// let mut gen = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 1);
/// let item = gen.next_query();
/// assert!(item.target < 100);
/// // The generated query always matches its target's descriptor.
/// let d = corpus.article(item.target).unwrap().descriptor();
/// assert!(item.query.matches(d.root()));
/// ```
#[derive(Debug)]
pub struct QueryGenerator<'c> {
    corpus: &'c Corpus,
    popularity: PaperCcdf,
    mix: StructureMix,
    rng: StdRng,
    /// Interned `(structure, target) → query`. The popularity model is a
    /// power law, so a handful of articles absorb most of the workload;
    /// each repeat of a (structure, article) pair hands out a cheap clone
    /// of the memoized query (`Arc` bumps) instead of re-building and
    /// re-rendering the same pattern tree. Queries are pure functions of
    /// the pair, so the memo can never go stale — and the RNG draws are
    /// unaffected, so the generated stream is byte-identical.
    memo: HashMap<(QueryStructure, usize), Query>,
}

impl<'c> QueryGenerator<'c> {
    /// A generator over `corpus` with the paper's popularity model.
    pub fn new(corpus: &'c Corpus, mix: StructureMix, seed: u64) -> QueryGenerator<'c> {
        QueryGenerator {
            corpus,
            popularity: PaperCcdf::new(corpus.len()),
            mix,
            rng: StdRng::seed_from_u64(seed),
            memo: HashMap::new(),
        }
    }

    /// Generates the next workload item.
    pub fn next_query(&mut self) -> GeneratedQuery {
        // Rank 1 = article id 0: corpus order is popularity order.
        let rank = self.popularity.sample(&mut self.rng);
        let target = rank - 1;
        let article = self.corpus.article(target).expect("rank within corpus");
        let structure = self.mix.sample(&mut self.rng);
        let query = self
            .memo
            .entry((structure, target))
            .or_insert_with(|| structure.query_for(article))
            .clone();
        GeneratedQuery {
            query,
            target,
            structure,
        }
    }

    /// Generates a batch of `n` items.
    pub fn take_queries(&mut self, n: usize) -> Vec<GeneratedQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use crate::corpus::CorpusConfig;

    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            articles: 1000,
            author_pool: 200,
            ..Default::default()
        })
    }

    #[test]
    fn paper_mix_weights() {
        let mix = StructureMix::paper_simulation();
        let total: f64 = mix.weights().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let author = mix
            .weights()
            .iter()
            .find(|(s, _)| *s == QueryStructure::Author)
            .unwrap()
            .1;
        assert!((author - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bibfinder_mix_normalizes() {
        let mix = StructureMix::bibfinder_log();
        let total: f64 = mix.weights().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_structure_frequencies_match_mix() {
        let c = corpus();
        let mut g = QueryGenerator::new(&c, StructureMix::paper_simulation(), 3);
        let mut counts: HashMap<QueryStructure, usize> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            *counts.entry(g.next_query().structure).or_insert(0) += 1;
        }
        let frac = |s| counts.get(&s).copied().unwrap_or(0) as f64 / n as f64;
        assert!((frac(QueryStructure::Author) - 0.60).abs() < 0.02);
        assert!((frac(QueryStructure::Title) - 0.20).abs() < 0.02);
        assert!((frac(QueryStructure::Year) - 0.10).abs() < 0.02);
        assert!((frac(QueryStructure::AuthorTitle) - 0.05).abs() < 0.02);
        assert!((frac(QueryStructure::AuthorYear) - 0.05).abs() < 0.02);
    }

    #[test]
    fn queries_match_their_targets() {
        let c = corpus();
        let mut g = QueryGenerator::new(&c, StructureMix::paper_simulation(), 4);
        for _ in 0..500 {
            let item = g.next_query();
            let d = c.article(item.target).unwrap().descriptor();
            assert!(
                item.query.matches(d.root()),
                "{} vs target {}",
                item.query,
                item.target
            );
        }
    }

    #[test]
    fn queries_cover_their_targets_msd() {
        use p2p_index_xpath::Query as Q;
        let c = corpus();
        let mut g = QueryGenerator::new(&c, StructureMix::paper_simulation(), 5);
        for _ in 0..200 {
            let item = g.next_query();
            let msd = Q::most_specific(&c.article(item.target).unwrap().descriptor());
            assert!(item.query.covers(&msd));
        }
    }

    #[test]
    fn targets_follow_popularity() {
        let c = corpus();
        let mut g = QueryGenerator::new(&c, StructureMix::paper_simulation(), 6);
        let n = 30_000;
        let mut hits0 = 0;
        for _ in 0..n {
            if g.next_query().target == 0 {
                hits0 += 1;
            }
        }
        // P(target = 0) = F(1) = 0.063.
        let f = hits0 as f64 / n as f64;
        assert!((f - 0.063).abs() < 0.01, "top-article frequency {f}");
    }

    #[test]
    fn generator_is_deterministic() {
        let c = corpus();
        let a: Vec<_> =
            QueryGenerator::new(&c, StructureMix::paper_simulation(), 7).take_queries(100);
        let b: Vec<_> =
            QueryGenerator::new(&c, StructureMix::paper_simulation(), 7).take_queries(100);
        assert_eq!(a, b);
    }

    #[test]
    fn all_structures_build_valid_queries() {
        let c = corpus();
        let article = c.article(0).unwrap();
        for s in [
            QueryStructure::Author,
            QueryStructure::Title,
            QueryStructure::Year,
            QueryStructure::Conference,
            QueryStructure::AuthorTitle,
            QueryStructure::AuthorYear,
            QueryStructure::TitleYear,
            QueryStructure::AuthorTitleYear,
        ] {
            let q = s.query_for(article);
            assert!(q.matches(article.descriptor().root()), "{}", s.label());
            assert!(!s.label().is_empty());
            // Canonical text reparses.
            let reparsed: Query = q.to_string().parse().unwrap();
            assert_eq!(reparsed, q);
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_panics() {
        let _ = StructureMix::new(vec![]);
    }
}
