//! In-process loopback clusters for tests and benches.
//!
//! [`LoopbackCluster`] spins up N [`DhtServer`]s in the current process —
//! one per node, each owning a single-node substrate partition, all bound
//! to ephemeral loopback ports — and hands out [`RemoteDht`] clients over
//! them. [`ClusterDht`] bundles one client with the servers it talks to
//! behind the [`Dht`] trait, shutting the whole cluster down on drop;
//! that is what lets the shared conformance suite treat "a TCP cluster"
//! as just another substrate.
//!
//! The *multi-process* variant (separate `dhtd` processes via `repro
//! serve`) lives in the sim crate's integration harness; this module is
//! the single-process fast path.

use std::io;
use std::net::{SocketAddr, TcpListener};

use bytes::Bytes;
use p2p_index_dht::{
    Dht, DhtError, DhtOp, DhtResponse, DhtStats, FaultConfig, FaultyDht, Key, NodeId, RingDht,
};
use p2p_index_obs::MetricsRegistry;

use crate::client::{RemoteDht, RemoteDhtConfig};
use crate::server::{DhtServer, ReplicationConfig, ServerConfig};

/// A set of in-process `dhtd` servers, one per node, on loopback.
pub struct LoopbackCluster {
    servers: Vec<DhtServer>,
    members: Vec<(NodeId, SocketAddr)>,
}

impl LoopbackCluster {
    /// Starts `n` servers named `node-0..n-1`, each serving its single-node
    /// partition of a ring — collectively equivalent to
    /// `RingDht::with_named_nodes(n)` when fronted by a [`RemoteDht`].
    /// Each member runs the default sharded reader-concurrent engine.
    pub fn start_ring(n: usize) -> io::Result<LoopbackCluster> {
        Self::start_ring_sharded(n, ServerConfig::default().shards)
    }

    /// [`LoopbackCluster::start_ring`] with an explicit shard count per
    /// member. `shards <= 1` is the single-mutex escape hatch — the exact
    /// pre-sharding server path — which the bench uses as the contention
    /// baseline.
    pub fn start_ring_sharded(n: usize, shards: usize) -> io::Result<LoopbackCluster> {
        let mut servers = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId::hash_of(&format!("node-{i}"));
            let config = ServerConfig {
                shards,
                ..ServerConfig::default()
            };
            let server = DhtServer::spawn_partition(id, "127.0.0.1:0", config)?;
            members.push((id, server.local_addr()));
            servers.push(server);
        }
        Ok(LoopbackCluster { servers, members })
    }

    /// Starts `n` servers whose substrates are wrapped in a fault
    /// injector, so remote callers observe injected [`DhtError`]s over
    /// the wire. Each node gets a distinct deterministic seed derived
    /// from `seed` so runs are reproducible.
    pub fn start_lossy_ring(n: usize, seed: u64, loss: f64) -> io::Result<LoopbackCluster> {
        Self::start_with(n, |id| {
            let node_seed = seed ^ id.key().low_u64();
            Box::new(FaultyDht::new(
                RingDht::from_ids([*id.key()]),
                FaultConfig::lossy(node_seed, loss),
            ))
        })
    }

    /// Starts `n` servers named `node-0..n-1` forming one replicated
    /// cluster: every key lives on `replicas` clockwise successors and
    /// writes need `write_quorum` acks. All listeners are bound *before*
    /// any server spawns, so every member can dial every other from its
    /// very first frame — no bootstrap races.
    pub fn start_replicated_ring(
        n: usize,
        replicas: usize,
        write_quorum: usize,
    ) -> io::Result<LoopbackCluster> {
        let mut listeners = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId::hash_of(&format!("node-{i}"));
            let listener = TcpListener::bind("127.0.0.1:0")?;
            members.push((id, listener.local_addr()?));
            listeners.push((id, listener));
        }
        let ring_members: Vec<(Key, SocketAddr)> = members
            .iter()
            .map(|(id, addr)| (*id.key(), *addr))
            .collect();
        let mut servers = Vec::with_capacity(n);
        for (id, listener) in listeners {
            let config = ServerConfig {
                replication: Some(ReplicationConfig::new(
                    *id.key(),
                    ring_members.clone(),
                    replicas,
                    write_quorum,
                )),
                ..ServerConfig::default()
            };
            servers.push(DhtServer::spawn_partition_on(listener, id, config)?);
        }
        Ok(LoopbackCluster { servers, members })
    }

    /// Starts `n` servers with substrates built by `make`, one per node id
    /// `node-0..n-1`.
    pub fn start_with(
        n: usize,
        make: impl Fn(NodeId) -> Box<dyn Dht + Send>,
    ) -> io::Result<LoopbackCluster> {
        let mut servers = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId::hash_of(&format!("node-{i}"));
            let server = DhtServer::spawn(make(id), "127.0.0.1:0", ServerConfig::default())?;
            members.push((id, server.local_addr()));
            servers.push(server);
        }
        Ok(LoopbackCluster { servers, members })
    }

    /// The `(node id, address)` member list, in start order.
    pub fn members(&self) -> &[(NodeId, SocketAddr)] {
        &self.members
    }

    /// A fresh client over every member.
    pub fn client(&self) -> RemoteDht {
        self.client_with(RemoteDhtConfig::default())
    }

    /// A fresh client with explicit transport configuration.
    pub fn client_with(&self, config: RemoteDhtConfig) -> RemoteDht {
        RemoteDht::connect(self.members.clone(), config)
    }

    /// A fresh replica-aware client: routes over `replicas` candidate
    /// members per key and reads at quorum `read_quorum`.
    pub fn replicated_client(&self, replicas: usize, read_quorum: usize) -> RemoteDht {
        self.client_with(RemoteDhtConfig {
            replicas,
            read_quorum,
            ..RemoteDhtConfig::default()
        })
    }

    /// Total operations answered across all servers.
    pub fn ops_served(&self) -> u64 {
        self.servers.iter().map(DhtServer::ops_served).sum()
    }

    /// Direct access to one member's server handle — lets tests wipe a
    /// substrate in place (a stale replica) or force a repair pass.
    pub fn server(&self, index: usize) -> &DhtServer {
        &self.servers[index]
    }

    /// Mutable access to one member's server handle — lets tests crash a
    /// member in place with [`DhtServer::halt`].
    pub fn server_mut(&mut self, index: usize) -> &mut DhtServer {
        &mut self.servers[index]
    }

    /// Runs one synchronous anti-entropy pass on every member.
    pub fn repair_all(&self) {
        for server in &self.servers {
            server.repair_now();
        }
    }

    /// Shuts every server down, joining their threads.
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

/// A [`RemoteDht`] bundled with the [`LoopbackCluster`] it talks to,
/// presented as one [`Dht`] value. Dropping it tears the cluster down,
/// which is what lets generic test code (the conformance suite) own a
/// TCP-backed substrate the same way it owns an in-process one.
pub struct ClusterDht {
    client: RemoteDht,
    /// Kept alive for the client's lifetime; drop order (client first,
    /// servers after) means in-flight requests drain before teardown.
    cluster: Option<LoopbackCluster>,
}

impl ClusterDht {
    /// Starts a ring cluster of `n` nodes and a client over it.
    pub fn start_ring(n: usize) -> io::Result<ClusterDht> {
        let cluster = LoopbackCluster::start_ring(n)?;
        let client = cluster.client();
        Ok(ClusterDht {
            client,
            cluster: Some(cluster),
        })
    }

    /// Starts a replicated ring cluster (factor `replicas`, write quorum
    /// `write_quorum`) and a replica-aware client reading at
    /// `read_quorum` over it.
    pub fn start_replicated_ring(
        n: usize,
        replicas: usize,
        write_quorum: usize,
        read_quorum: usize,
    ) -> io::Result<ClusterDht> {
        let cluster = LoopbackCluster::start_replicated_ring(n, replicas, write_quorum)?;
        let client = cluster.replicated_client(replicas, read_quorum);
        Ok(ClusterDht {
            client,
            cluster: Some(cluster),
        })
    }

    /// The underlying cluster (kill, wipe, or repair individual members).
    pub fn cluster(&self) -> &LoopbackCluster {
        self.cluster.as_ref().expect("cluster alive until drop")
    }

    /// Starts a fault-injecting ring cluster (see
    /// [`LoopbackCluster::start_lossy_ring`]) and a client over it.
    pub fn start_lossy_ring(n: usize, seed: u64, loss: f64) -> io::Result<ClusterDht> {
        let cluster = LoopbackCluster::start_lossy_ring(n, seed, loss)?;
        let client = cluster.client();
        Ok(ClusterDht {
            client,
            cluster: Some(cluster),
        })
    }

    /// The underlying client.
    pub fn client(&self) -> &RemoteDht {
        &self.client
    }
}

impl Dht for ClusterDht {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        self.client.execute(op)
    }

    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        self.client.execute_many(ops)
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.client.node_for(key)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.client.nodes()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        self.client.get(key)
    }

    fn stats(&self) -> DhtStats {
        self.client.stats()
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.client.set_metrics(metrics);
    }

    fn len(&self) -> usize {
        self.client.len()
    }
}

impl Drop for ClusterDht {
    fn drop(&mut self) {
        if let Some(cluster) = self.cluster.take() {
            cluster.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_matches_in_process_ring() {
        let mut cluster = ClusterDht::start_ring(5).expect("loopback cluster");
        let mut ring = RingDht::with_named_nodes(5);
        assert_eq!(cluster.nodes(), ring.nodes());
        for i in 0..30 {
            let key = Key::hash_of(&format!("k{i}"));
            let value = Bytes::from(format!("v{i}"));
            assert_eq!(cluster.put(key, value.clone()), ring.put(key, value));
            assert_eq!(Dht::get(&cluster, &key), Dht::get(&ring, &key));
        }
        assert_eq!(cluster.stats(), ring.stats());
    }

    #[test]
    fn replicated_cluster_matches_unreplicated_twin_results_and_stats() {
        // Replication must be invisible to correct clients: same results
        // and the same per-op accounting as the plain ring convention.
        let mut cluster = ClusterDht::start_replicated_ring(5, 3, 2, 2).expect("cluster");
        let mut ring = RingDht::with_named_nodes(5);
        for i in 0..30 {
            let key = Key::hash_of(&format!("k{i}"));
            let value = Bytes::from(format!("v{i}"));
            assert_eq!(cluster.put(key, value.clone()), ring.put(key, value));
        }
        for i in 0..30 {
            let key = Key::hash_of(&format!("k{i}"));
            assert_eq!(Dht::get(&cluster, &key), Dht::get(&ring, &key), "k{i}");
        }
        assert_eq!(cluster.stats(), ring.stats());
    }

    #[test]
    fn replicated_cluster_survives_a_crashed_member() {
        let cluster = LoopbackCluster::start_replicated_ring(5, 3, 2).expect("cluster");
        let mut client = cluster.replicated_client(3, 2);
        for i in 0..30 {
            let key = Key::hash_of(&format!("churn-{i}"));
            assert!(client.put(key, Bytes::from(format!("v{i}"))));
        }
        let mut cluster = cluster;
        cluster.server_mut(2).halt();
        // Every key stays readable at quorum 2: a dead replica costs one
        // failover round, never a miss or an error.
        for i in 0..30 {
            let key = Key::hash_of(&format!("churn-{i}"));
            let values = Dht::get(&client, &key);
            assert_eq!(values, vec![Bytes::from(format!("v{i}"))], "churn-{i}");
        }
        // Writes keep succeeding too: a primary-dead key fails over to a
        // surviving replica, whose fan-out still reaches quorum 2.
        for i in 0..10 {
            let key = Key::hash_of(&format!("post-crash-{i}"));
            assert!(client.put(key, Bytes::from_static(b"pv")));
            assert_eq!(Dht::get(&client, &key), vec![Bytes::from_static(b"pv")]);
        }
        cluster.shutdown();
    }

    #[test]
    fn stale_replica_is_masked_by_quorum_and_refilled_by_repair() {
        let cluster = LoopbackCluster::start_replicated_ring(3, 3, 2).expect("cluster");
        let mut client = cluster.replicated_client(3, 2);
        for i in 0..20 {
            let key = Key::hash_of(&format!("stale-{i}"));
            assert!(client.put(key, Bytes::from(format!("v{i}"))));
        }
        // Wipe member 1 in place: it keeps serving, but from an empty
        // store — a stale replica.
        let member_key = *cluster.members()[1].0.key();
        cluster
            .server(1)
            .replace_substrate(Box::new(RingDht::from_ids([member_key])));
        let solo = RemoteDht::connect(vec![cluster.members()[1]], RemoteDhtConfig::default());
        assert!(
            Dht::get(&solo, &Key::hash_of("stale-0")).is_empty(),
            "the wiped member must actually be empty"
        );
        // Quorum-2 reads mask the stale member: with R = 3 some healthy
        // replica is always in the quorum, and the lowest-ranked
        // non-empty reply wins.
        for i in 0..20 {
            let key = Key::hash_of(&format!("stale-{i}"));
            assert_eq!(
                Dht::get(&client, &key),
                vec![Bytes::from(format!("v{i}"))],
                "stale-{i}"
            );
        }
        // One anti-entropy pass from the healthy members refills it.
        cluster.repair_all();
        assert_eq!(
            Dht::get(&solo, &Key::hash_of("stale-0")),
            vec![Bytes::from_static(b"v0")],
            "repair must restore the wiped member's replica"
        );
        cluster.shutdown();
    }

    #[test]
    fn tombstones_block_a_stale_peers_repair_push() {
        use crate::wire::{read_message, write_message, Message};
        use std::net::TcpStream;
        use std::time::Duration;

        let cluster = LoopbackCluster::start_replicated_ring(3, 3, 2).expect("cluster");
        let mut client = cluster.replicated_client(3, 2);
        let key = Key::hash_of("deleted-mapping");
        let value = Bytes::from_static(b"Q:/dead");
        assert!(client.put(key, value.clone()));
        assert!(client.remove(&key, &value));
        assert!(Dht::get(&client, &key).is_empty());

        // A stale peer — restored from an image taken before the delete,
        // so with no tombstone knowledge — pushes the deleted value as an
        // add-only repair Transfer to a healthy member.
        let push = |entries: Vec<(Key, Vec<Bytes>)>| {
            let mut stream = TcpStream::connect(cluster.members()[0].1).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            write_message(&mut stream, &Message::Transfer { id: 9, entries }).unwrap();
            let (reply, _) = read_message(&mut stream).unwrap();
            assert!(matches!(reply, Message::Response { .. }));
        };
        push(vec![(key, vec![value.clone()])]);

        // The member's tombstone blocks the resurrection...
        let solo = RemoteDht::connect(vec![cluster.members()[0]], RemoteDhtConfig::default());
        assert!(
            Dht::get(&solo, &key).is_empty(),
            "a deleted mapping must not be resurrected by repair"
        );
        // ...while an undeleted value pushed the same way is accepted.
        let alive = Bytes::from_static(b"Q:/alive");
        push(vec![(key, vec![alive.clone()])]);
        assert_eq!(Dht::get(&solo, &key), vec![alive.clone()]);

        // Re-add wins: a fresh Put of the deleted pair clears the marker,
        // and the member that had tombstoned it stores it again. (Read
        // that member directly: `alive` lives only there until repair
        // spreads it, and a quorum of 2 may not include it.)
        assert!(client.put(key, value.clone()));
        let mut values = Dht::get(&solo, &key);
        values.sort();
        assert_eq!(values, vec![alive, value]);
        cluster.shutdown();
    }

    #[test]
    fn repair_scrubs_a_stale_member_still_holding_a_deleted_value() {
        let cluster = LoopbackCluster::start_replicated_ring(3, 3, 2).expect("cluster");
        let mut client = cluster.replicated_client(3, 2);
        let key = Key::hash_of("scrubbed-mapping");
        let value = Bytes::from_static(b"Q:/stale");
        assert!(client.put(key, value.clone()));
        assert!(client.remove(&key, &value));

        // "Restore" member 1 from a backup taken before the delete: its
        // store holds the deleted value again.
        let member_key = *cluster.members()[1].0.key();
        let mut stale = RingDht::from_ids([member_key]);
        stale.put(key, value.clone());
        cluster.server(1).replace_substrate(Box::new(stale));
        let solo = RemoteDht::connect(vec![cluster.members()[1]], RemoteDhtConfig::default());
        assert_eq!(
            Dht::get(&solo, &key),
            vec![value.clone()],
            "the restored member must actually be stale"
        );

        // The healthy members' repair pass re-sends the tombstoned remove
        // to the replica set, scrubbing the stale copy.
        cluster.repair_all();
        assert!(
            Dht::get(&solo, &key).is_empty(),
            "repair must scrub the stale member's deleted value"
        );
        assert!(
            Dht::get(&client, &key).is_empty(),
            "quorum reads must never union the resurrected value back in"
        );
        cluster.shutdown();
    }

    #[test]
    fn lossy_cluster_surfaces_remote_faults_as_typed_errors() {
        let mut cluster = ClusterDht::start_lossy_ring(3, 42, 1.0).expect("loopback cluster");
        // Loss probability 1.0: every storage op must fail with a *remote*
        // DhtError carried over the wire (not a transport failure).
        let err = cluster
            .execute(DhtOp::Put {
                key: Key::hash_of("k"),
                value: Bytes::from_static(b"v"),
            })
            .expect_err("fault injector drops everything");
        assert_eq!(err, DhtError::Timeout);
    }
}
