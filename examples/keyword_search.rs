//! Keyword and prefix search with the extended query operators.
//!
//! Demonstrates the §IV-C substring-indexing extensions: initial-letter
//! author entries (`[author/last^=G]`) and per-word title keywords
//! (`[title*=Routing]`), plus the interactive `SearchSession` API driving
//! a refinement dialogue over them.
//!
//! Run with: `cargo run --example keyword_search`

use p2p_index::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 250,
        author_pool: 60,
        seed: 21,
        ..CorpusConfig::default()
    });

    // Stack the two decorators over the simple scheme: initial-letter
    // author entries + title keywords of 4+ characters.
    let scheme = KeywordTitleScheme::new(InitialLetterScheme::new(SimpleScheme, 1), 4);
    let mut service = IndexService::new(RingDht::with_named_nodes(120), CachePolicy::Single);
    for article in corpus.articles() {
        service.publish(&article.descriptor(), article.file_name(), &scheme)?;
    }

    // --- Keyword search: find everything about "Routing" -----------------
    let keyword: Query = "/article[title*=Routing]".parse()?;
    let report = service.search(&keyword)?;
    let expected = corpus
        .articles()
        .iter()
        .filter(|a| a.title.contains("Routing"))
        .count();
    println!(
        "keyword query {keyword}: {} articles ({} in corpus), {} interactions",
        report.files.len(),
        expected,
        report.interactions
    );
    assert_eq!(report.files.len(), expected);

    // --- Initial-letter browsing -----------------------------------------
    let initial: Query = "/article[author/last^=S]".parse()?;
    let by_initial = service.search(&initial)?;
    println!(
        "initial-letter query {initial}: {} articles by authors 'S…'",
        by_initial.files.len()
    );

    // --- An interactive session over the keyword index --------------------
    println!("\ninteractive session for [title*=Caching]:");
    let mut session = SearchSession::start(&mut service, "/article[title*=Caching]".parse()?)?;
    let mut guard = 0;
    loop {
        match session.state() {
            SessionState::Browsing => {
                println!(
                    "  at {} — {} option(s), e.g. {}",
                    session.current_query(),
                    session.options().len(),
                    session.options()[0]
                );
                session.refine(0)?;
            }
            SessionState::Found(files) => {
                println!(
                    "  found: {files:?} after {} interactions",
                    session.interactions()
                );
                break;
            }
            SessionState::DeadEnd => {
                println!("  dead end; generalizing");
                let broader = session.generalize();
                match broader.into_iter().next() {
                    Some(g) => {
                        session.refine_to(g)?;
                    }
                    None => break,
                }
            }
        }
        guard += 1;
        if guard > 12 {
            break;
        }
    }
    let report = session.commit();
    println!(
        "  session committed: {} shortcut(s) created for future users",
        report.shortcuts_created
    );

    Ok(())
}
