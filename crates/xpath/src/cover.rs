//! The covering relation `⊒` between queries (query containment).
//!
//! Query `q'` *covers* `q` (written `q' ⊒ q`) when every descriptor that
//! matches `q` also matches `q'` (§III-B). Covering is what makes the whole
//! indexing architecture safe: index entries may only map a query to
//! queries it covers, so following index paths can never lead to data that
//! does not match the original query ("resilient to arbitrary linking",
//! §IV-D).
//!
//! # Algorithm and exactness
//!
//! Containment is decided with the canonical *homomorphism* check: `q'`'s
//! pattern tree must embed into `q`'s, mapping child edges to child edges,
//! descendant edges to arbitrary strict-descendant positions, name tests to
//! compatible tests, and comparisons to implied constraints.
//!
//! For the fragment XP{/,[]} (child axis and predicates only — everything
//! the built-in index schemes generate), the homomorphism criterion is
//! **exact**. With wildcard `*` and descendant `//` in the picture general
//! containment is coNP-complete (Miklau & Suciu), and the homomorphism
//! check is **sound but not complete**: `covers` never answers `true`
//! incorrectly, but may answer `false` for exotic `*`/`//` combinations.
//! A sound-only check preserves every safety property the paper relies on.
//!
//! One schema assumption is baked in (documented on [`Query::covers`]):
//! element *names* and leaf *values* are assumed not to collide, which
//! holds for every descriptor vocabulary in this repository.

use crate::ast::{Axis, CmpOp, Comparison, NameTest, Pattern, Query};

impl Query {
    /// Does `self` cover `other` — i.e. does every descriptor matching
    /// `other` also match `self`?
    ///
    /// The check is exact for queries without `*`/`//` (all index schemes
    /// in this repo), and sound (never falsely `true`) in general; see the
    /// [module docs](self) for details. It assumes element names and leaf
    /// values do not collide in the descriptor vocabulary.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_xpath::parse_query;
    ///
    /// let q3 = parse_query("/article/author[first/John][last/Smith]")?;
    /// let q6 = parse_query("/article/author/last/Smith")?;
    /// assert!(q6.covers(&q3)); // q6 ⊒ q3, as in the paper's Figure 3
    /// assert!(!q3.covers(&q6));
    /// # Ok::<(), p2p_index_xpath::ParseQueryError>(())
    /// ```
    pub fn covers(&self, other: &Query) -> bool {
        match self.root().axis {
            Axis::Child => other.root().axis == Axis::Child && contains(self.root(), other.root()),
            Axis::Descendant => std::iter::once(other.root())
                .chain(other.root().descendants())
                .any(|n| contains(self.root(), n)),
        }
    }

    /// `self ⊒ other && self != other` (strict covering).
    pub fn covers_strictly(&self, other: &Query) -> bool {
        self != other && self.covers(other)
    }
}

/// Can general pattern node `g` be mapped onto specific node `s`?
fn contains(g: &Pattern, s: &Pattern) -> bool {
    // Name test: wildcard accepts anything; a concrete name requires the
    // same concrete name (a wildcard in the *specific* query guarantees
    // nothing about the actual element name).
    match (&g.test, &s.test) {
        (NameTest::Wildcard, _) => {}
        (NameTest::Name(gn), NameTest::Name(sn)) if gn == sn => {}
        _ => return false,
    }
    if let Some(gc) = &g.comparison {
        if !comparison_implied(gc, s) {
            return false;
        }
    }
    g.children.iter().all(|gc| child_mapped(gc, s))
}

/// Can the general child constraint `gc` be satisfied under specific node `s`?
fn child_mapped(gc: &Pattern, s: &Pattern) -> bool {
    let targets: Vec<&Pattern> = match gc.axis {
        Axis::Child => s
            .children
            .iter()
            .filter(|c| c.axis == Axis::Child)
            .collect(),
        Axis::Descendant => s.descendants(),
    };
    if targets.into_iter().any(|t| contains(gc, t)) {
        return true;
    }
    // A general value-leaf (`[title/TCP]` style) is also implied by an
    // equality comparison on the corresponding node (`[title="TCP"]`):
    // text equal to the value means the value node exists.
    if gc.is_leaf() {
        if let NameTest::Name(v) = &gc.test {
            return match gc.axis {
                Axis::Child => equality_implies(s, v),
                Axis::Descendant => std::iter::once(s)
                    .chain(s.descendants())
                    .any(|n| equality_implies(n, v)),
            };
        }
    }
    false
}

/// Does node `s` carry an `= v` constraint on its own text?
fn equality_implies(s: &Pattern, v: &str) -> bool {
    matches!(&s.comparison, Some(c) if c.op == CmpOp::Eq && CmpOp::Eq.eval(&c.value, v))
}

/// Is the general comparison `gc` implied by the constraints the specific
/// node `s` places on its text?
///
/// `s` constrains its text through its own comparison and through value
/// leaves (`year/1996` pins the text to `1996` under the no-collision
/// schema assumption).
fn comparison_implied(gc: &Comparison, s: &Pattern) -> bool {
    let mut sources: Vec<Comparison> = Vec::new();
    if let Some(c) = &s.comparison {
        sources.push(c.clone());
    }
    for child in &s.children {
        if child.axis == Axis::Child && child.is_leaf() {
            if let NameTest::Name(v) = &child.test {
                sources.push(Comparison {
                    op: CmpOp::Eq,
                    value: v.clone(),
                });
            }
        }
    }
    sources.iter().any(|sc| comparison_implies(sc, gc))
}

/// Does constraint `spec` (on some text value x) imply constraint `gen`?
fn comparison_implies(spec: &Comparison, gen: &Comparison) -> bool {
    if spec == gen {
        return true;
    }
    // Equality pins the value: just evaluate the general constraint on it.
    if spec.op == CmpOp::Eq {
        return gen.op.eval(&spec.value, &gen.value);
    }
    // Prefix reasoning: text starting with q also starts with every prefix
    // of q, contains every substring of q, and cannot equal any value that
    // does not extend q.
    if spec.op == CmpOp::StartsWith {
        return match gen.op {
            CmpOp::StartsWith => spec.value.starts_with(&gen.value),
            CmpOp::Contains => spec.value.contains(&gen.value),
            CmpOp::Ne => !gen.value.starts_with(&spec.value),
            _ => false,
        };
    }
    // Substring reasoning: text containing w also contains every substring
    // of w.
    if spec.op == CmpOp::Contains {
        return gen.op == CmpOp::Contains && spec.value.contains(&gen.value);
    }
    if matches!(gen.op, CmpOp::StartsWith | CmpOp::Contains) {
        // Only equality or a stronger string constraint (handled above)
        // can imply these; numeric ranges cannot.
        return false;
    }
    // Interval reasoning needs a total order; restrict to numerics, where
    // the runtime comparison semantics are guaranteed numeric too.
    let (Ok(s), Ok(g)) = (
        spec.value.trim().parse::<f64>(),
        gen.value.trim().parse::<f64>(),
    ) else {
        return false;
    };
    use CmpOp::*;
    match (spec.op, gen.op) {
        (Ge, Ge) | (Gt, Ge) | (Gt, Gt) => s >= g,
        (Ge, Gt) => s > g,
        (Le, Le) | (Lt, Le) | (Lt, Lt) => s <= g,
        (Le, Lt) => s < g,
        (Gt, Ne) => s >= g,
        (Ge, Ne) => s > g,
        (Lt, Ne) => s <= g,
        (Le, Ne) => s < g,
        (Ne, Ne) => s == g,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Query;
    use crate::parse::parse_query;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    // The paper's Figure 2 queries.
    fn q1() -> Query {
        q("/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]")
    }
    fn q2() -> Query {
        q("/article[author[first/John][last/Smith]][conf/INFOCOM]")
    }
    fn q3() -> Query {
        q("/article/author[first/John][last/Smith]")
    }
    fn q4() -> Query {
        q("/article/title/TCP")
    }
    fn q5() -> Query {
        q("/article/conf/INFOCOM")
    }
    fn q6() -> Query {
        q("/article/author/last/Smith")
    }

    #[test]
    fn figure_3_partial_order() {
        // Arrows of Figure 3: qi → qj means qj ⊒ qi... read as "more
        // specific above": q1 is covered by q3, q4; q2 by q3, q5; q3 by q6.
        assert!(q3().covers(&q1()));
        assert!(q4().covers(&q1()));
        assert!(q3().covers(&q2()));
        assert!(q5().covers(&q2()));
        assert!(q6().covers(&q3()));
        // Transitivity: q6 ⊒ q1 via q3.
        assert!(q6().covers(&q1()));
        assert!(q6().covers(&q2()));
    }

    #[test]
    fn covering_is_reflexive() {
        for query in [q1(), q2(), q3(), q4(), q5(), q6()] {
            assert!(query.covers(&query), "{query}");
            assert!(!query.covers_strictly(&query));
        }
    }

    #[test]
    fn non_covering_pairs() {
        assert!(!q4().covers(&q2())); // TCP title not implied by INFOCOM query
        assert!(!q5().covers(&q1())); // SIGCOMM article doesn't promise INFOCOM
        assert!(!q1().covers(&q3())); // more specific never covers less specific
        assert!(!q3().covers(&q6()));
        assert!(!q4().covers(&q5()));
        assert!(!q5().covers(&q4()));
    }

    #[test]
    fn covering_is_antisymmetric_on_distinct_queries() {
        let pairs = [(q3(), q6()), (q1(), q4()), (q2(), q5())];
        for (a, b) in pairs {
            assert!(!(a.covers(&b) && b.covers(&a)));
        }
    }

    #[test]
    fn wildcard_covers_concrete_names() {
        assert!(q("/*/title/TCP").covers(&q("/article/title/TCP")));
        assert!(q("/article/*/Smith").covers(&q("/article/last/Smith")));
        // ...but a concrete name does not cover a wildcard.
        assert!(!q("/article/title/TCP").covers(&q("/*/title/TCP")));
    }

    #[test]
    fn descendant_covers_deeper_paths() {
        assert!(q("//Smith").covers(&q("/article/author/last/Smith")));
        assert!(q("/article//Smith").covers(&q("/article/author/last/Smith")));
        assert!(q("//last/Smith").covers(&q("/article/author/last/Smith")));
        // A child-axis path does not cover a descendant query.
        assert!(!q("/article/author/last/Smith").covers(&q("/article//Smith")));
    }

    #[test]
    fn descendant_root_covers_shallow_and_deep() {
        assert!(q("//article").covers(&q("/article/title/TCP")));
        assert!(q("//title").covers(&q("/article/title/TCP")));
    }

    #[test]
    fn comparison_implication_numeric() {
        assert!(q("/a[y>=1990]").covers(&q("/a[y>=1995]")));
        assert!(q("/a[y>=1990]").covers(&q("/a[y>1990]")));
        assert!(q("/a[y>1990]").covers(&q("/a[y>=1991]")));
        assert!(q("/a[y<=2000]").covers(&q("/a[y<1999]")));
        assert!(q("/a[y!=5]").covers(&q("/a[y>5]")));
        assert!(q("/a[y!=5]").covers(&q("/a[y!=5]")));
        // Not implied:
        assert!(!q("/a[y>=1995]").covers(&q("/a[y>=1990]")));
        assert!(!q("/a[y<=1990]").covers(&q("/a[y>=1990]")));
        assert!(!q("/a[y!=5]").covers(&q("/a[y>=5]")));
    }

    #[test]
    fn comparison_implied_by_value_leaf() {
        // The MSD pins year/1996; a range query covering 1996 covers it.
        assert!(q("/article[year>=1990]").covers(&q("/article/year/1996")));
        assert!(q("/article[year<=1996]").covers(&q("/article/year/1996")));
        assert!(q("/article[year!=1989]").covers(&q("/article/year/1996")));
        assert!(!q("/article[year>=1997]").covers(&q("/article/year/1996")));
    }

    #[test]
    fn equality_comparison_and_value_leaf_are_equivalent() {
        assert!(q("/article/conf/INFOCOM").covers(&q("/article[conf=INFOCOM]")));
        assert!(q("/article[conf=INFOCOM]").covers(&q("/article/conf/INFOCOM")));
    }

    #[test]
    fn equality_implied_with_numeric_normalization() {
        assert!(q("/a/y/100").covers(&q("/a[y=0100]")));
    }

    #[test]
    fn starts_with_covering() {
        // Initial-letter index entries (§IV-C): [last^=S] covers any
        // query pinning a last name that starts with S.
        assert!(q("/article[author/last^=S]").covers(&q("/article/author/last/Smith")));
        assert!(q("/article[author/last^=Smi]").covers(&q("/article/author/last/Smith")));
        assert!(!q("/article[author/last^=D]").covers(&q("/article/author/last/Smith")));
        // Longer prefixes are covered by shorter ones.
        assert!(q("/article[author/last^=S]").covers(&q("/article[author/last^=Smi]")));
        assert!(!q("/article[author/last^=Smi]").covers(&q("/article[author/last^=S]")));
        // A prefix constraint implies inequality with non-extending values.
        assert!(q("/article[author/last!=Doe]").covers(&q("/article[author/last^=S]")));
        assert!(!q("/article[author/last!=Smith]").covers(&q("/article[author/last^=S]")));
        // Prefix does not imply equality or ranges.
        assert!(!q("/article/author/last/Smith").covers(&q("/article[author/last^=Smith]")));
        assert!(!q("/article[year>=1990]").covers(&q("/article[year^=19]")));
    }

    #[test]
    fn contains_covering() {
        // Keyword entries: [title*=Routing] covers titles containing it.
        assert!(q("/article[title*=Routing]")
            .covers(&q("/article/title/\"Adaptive Routing in Overlays\"")));
        assert!(!q("/article[title*=Caching]")
            .covers(&q("/article/title/\"Adaptive Routing in Overlays\"")));
        // Substring of a substring.
        assert!(q("/article[title*=out]").covers(&q("/article[title*=Routing]")));
        assert!(!q("/article[title*=Routing]").covers(&q("/article[title*=out]")));
        // Prefix implies contains.
        assert!(q("/article[title*=Ada]").covers(&q("/article[title^=Adaptive]")));
        // Contains does not imply prefix.
        assert!(!q("/article[title^=Routing]").covers(&q("/article[title*=Routing]")));
    }

    #[test]
    fn string_comparisons_only_imply_identity() {
        assert!(q("/a[t>=apple]").covers(&q("/a[t>=apple]")));
        assert!(!q("/a[t>=apple]").covers(&q("/a[t>=banana]")));
        // Equality on strings still evaluates.
        assert!(q("/a[t!=x]").covers(&q("/a[t=y]")));
    }

    #[test]
    fn msd_is_covered_by_every_fragment() {
        let msd = q1();
        for broad in [q3(), q4(), q6(), q("/article"), q("/article[year/1989]")] {
            assert!(broad.covers(&msd), "{broad}");
        }
    }

    #[test]
    fn deeper_hierarchy_chains() {
        // A chain as produced by the Complex indexing scheme:
        // conf → conf+year → author+conf+year → MSD.
        let c0 = q("/article/conf/INFOCOM");
        let c1 = q("/article[conf/INFOCOM][year/1996]");
        let c2 = q("/article[author/last/Smith][conf/INFOCOM][year/1996]");
        let msd = q("/article[author[first/John][last/Smith]][title/IPv6][conf/INFOCOM][year/1996][size/312352]");
        assert!(c0.covers(&c1));
        assert!(c1.covers(&c2));
        assert!(c2.covers(&msd));
        assert!(c0.covers(&msd));
        assert!(!c2.covers(&c1));
    }

    #[test]
    fn sibling_predicates_do_not_merge_across_branches() {
        // [author[first/John]][author[last/Doe]] is weaker than
        // [author[first/John][last/Doe]] (different author elements may
        // satisfy the two branches), so the weaker covers the stronger...
        let merged = q("/article/author[first/John][last/Doe]");
        let split = q("/article[author/first/John][author/last/Doe]");
        assert!(split.covers(&merged));
        // ...but not vice versa.
        assert!(!merged.covers(&split));
    }
}
