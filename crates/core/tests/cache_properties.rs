//! Property tests for the per-node shortcut cache's LRU semantics.
//!
//! The cache is checked against a naive reference model (a flat vector
//! with explicit recency stamps) over arbitrary insert/get sequences:
//!
//! * the configured capacity is never exceeded, at any intermediate step;
//! * the most-recently-probed key survives any insert sequence shorter
//!   than the capacity;
//! * which key gets evicted is decided by recency alone, exactly as the
//!   reference model predicts.
//!
//! Each property also has a deterministic companion driven by a seeded
//! [`SplitMix64`] sequence, so the invariants are exercised on every test
//! run even where proptest is unavailable, and with a pinned
//! `PROPTEST_RNG_SEED` in CI.

use p2p_index_core::{IndexTarget, ShortcutCache};
use p2p_index_dht::{Key, SplitMix64};
use proptest::prelude::*;

/// A small pool of distinct keys; indices into it make op sequences
/// collide often enough to exercise refresh/replace paths.
fn key(i: usize) -> Key {
    Key::hash_of(&format!("/article/k{i}"))
}

fn target(i: usize) -> IndexTarget {
    IndexTarget::File(format!("file-{i}.pdf"))
}

/// One step of a cache workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(usize, usize),
    Get(usize),
}

/// The reference model: same replace-on-write, clock-stamped LRU
/// semantics as `ShortcutCache`, in the most obvious possible encoding.
struct ModelCache {
    cap: Option<usize>,
    clock: u64,
    slots: Vec<(Key, IndexTarget, u64)>,
}

impl ModelCache {
    fn new(cap: Option<usize>) -> Self {
        ModelCache {
            cap,
            clock: 0,
            slots: Vec::new(),
        }
    }

    fn insert(&mut self, k: Key, t: IndexTarget) {
        if self.cap == Some(0) {
            return;
        }
        self.clock += 1;
        if let Some(slot) = self.slots.iter_mut().find(|(sk, _, _)| *sk == k) {
            slot.2 = self.clock;
            slot.1 = t;
            return;
        }
        if let Some(cap) = self.cap {
            while self.slots.len() >= cap {
                let oldest = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, _, used))| *used)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                self.slots.remove(oldest);
            }
        }
        self.slots.push((k, t, self.clock));
    }

    fn get(&mut self, k: &Key) -> Option<&IndexTarget> {
        self.clock += 1;
        let clock = self.clock;
        self.slots
            .iter_mut()
            .find(|(sk, _, _)| sk == k)
            .map(|slot| {
                slot.2 = clock;
                &slot.1
            })
    }

    fn keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.slots.iter().map(|(k, _, _)| *k).collect();
        ks.sort();
        ks
    }
}

/// Applies `ops` to both the real cache and the model, checking the
/// capacity bound and model agreement after every step.
fn run_against_model(cap: usize, ops: &[Op]) {
    let mut cache = ShortcutCache::with_capacity(cap);
    let mut model = ModelCache::new(Some(cap));
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, t) => {
                cache.insert(key(k), target(t));
                model.insert(key(k), target(t));
            }
            Op::Get(k) => {
                let real = cache.get(&key(k)).map(|ts| ts[0].clone());
                let modeled = model.get(&key(k)).cloned();
                assert_eq!(real, modeled, "step {step}: get({k}) disagrees");
            }
        }
        assert!(
            cache.len() <= cap,
            "step {step}: capacity exceeded ({} > {cap})",
            cache.len()
        );
        assert_eq!(cache.len(), model.slots.len(), "step {step}: size");
        for k in model.keys() {
            assert!(
                cache.peek(&k).is_some(),
                "step {step}: model key missing from cache"
            );
        }
    }
}

/// Pseudo-random op sequence from a seeded generator: inserts and gets
/// over an 8-key pool.
fn scripted_ops(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let k = (rng.next_u64() % 8) as usize;
            match rng.next_u64() % 3 {
                0 => Op::Get(k),
                _ => Op::Insert(k, (rng.next_u64() % 4) as usize),
            }
        })
        .collect()
}

#[test]
fn capacity_never_exceeded_deterministic() {
    for cap in [1, 2, 3, 5] {
        for seed in 0..8 {
            run_against_model(cap, &scripted_ops(seed, 200));
        }
    }
}

#[test]
fn most_recently_probed_key_survives_deterministic() {
    for cap in [2usize, 3, 5] {
        for seed in 0..8 {
            let mut cache = ShortcutCache::with_capacity(cap);
            for op in scripted_ops(seed, 60) {
                if let Op::Insert(k, t) = op {
                    cache.insert(key(k), target(t));
                }
            }
            // Probe key 0 (inserting it first if the workload evicted it),
            // then add up to cap-1 fresh keys: the probe refreshed key 0's
            // recency, so everything evicted must be someone else.
            cache.insert(key(0), target(0));
            cache.get(&key(0));
            for fresh in 100..(100 + cap - 1) {
                cache.insert(key(fresh), target(1));
            }
            assert!(
                cache.peek(&key(0)).is_some(),
                "cap {cap} seed {seed}: probed key was evicted"
            );
        }
    }
}

#[test]
fn eviction_order_matches_recency_deterministic() {
    // Insert a..d into a cap-3 cache with interleaved probes; evictions
    // must strike in exactly the recency order the model predicts.
    let mut cache = ShortcutCache::with_capacity(3);
    cache.insert(key(1), target(1));
    cache.insert(key(2), target(2));
    cache.insert(key(3), target(3));
    cache.get(&key(1)); // recency now: 2 < 3 < 1
    cache.insert(key(4), target(4)); // evicts 2
    assert!(cache.peek(&key(2)).is_none());
    assert!(cache.peek(&key(3)).is_some());
    cache.get(&key(3)); // recency now: 1 < 4 < 3
    cache.insert(key(5), target(5)); // evicts 1
    assert!(cache.peek(&key(1)).is_none());
    assert!(cache.peek(&key(4)).is_some());
    assert!(cache.peek(&key(3)).is_some());
    assert!(cache.peek(&key(5)).is_some());
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8usize, 0..4usize).prop_map(|(k, t)| Op::Insert(k, t)),
        (0..8usize).prop_map(Op::Get),
    ]
}

proptest! {
    /// At no intermediate step does the cache hold more keys than its
    /// capacity, and it always agrees with the reference model.
    #[test]
    fn capacity_never_exceeded(
        cap in 1..6usize,
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        run_against_model(cap, &ops);
    }

    /// After probing a key, fewer-than-capacity fresh inserts can never
    /// evict it: the probe made it the most recently used.
    #[test]
    fn most_recently_probed_key_survives(
        cap in 2..6usize,
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let mut cache = ShortcutCache::with_capacity(cap);
        for op in &ops {
            match *op {
                Op::Insert(k, t) => { cache.insert(key(k), target(t)); }
                Op::Get(k) => { cache.get(&key(k)); }
            }
        }
        cache.insert(key(0), target(0));
        cache.get(&key(0));
        for fresh in 100..(100 + cap - 1) {
            cache.insert(key(fresh), target(1));
        }
        prop_assert!(cache.peek(&key(0)).is_some());
    }

    /// Unbounded caches accept everything and never evict.
    #[test]
    fn unbounded_cache_never_evicts(
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let mut cache = ShortcutCache::new();
        let mut model = ModelCache::new(None);
        for op in &ops {
            match *op {
                Op::Insert(k, t) => {
                    cache.insert(key(k), target(t));
                    model.insert(key(k), target(t));
                }
                Op::Get(k) => { cache.get(&key(k)); model.get(&key(k)); }
            }
        }
        prop_assert_eq!(cache.len(), model.slots.len());
        for k in model.keys() {
            prop_assert!(cache.peek(&k).is_some());
        }
    }
}
