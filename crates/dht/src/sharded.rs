//! A sharded, reader-concurrent single-node partition store.
//!
//! A networked `dhtd` daemon serves exactly one partition: every key the
//! client routes to it belongs to it, so the substrate behind the server is
//! always a one-node ring. That substrate used to sit behind one global
//! `Mutex`, which serialized every request a daemon handled — reads
//! included — and capped the multi-core scaling of the serving path.
//!
//! [`ShardedDht`] is the replacement: the partition's key space is split
//! across N key-hash shards, each behind its own [`std::sync::RwLock`], so
//! concurrent `Get`s proceed in parallel (shared read locks) and only
//! `Put`/`Remove` takes a single shard's write lock. The paper's workloads
//! are overwhelmingly read-heavy — searches dominate publishes by orders of
//! magnitude in the §V grids — which is exactly the shape reader-writer
//! shard locks serve well.
//!
//! Behavior is pinned to `RingDht::from_ids([id])`: same responses, same
//! [`DhtStats`] accounting (`Put`/`Get` → +1 lookup +2 messages, `Remove`
//! → +2 messages, `NodeFor` → free), same [`Dht::entries`] snapshot shape
//! (ascending key order). A shard-count-invariance property test holds a
//! 1-shard and a 16-shard store to the plain-ring oracle.
//!
//! Replication tombstones (deleted values a stale replica must not push
//! back) live *inside* the shards, guarded by the same locks as the values
//! they shadow, so the networked server needs no global tombstone table.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{self, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeId};
use crate::key::Key;
use crate::storage::NodeStore;

/// Default shard count for a served partition.
///
/// Fixed (not derived from the host's core count) so a partition's layout
/// is identical on a laptop, a CI runner, and a many-core server; 16 gives
/// a low collision probability for the bench's 16-thread cells at a
/// negligible footprint per shard.
pub const DEFAULT_SHARDS: usize = 16;

/// One key-hash shard: a slice of the partition's store plus the
/// replication tombstones shadowing it, consistent under one lock.
#[derive(Debug, Default)]
struct Shard {
    store: NodeStore,
    /// Values deleted locally that a stale replica must not resurrect via
    /// a repair push. Kept under the same lock as the store so a
    /// tombstone check and the value it guards can never be observed in
    /// a torn state within a shard.
    deleted: HashMap<Key, HashSet<Bytes>>,
}

/// A single-node DHT partition sharded for concurrent access.
///
/// All operational methods take `&self`: connection workers, the
/// replication fan-out, and the anti-entropy repair thread each acquire
/// only the shard lock(s) their operation touches. Lock discipline:
/// at most one shard lock is held at a time, except
/// [`ShardedDht::replace_contents`], which takes every shard write lock
/// in ascending index order (and is the only multi-shard acquirer, so it
/// cannot deadlock against the single-shard paths).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use p2p_index_dht::{Dht, Key, NodeId, ShardedDht};
///
/// let mut dht = ShardedDht::new(NodeId::hash_of("node-0"), 16);
/// let key = Key::hash_of("hello");
/// dht.put(key, Bytes::from_static(b"world"));
/// assert_eq!(dht.get(&key), vec![Bytes::from_static(b"world")]);
/// ```
#[derive(Debug)]
pub struct ShardedDht {
    id: NodeId,
    shards: Box<[RwLock<Shard>]>,
    /// `shards.len() - 1`; the count is a power of two so shard selection
    /// is a mask over the key's low bits.
    mask: u64,
    // Atomic so the shared-reference read path (`get`) can account its
    // request/response pair like every other substrate does.
    lookups: AtomicU64,
    messages: AtomicU64,
    metrics: MetricsRegistry,
    /// Registry for `net.server.shard.*` lock-acquisition counters,
    /// attached by the networked server. Separate from `metrics` so
    /// substrate-level `dht.*` recording and server-level contention
    /// observability can be enabled independently.
    shard_metrics: MetricsRegistry,
}

impl ShardedDht {
    /// Creates an empty partition store for node `id` with `shards`
    /// key-hash shards (rounded up to a power of two, minimum 1).
    pub fn new(id: NodeId, shards: usize) -> ShardedDht {
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[RwLock<Shard>]> =
            (0..count).map(|_| RwLock::new(Shard::default())).collect();
        ShardedDht {
            id,
            mask: count as u64 - 1,
            shards,
            lookups: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            metrics: MetricsRegistry::default(),
            shard_metrics: MetricsRegistry::default(),
        }
    }

    /// Creates a partition store with [`DEFAULT_SHARDS`] shards.
    pub fn with_default_shards(id: NodeId) -> ShardedDht {
        ShardedDht::new(id, DEFAULT_SHARDS)
    }

    /// The node this partition belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Attaches a registry for the `net.server.shard.*` lock counters
    /// (`read_locks`, `write_locks`, `read_contended`, `write_contended`).
    ///
    /// When the registry is disabled the lock paths are the plain
    /// `read()`/`write()` calls — no counter is touched, preserving the
    /// metrics-off hot path.
    pub fn set_shard_metrics(&mut self, metrics: MetricsRegistry) {
        self.shard_metrics = metrics;
    }

    fn shard_of(&self, key: &Key) -> &RwLock<Shard> {
        &self.shards[(key.low_u64() & self.mask) as usize]
    }

    /// Acquires a shard read lock, counting the acquisition and — via a
    /// `try_read` probe — contended waits when shard metrics are enabled.
    fn read_shard<'a>(&self, shard: &'a RwLock<Shard>) -> RwLockReadGuard<'a, Shard> {
        if !self.shard_metrics.is_enabled() {
            return shard.read().unwrap_or_else(PoisonError::into_inner);
        }
        self.shard_metrics.incr("net.server.shard.read_locks");
        match shard.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.shard_metrics.incr("net.server.shard.read_contended");
                shard.read().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    /// Write-lock twin of [`ShardedDht::read_shard`].
    fn write_shard<'a>(&self, shard: &'a RwLock<Shard>) -> RwLockWriteGuard<'a, Shard> {
        if !self.shard_metrics.is_enabled() {
            return shard.write().unwrap_or_else(PoisonError::into_inner);
        }
        self.shard_metrics.incr("net.server.shard.write_locks");
        match shard.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.shard_metrics.incr("net.server.shard.write_contended");
                shard.write().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    fn execute_op(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        match op {
            DhtOp::NodeFor(_) => Ok(DhtResponse::Node(self.id)),
            DhtOp::Get(key) => Ok(DhtResponse::Values(Dht::get(self, &key))),
            DhtOp::Put { key, value } => {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                self.messages.fetch_add(2, Ordering::Relaxed);
                let mut shard = self.write_shard(self.shard_of(&key));
                Ok(DhtResponse::Stored(shard.store.put(key, value)))
            }
            DhtOp::Remove { key, value } => {
                self.messages.fetch_add(2, Ordering::Relaxed);
                let mut shard = self.write_shard(self.shard_of(&key));
                Ok(DhtResponse::Removed(shard.store.remove(&key, &value)))
            }
        }
    }

    /// Executes one operation through a shared reference — the entry point
    /// the networked server's connection workers call concurrently.
    ///
    /// Semantics (responses, accounting, metrics recording) are identical
    /// to [`Dht::execute`]; only the receiver differs.
    pub fn execute_shared(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_op(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_op(op);
        api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    /// Executes a batch of independent operations through a shared
    /// reference, one result per op in order — semantics identical to
    /// [`Dht::execute_many`]. No global lock exists to amortize: each op
    /// takes only its own shard's lock, so batches from different
    /// connections interleave freely.
    pub fn execute_many_shared(&self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        if self.metrics.is_enabled() {
            // Per-op recording must stay identical to the unary sequence.
            return ops.into_iter().map(|op| self.execute_shared(op)).collect();
        }
        ops.into_iter().map(|op| self.execute_op(op)).collect()
    }

    /// Records the tombstone transition for a replicated write: a `Remove`
    /// shadows the value against stale repair pushes, a `Put` of the same
    /// value lifts the shadow (a deliberate re-add wins).
    ///
    /// Other operations are no-ops.
    pub fn note_write(&self, op: &DhtOp) {
        match op {
            DhtOp::Remove { key, value } => {
                let mut shard = self.write_shard(self.shard_of(key));
                shard.deleted.entry(*key).or_default().insert(value.clone());
            }
            DhtOp::Put { key, value } => {
                let mut shard = self.write_shard(self.shard_of(key));
                if let Some(dead) = shard.deleted.get_mut(key) {
                    dead.remove(value);
                    if dead.is_empty() {
                        shard.deleted.remove(key);
                    }
                }
            }
            DhtOp::NodeFor(_) | DhtOp::Get(_) => {}
        }
    }

    /// Snapshot of the stored entries minus tombstoned values, plus the
    /// number of values withheld — the repair/drain enumeration surface.
    ///
    /// Each shard is swept under one read guard, so the store and the
    /// tombstones shadowing it are mutually consistent per shard; the
    /// merged result is in ascending key order like [`Dht::entries`].
    pub fn live_entries(&self) -> (Vec<(Key, Vec<Bytes>)>, u64) {
        let mut live = Vec::new();
        let mut withheld = 0u64;
        for lock in self.shards.iter() {
            let shard = self.read_shard(lock);
            for (key, values) in shard.store.iter() {
                let dead = shard.deleted.get(key);
                let kept: Vec<Bytes> = values
                    .iter()
                    .filter(|v| !dead.is_some_and(|d| d.contains(*v)))
                    .cloned()
                    .collect();
                withheld += (values.len() - kept.len()) as u64;
                if !kept.is_empty() {
                    live.push((*key, kept));
                }
            }
        }
        live.sort_unstable_by_key(|(key, _)| *key);
        (live, withheld)
    }

    /// Filters an *incoming* entry list (e.g. a peer's `Transfer` payload)
    /// against this partition's tombstones, returning the surviving
    /// entries and the number of values withheld.
    pub fn filter_live(&self, entries: Vec<(Key, Vec<Bytes>)>) -> (Vec<(Key, Vec<Bytes>)>, u64) {
        let mut live = Vec::new();
        let mut withheld = 0u64;
        for (key, values) in entries {
            let total = values.len();
            let shard = self.read_shard(self.shard_of(&key));
            let dead = shard.deleted.get(&key);
            let kept: Vec<Bytes> = values
                .into_iter()
                .filter(|v| !dead.is_some_and(|d| d.contains(v)))
                .collect();
            drop(shard);
            withheld += (total - kept.len()) as u64;
            if !kept.is_empty() {
                live.push((key, kept));
            }
        }
        (live, withheld)
    }

    /// Snapshot of every tombstone as `(key, deleted values)`, in
    /// ascending key order — the input to the repair thread's scrub pass.
    pub fn tombstones(&self) -> Vec<(Key, Vec<Bytes>)> {
        let mut all = Vec::new();
        for lock in self.shards.iter() {
            let shard = self.read_shard(lock);
            for (key, dead) in shard.deleted.iter() {
                all.push((*key, dead.iter().cloned().collect()));
            }
        }
        all.sort_unstable_by_key(|(key, _)| *key);
        all
    }

    /// Swaps this partition's stored contents for `new`'s entries,
    /// returning the old contents (with the old work counters) as a
    /// substrate box. Tombstones stay in place, mirroring the behavior of
    /// swapping the substrate box behind a server whose tombstone table
    /// lives outside it.
    ///
    /// Takes every shard write lock in ascending index order; this is the
    /// only multi-shard lock acquisition in the type.
    pub fn replace_contents(&self, new: Box<dyn Dht + Send>) -> Box<dyn Dht + Send> {
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> =
            self.shards.iter().map(|s| self.write_shard(s)).collect();
        let old_shards: Vec<Shard> = guards
            .iter_mut()
            .map(|g| Shard {
                store: std::mem::take(&mut g.store),
                deleted: HashMap::new(),
            })
            .collect();
        let mut old = ShardedDht::new(self.id, self.shards.len());
        for (slot, shard) in old.shards.iter_mut().zip(old_shards) {
            *slot.get_mut().unwrap_or_else(PoisonError::into_inner) = shard;
        }
        *old.lookups.get_mut() = self.lookups.load(Ordering::Relaxed);
        *old.messages.get_mut() = self.messages.load(Ordering::Relaxed);
        let incoming = new.stats();
        self.lookups.store(incoming.lookups, Ordering::Relaxed);
        self.messages.store(incoming.messages, Ordering::Relaxed);
        for (key, values) in new.entries() {
            let idx = (key.low_u64() & self.mask) as usize;
            for value in values {
                guards[idx].store.put(key, value);
            }
        }
        Box::new(old)
    }

    /// Total distinct keys across all shards.
    pub fn total_keys(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.read_shard(s).store.key_count())
            .sum()
    }

    /// Total stored values across all shards.
    pub fn total_values(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.read_shard(s).store.value_count())
            .sum()
    }
}

impl Dht for ShardedDht {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        self.execute_shared(op)
    }

    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        self.execute_many_shared(ops)
    }

    fn node_for(&self, _key: &Key) -> Option<NodeId> {
        Some(self.id)
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.id]
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.messages.fetch_add(2, Ordering::Relaxed);
        self.read_shard(self.shard_of(key)).store.get(key).to_vec()
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        let mut all = Vec::new();
        for lock in self.shards.iter() {
            let shard = self.read_shard(lock);
            for (key, values) in shard.store.iter() {
                all.push((*key, values.to_vec()));
            }
        }
        all.sort_unstable_by_key(|(key, _)| *key);
        all
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.messages.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hops: 0,
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingDht;
    use proptest::prelude::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn node() -> NodeId {
        NodeId::hash_of("node-0")
    }

    /// A deterministic op script: puts, gets, removes (some hitting, some
    /// missing), and a NodeFor, across a small key universe.
    fn script(len: usize, seed: u64) -> Vec<DhtOp> {
        let mut ops = Vec::with_capacity(len);
        let mut state = seed | 1;
        for i in 0..len {
            // SplitMix-style scramble, deterministic across runs.
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            let key = Key::hash_of(&format!("k{}", state % 17));
            let value = Bytes::from(format!("v{}", state % 5));
            ops.push(match state % 7 {
                0 | 1 => DhtOp::Put { key, value },
                2..=4 => DhtOp::Get(key),
                5 => DhtOp::Remove { key, value },
                _ => {
                    let _ = i;
                    DhtOp::NodeFor(key)
                }
            });
        }
        ops
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut dht = ShardedDht::with_default_shards(node());
        let k = Key::hash_of("k");
        assert!(dht.put(k, b("v")));
        assert!(!dht.put(k, b("v")));
        assert_eq!(Dht::get(&dht, &k), vec![b("v")]);
        assert!(dht.remove(&k, b"v"));
        assert!(Dht::get(&dht, &k).is_empty());
        assert_eq!(dht.len(), 1);
        assert_eq!(dht.node_for(&k), Some(node()));
        assert_eq!(dht.nodes(), vec![node()]);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedDht::new(node(), 0).shard_count(), 1);
        assert_eq!(ShardedDht::new(node(), 1).shard_count(), 1);
        assert_eq!(ShardedDht::new(node(), 3).shard_count(), 4);
        assert_eq!(ShardedDht::new(node(), 16).shard_count(), 16);
    }

    #[test]
    fn matches_single_node_ring_on_a_script() {
        let mut sharded = ShardedDht::with_default_shards(node());
        let mut ring = RingDht::from_ids([*node().key()]);
        for op in script(400, 42) {
            assert_eq!(sharded.execute(op.clone()), ring.execute(op));
        }
        assert_eq!(sharded.stats(), ring.stats());
        assert_eq!(sharded.entries(), ring.entries());
        assert_eq!(sharded.total_keys(), ring.total_keys());
    }

    #[test]
    fn note_write_shadows_and_readd_lifts() {
        let dht = ShardedDht::new(node(), 4);
        let k = Key::hash_of("k");
        dht.note_write(&DhtOp::Remove {
            key: k,
            value: b("gone"),
        });
        let (live, withheld) =
            dht.filter_live(vec![(k, vec![b("gone"), b("kept")]), (k, vec![b("gone")])]);
        assert_eq!(live, vec![(k, vec![b("kept")])]);
        assert_eq!(withheld, 2);
        assert_eq!(dht.tombstones(), vec![(k, vec![b("gone")])]);
        // A deliberate re-add lifts the shadow.
        dht.note_write(&DhtOp::Put {
            key: k,
            value: b("gone"),
        });
        assert!(dht.tombstones().is_empty());
        let (live, withheld) = dht.filter_live(vec![(k, vec![b("gone")])]);
        assert_eq!(live, vec![(k, vec![b("gone")])]);
        assert_eq!(withheld, 0);
    }

    #[test]
    fn live_entries_sweeps_store_minus_tombstones() {
        let mut dht = ShardedDht::new(node(), 8);
        let k1 = Key::hash_of("k1");
        let k2 = Key::hash_of("k2");
        dht.put(k1, b("a"));
        dht.put(k1, b("b"));
        dht.put(k2, b("c"));
        dht.note_write(&DhtOp::Remove {
            key: k1,
            value: b("a"),
        });
        let (live, withheld) = dht.live_entries();
        assert_eq!(withheld, 1);
        let mut expected = vec![(k1, vec![b("b")]), (k2, vec![b("c")])];
        expected.sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(live, expected);
        // The full snapshot still includes the tombstoned value.
        assert_eq!(dht.entries().iter().map(|(_, v)| v.len()).sum::<usize>(), 3);
    }

    #[test]
    fn replace_contents_swaps_stores_and_stats_but_keeps_tombstones() {
        let mut dht = ShardedDht::new(node(), 8);
        let k = Key::hash_of("old");
        dht.put(k, b("old-value"));
        dht.note_write(&DhtOp::Remove {
            key: k,
            value: b("shadow"),
        });
        let mut incoming = RingDht::from_ids([*node().key()]);
        incoming.put(Key::hash_of("new"), b("new-value"));
        let incoming_stats = incoming.stats();
        let old = dht.replace_contents(Box::new(incoming));
        assert_eq!(old.entries(), vec![(k, vec![b("old-value")])]);
        assert_eq!(old.stats().lookups, 1);
        assert_eq!(
            dht.entries(),
            vec![(Key::hash_of("new"), vec![b("new-value")])]
        );
        assert_eq!(dht.stats(), incoming_stats);
        // Tombstones survive the swap, like a server-side substrate swap.
        assert_eq!(dht.tombstones(), vec![(k, vec![b("shadow")])]);
    }

    #[test]
    fn concurrent_readers_and_writers_settle_to_the_oracle() {
        use std::sync::Arc;
        let dht = Arc::new(ShardedDht::with_default_shards(node()));
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let dht = Arc::clone(&dht);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = Key::hash_of(&format!("t{t}-{i}"));
                        let put = dht.execute_shared(DhtOp::Put {
                            key,
                            value: Bytes::from(format!("value-{t}-{i}")),
                        });
                        assert_eq!(put, Ok(DhtResponse::Stored(true)));
                        let got = dht.execute_shared(DhtOp::Get(key));
                        assert_eq!(
                            got,
                            Ok(DhtResponse::Values(vec![Bytes::from(format!(
                                "value-{t}-{i}"
                            ))]))
                        );
                    }
                });
            }
        });
        assert_eq!(dht.total_values(), threads * per_thread);
        let stats = dht.stats();
        // Every op pair: put (+1 lookup +2 msgs) and get (+1 lookup +2 msgs).
        assert_eq!(stats.lookups, 2 * (threads * per_thread) as u64);
        assert_eq!(stats.messages, 4 * (threads * per_thread) as u64);
    }

    #[test]
    fn shard_lock_metrics_count_acquisitions_only_when_enabled() {
        let mut dht = ShardedDht::new(node(), 4);
        let k = Key::hash_of("k");
        dht.put(k, b("v"));
        // Disabled registry: nothing recorded anywhere.
        let registry = MetricsRegistry::default();
        dht.set_shard_metrics(registry.clone());
        dht.put(k, b("v2"));
        let enabled = MetricsRegistry::new();
        dht.set_shard_metrics(enabled.clone());
        dht.put(k, b("v3"));
        let _ = Dht::get(&dht, &k);
        let snapshot = enabled.snapshot();
        assert_eq!(snapshot.counter("net.server.shard.write_locks"), 1);
        assert_eq!(snapshot.counter("net.server.shard.read_locks"), 1);
        assert_eq!(snapshot.counter("net.server.shard.write_contended"), 0);
    }

    proptest! {
        /// Shard-count invariance: a 1-shard store, a 16-shard store, and
        /// the plain single-node ring all produce identical per-op
        /// results, identical stats, and identical entry snapshots for
        /// any op script.
        #[test]
        fn prop_shard_count_is_invisible(len in 1usize..120, seed in any::<u64>()) {
            let mut one = ShardedDht::new(node(), 1);
            let mut sixteen = ShardedDht::new(node(), 16);
            let mut ring = RingDht::from_ids([*node().key()]);
            for op in script(len, seed) {
                let expected = ring.execute(op.clone());
                prop_assert_eq!(one.execute(op.clone()), expected.clone());
                prop_assert_eq!(sixteen.execute(op), expected);
            }
            prop_assert_eq!(one.stats(), ring.stats());
            prop_assert_eq!(sixteen.stats(), ring.stats());
            prop_assert_eq!(one.entries(), ring.entries());
            prop_assert_eq!(sixteen.entries(), ring.entries());
        }
    }
}
