//! Property tests: serialization/parsing round-trips on arbitrary trees.

use p2p_index_xmldoc::{parse, Element, XmlNode};
use proptest::prelude::*;

/// Arbitrary element names: short lowercase identifiers.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}"
}

/// Arbitrary text content, including XML-special characters.
fn arb_text() -> impl Strategy<Value = String> {
    // Printable-ish strings with specials; avoid raw control chars and
    // whitespace-only runs (the parser drops insignificant whitespace).
    "[ -~]{1,24}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), proptest::option::of(arb_text())).prop_map(|(name, text)| match text {
        Some(t) => Element::with_text(name, t),
        None => Element::new(name),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.push_attribute(n, v);
                }
                for c in children {
                    e.push_child(XmlNode::Element(c));
                }
                e
            })
    })
}

/// Normalizes for comparison: the writer emits text trimmed, and the
/// parser drops whitespace-only runs, so compare canonical forms.
fn canonical(e: &Element) -> Element {
    e.canonicalize()
}

proptest! {
    /// Writing then parsing is the identity on canonical trees.
    #[test]
    fn write_parse_roundtrip(e in arb_element()) {
        let text = e.to_xml();
        let parsed = parse(&text).expect("writer output must parse");
        prop_assert_eq!(canonical(&parsed), canonical(&e));
    }

    /// Pretty-printing parses back to the same canonical tree.
    #[test]
    fn pretty_parse_roundtrip(e in arb_element()) {
        let text = e.to_xml_pretty();
        let parsed = parse(&text).expect("pretty output must parse");
        prop_assert_eq!(canonical(&parsed), canonical(&e));
    }

    /// Canonicalization is idempotent and order-insensitive.
    #[test]
    fn canonicalize_idempotent(e in arb_element()) {
        let once = e.canonicalize();
        prop_assert_eq!(once.canonicalize(), once);
    }

    /// Parsing never panics on arbitrary input (fuzz-light).
    #[test]
    fn parse_never_panics(s in "[ -~]{0,64}") {
        let _ = parse(&s);
    }

    /// Escape round-trips through a text node.
    #[test]
    fn escape_roundtrip(t in arb_text()) {
        let e = Element::with_text("t", t.clone());
        let parsed = parse(&e.to_xml()).expect("escaped text parses");
        prop_assert_eq!(parsed.text(), t.trim());
    }
}
