//! `repro` — regenerate any table or figure of the paper's evaluation.
//!
//! ```text
//! repro <exhibit> [--small] [--nodes N] [--articles N] [--queries N]
//!                 [--seed N] [--csv DIR] [--jobs N] [--metrics FILE]
//!                 [--profile] [--allow-regression]
//! repro trace <query> [--small] [...]
//! repro serve [--substrate ring|chord|kademlia|pastry] [--port N]
//!             [--node-name NAME] [--loss F] [--fault-seed N]
//! repro net-demo --members HOST:PORT,... [--articles N] [--queries N]
//!                [--seed N] [--shutdown]
//! repro hotspot [--small] [--csv DIR] [--nodes N] [--articles N]
//!               [--queries N] [--seed N] [--hot-rank N] [--boost F]
//!               [--budget N] [--threshold N] [--fanout N]
//!
//! exhibits: fig7 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1 storage
//!           ext-structures ext-churn robustness bench trace all
//! ```
//!
//! Default scale is the paper's (500 nodes, 10 000 articles, 50 000
//! queries); `--small` runs a fast scaled-down version with the same
//! qualitative shapes.
//!
//! `--jobs N` runs independent simulation cells on up to `N` worker
//! threads (`0` = all cores, default `1`). Cell seeds are fixed per cell,
//! so the emitted tables and CSVs are byte-identical at any job count.
//!
//! `--metrics FILE` attaches the observability registry to every cell and
//! writes the per-cell counter/histogram snapshots as deterministic JSON —
//! identical at any `--jobs` count.
//!
//! `trace <query>` prepares the network, runs one automated search with
//! lookup tracing enabled, and pretty-prints the span tree: generalization
//! steps, index hops, per-hop DHT operations, cache probes.
//!
//! `bench` times one fixed cell, then sweeps the full figure grid over
//! `--jobs {1, 2, 4, 8}` and records the speedup curve in
//! `BENCH_results.json` next to the CSVs. Every timing is the median of 3
//! runs after a warmup pass. The bench defends itself: if any sweep point
//! that actually runs multiple workers is *slower* than serial, it exits
//! non-zero (opt out with `--allow-regression`). Sweep points whose worker
//! count clamps to 1 (host has one core, so the executor degenerates to
//! the serial path) are reported but exempt from the gate. It also
//! measures loopback RPC throughput/latency over real sockets (the `net`
//! section). `--profile` adds a per-phase breakdown of the reference cell
//! (corpus / publish / queries): wall-clock always, allocation counts when
//! the binary was built with `--features alloc-profile` (which swaps in a
//! counting global allocator).
//!
//! `serve` runs one networked DHT node (`dhtd`): a single-node substrate
//! partition behind the `crates/net` wire protocol, until it receives a
//! shutdown frame. `net-demo` is the matching client: it points the full
//! indexing stack at a running cluster over TCP. See the README's
//! networking quickstart for a 5-node loopback ring.
//!
//! `hotspot` runs the skewed-load scenario: a flash crowd on one title
//! over a 10 000-node ring, once with the balance subsystem observing
//! only and once mitigating (entry splitting + hot-key read fan-out),
//! plus a cache-admission comparison under tight LRU caches. It prints
//! the per-node imbalance tables, writes them as CSVs under `--csv DIR`,
//! and merges the numbers into `BENCH_results.json` in the same
//! directory under the `"hotspot"` key. Exits non-zero if the mitigation
//! makes the headline max/mean load ratio *worse* than baseline.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use p2p_index_core::CachePolicy;
use p2p_index_sim::exec::{effective_workers, resolve_jobs};
use p2p_index_sim::experiments::{self, EvalConfig, Evaluation};
use p2p_index_sim::hotspot::{self, HotspotConfig};
use p2p_index_sim::netd::{self, ServeOptions};
use p2p_index_sim::simulation::{SchemeChoice, SimConfig, Simulation};
use p2p_index_sim::table::TextTable;
use p2p_index_workload::Corpus;
use p2p_index_xpath::Query;

struct Args {
    exhibit: String,
    query: Option<String>,
    config: EvalConfig,
    csv_dir: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    jobs: usize,
    profile: bool,
    allow_regression: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let exhibit = args.next().ok_or_else(usage)?;
    let query = if exhibit == "trace" {
        Some(args.next().ok_or("trace needs a query argument")?)
    } else {
        None
    };
    let mut config = EvalConfig::paper();
    let mut csv_dir = None;
    let mut metrics_path = None;
    let mut jobs = 1usize;
    let mut profile = false;
    let mut allow_regression = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--small" => config = EvalConfig::small(),
            "--profile" => profile = true,
            "--allow-regression" => allow_regression = true,
            "--nodes" => config.nodes = parse_num(args.next(), "--nodes")?,
            "--articles" => config.articles = parse_num(args.next(), "--articles")?,
            "--queries" => config.queries = parse_num(args.next(), "--queries")?,
            "--seed" => config.seed = parse_num(args.next(), "--seed")? as u64,
            "--csv" => csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?)),
            "--metrics" => {
                metrics_path = Some(PathBuf::from(args.next().ok_or("--metrics needs a file")?))
            }
            "--jobs" => jobs = resolve_jobs(parse_num(args.next(), "--jobs")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        exhibit,
        query,
        config,
        csv_dir,
        metrics_path,
        jobs,
        profile,
        allow_regression,
    })
}

fn parse_num(value: Option<String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn usage() -> String {
    "usage: repro <fig7|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table1|storage|ext-structures|ext-churn|robustness|bench|all> \
     [--small] [--nodes N] [--articles N] [--queries N] [--seed N] [--csv DIR] [--jobs N] [--metrics FILE] [--profile] [--allow-regression]\n\
     \x20      repro trace <query> [--small] [--nodes N] [--articles N] [--seed N]\n\
     \x20      repro serve [--substrate ring|chord|kademlia|pastry] [--port N] [--node-name NAME] [--loss F] [--fault-seed N] \
     [--replicas R] [--quorum W,RQ] [--peers NAME=HOST:PORT,...] [--repair-ms N] [--shards N]\n\
     \x20      repro net-demo --members HOST:PORT,... [--articles N] [--queries N] [--seed N] [--replicas R] [--quorum W,RQ] [--shutdown]\n\
     \x20      repro hotspot [--small] [--csv DIR] [--nodes N] [--articles N] [--queries N] [--seed N] \
     [--hot-rank N] [--boost F] [--budget N] [--threshold N] [--fanout N]"
        .to_string()
}

/// Parses `repro serve` flags and runs the dhtd daemon until shutdown.
fn run_serve(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut opts = ServeOptions::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--substrate" => {
                opts.substrate = args.next().ok_or("--substrate needs a value")?;
            }
            "--port" => {
                opts.port = parse_num(args.next(), "--port")? as u16;
            }
            "--node-name" => {
                opts.node_name = args.next().ok_or("--node-name needs a value")?;
            }
            "--loss" => {
                opts.loss = args
                    .next()
                    .ok_or("--loss needs a value")?
                    .parse()
                    .map_err(|e| format!("--loss: {e}"))?;
            }
            "--fault-seed" => {
                opts.fault_seed = parse_num(args.next(), "--fault-seed")? as u64;
            }
            "--replicas" => {
                opts.replicas = parse_num(args.next(), "--replicas")?;
            }
            "--quorum" => {
                let (w, _rq) = parse_quorum(args.next())?;
                opts.write_quorum = w;
            }
            "--peers" => {
                for part in args.next().ok_or("--peers needs a list")?.split(',') {
                    let (name, addr) = part
                        .trim()
                        .split_once('=')
                        .ok_or_else(|| format!("--peers {part:?}: expected NAME=HOST:PORT"))?;
                    opts.peers.push((
                        name.to_string(),
                        addr.parse().map_err(|e| format!("--peers {part:?}: {e}"))?,
                    ));
                }
            }
            "--repair-ms" => {
                opts.repair_ms = parse_num(args.next(), "--repair-ms")? as u64;
            }
            "--shards" => {
                opts.shards = parse_num(args.next(), "--shards")?;
            }
            other => return Err(format!("unknown serve flag {other}\n{}", usage())),
        }
    }
    netd::serve(&opts)
}

/// Parses a `--quorum W,RQ` value into `(write_quorum, read_quorum)`.
/// A single number sets both.
fn parse_quorum(value: Option<String>) -> Result<(usize, usize), String> {
    let value = value.ok_or("--quorum needs a value (W,RQ)")?;
    let parse_one = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|e| format!("--quorum {s:?}: {e}"))
    };
    match value.split_once(',') {
        Some((w, rq)) => Ok((parse_one(w)?, parse_one(rq)?)),
        None => {
            let both = parse_one(&value)?;
            Ok((both, both))
        }
    }
}

/// Parses `repro net-demo` flags and drives a workload over the cluster.
fn run_net_demo(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut members: Vec<std::net::SocketAddr> = Vec::new();
    let mut articles = 60usize;
    let mut queries = 40usize;
    let mut seed = 42u64;
    let mut replicas = 1usize;
    let mut read_quorum = 1usize;
    let mut shutdown = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--members" => {
                for part in args.next().ok_or("--members needs a list")?.split(',') {
                    members.push(
                        part.trim()
                            .parse()
                            .map_err(|e| format!("--members {part:?}: {e}"))?,
                    );
                }
            }
            "--articles" => articles = parse_num(args.next(), "--articles")?,
            "--queries" => queries = parse_num(args.next(), "--queries")?,
            "--seed" => seed = parse_num(args.next(), "--seed")? as u64,
            "--replicas" => replicas = parse_num(args.next(), "--replicas")?,
            "--quorum" => {
                let (_w, rq) = parse_quorum(args.next())?;
                read_quorum = rq;
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown net-demo flag {other}\n{}", usage())),
        }
    }
    if members.is_empty() {
        return Err("net-demo needs --members HOST:PORT,...".to_string());
    }
    netd::net_demo(
        &members,
        articles,
        queries,
        seed,
        replicas,
        read_quorum,
        shutdown,
    )
}

/// Parses `repro hotspot` flags and runs the skewed-load scenario:
/// tables to stdout, CSVs under `--csv`, and the imbalance numbers
/// merged into `BENCH_results.json` under the `"hotspot"` key.
fn run_hotspot(mut args: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut config = HotspotConfig::paper();
    let mut csv_dir: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--small" => config = HotspotConfig::small(),
            "--nodes" => config.nodes = parse_num(args.next(), "--nodes")?,
            "--articles" => config.articles = parse_num(args.next(), "--articles")?,
            "--queries" => config.queries = parse_num(args.next(), "--queries")?,
            "--seed" => config.seed = parse_num(args.next(), "--seed")? as u64,
            "--hot-rank" => config.hot_rank = parse_num(args.next(), "--hot-rank")?,
            "--boost" => {
                config.boost = args
                    .next()
                    .ok_or("--boost needs a value")?
                    .parse()
                    .map_err(|e| format!("--boost: {e}"))?;
            }
            "--budget" => config.page_budget = parse_num(args.next(), "--budget")?,
            "--threshold" => config.hot_threshold = parse_num(args.next(), "--threshold")? as u64,
            "--fanout" => config.fanout = parse_num(args.next(), "--fanout")?,
            "--csv" => csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?)),
            other => return Err(format!("unknown hotspot flag {other}\n{}", usage())),
        }
    }
    let (w0, w1) = config.window_indices();
    eprintln!(
        "# hotspot: {} nodes, {} articles, {} queries (seed {}), crowd on rank {} \
         during queries {w0}..{w1} at boost {:.2}; mitigation budget {} B, \
         threshold {}, fanout {}",
        config.nodes,
        config.articles,
        config.queries,
        config.seed,
        config.hot_rank,
        config.boost,
        config.page_budget,
        config.hot_threshold,
        config.fanout
    );
    let report = hotspot::run(&config);
    emit(&report.imbalance_table(), &csv_dir, "hotspot");
    emit(&report.mitigation_table(), &csv_dir, "hotspot_mitigation");

    let dir = csv_dir.unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return Err(format!("cannot create {}: {e}", dir.display()));
    }
    let path = dir.join("BENCH_results.json");
    let existing = std::fs::read_to_string(&path).ok();
    let merged = hotspot::merge_bench_json(existing.as_deref(), &report.json_member());
    std::fs::write(&path, merged).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());

    eprintln!(
        "# ops max/mean: {:.2} baseline -> {:.2} mitigated ({} splits, {} promotions, \
         {} mirror reads)",
        report.baseline.ops.max_over_mean,
        report.mitigated.ops.max_over_mean,
        report.mitigated.splits,
        report.mitigated.promotions,
        report.mitigated.mirror_reads
    );
    if report.improved() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("# FAIL: mitigation worsened the max/mean load ratio");
        Ok(ExitCode::FAILURE)
    }
}

/// Writes the per-cell observability snapshots as one deterministic JSON
/// object keyed by `Scheme/policy`, in sorted key order.
fn write_metrics(eval: &Evaluation, path: &Path) {
    let cells = eval.metrics_snapshots();
    let mut json = String::from("{");
    for (i, (label, snap)) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n  \"{label}\": {}",
            snap.to_json().replace('\n', "\n  ")
        ));
    }
    json.push_str("\n}\n");
    match write_creating_parent(path, &json) {
        Ok(()) => eprintln!("wrote {} ({} cells)", path.display(), cells.len()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// `fs::write`, creating the file's parent directory first so `--metrics
/// results/metrics.json` works before any CSV has created `results/`.
fn write_creating_parent(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)
}

/// The `trace` sub-command: publish the corpus, then run one automated
/// search with lookup tracing on and pretty-print the span tree.
fn trace(cfg: &EvalConfig, query_text: &str) -> ExitCode {
    let query: Query = match query_text.parse() {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse query {query_text:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sim = Simulation::prepare(SimConfig {
        queries: 0,
        collect_metrics: true,
        ..cfg.sim(SchemeChoice::Simple, CachePolicy::Single)
    });
    let service = sim.service_mut();
    service.start_trace(format!(
        "trace: simple scheme, single-cache, {} nodes, {} articles",
        cfg.nodes, cfg.articles
    ));
    let result = service.search(&query);
    let trace = service.finish_trace().expect("trace was started");
    print!("{}", trace.render());
    match result {
        Ok(report) => {
            println!(
                "\n{} file(s), {} interaction(s), {} generalization step(s)",
                report.files.len(),
                report.interactions,
                report.generalization_steps
            );
            for hit in &report.files {
                println!("  {} <- {}", hit.file, hit.msd);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("search failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn emit(table: &TextTable, csv_dir: &Option<PathBuf>, name: &str) {
    print!("{}", table.to_text());
    println!();
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Median of three timed runs of `f` (not counting any caller warmup).
fn median_of_3(mut f: impl FnMut()) -> f64 {
    let mut times = [0.0f64; 3];
    for slot in &mut times {
        let started = Instant::now();
        f();
        *slot = started.elapsed().as_secs_f64();
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    times[1]
}

/// The `--jobs` values the bench sweeps the grid over.
const SWEEP_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Allocation counters since process start: `(allocations, bytes)`.
/// `None` unless the binary was built with `--features alloc-profile`.
fn alloc_counts() -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-profile")]
    {
        Some(alloc_profile::counts())
    }
    #[cfg(not(feature = "alloc-profile"))]
    {
        None
    }
}

/// Runs one profiled phase: wall-clock always, allocation deltas when the
/// counting allocator is compiled in.
fn timed_phase<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, ProfilePhase) {
    let before = alloc_counts();
    let started = Instant::now();
    let out = f();
    let secs = started.elapsed().as_secs_f64();
    let allocs = match (before, alloc_counts()) {
        (Some((a0, b0)), Some((a1, b1))) => Some((a1 - a0, b1 - b0)),
        _ => None,
    };
    (out, ProfilePhase { name, secs, allocs })
}

struct ProfilePhase {
    name: &'static str,
    secs: f64,
    /// `(allocations, bytes)` during the phase, when counted.
    allocs: Option<(u64, u64)>,
}

impl ProfilePhase {
    fn report(&self) -> String {
        match self.allocs {
            Some((n, bytes)) => format!(
                "# profile {}: {:.3} s, {} allocs, {:.1} MB allocated",
                self.name,
                self.secs,
                n,
                bytes as f64 / (1024.0 * 1024.0)
            ),
            None => format!(
                "# profile {}: {:.3} s (allocation counts need a build with \
                 --features alloc-profile)",
                self.name, self.secs
            ),
        }
    }

    fn json(&self) -> String {
        let allocs = match self.allocs {
            Some((n, bytes)) => format!(", \"allocations\": {n}, \"bytes_allocated\": {bytes}"),
            None => String::new(),
        };
        format!(
            "{{ \"phase\": \"{}\", \"wall_clock_s\": {:.6}{allocs} }}",
            self.name, self.secs
        )
    }
}

/// `--profile`: break the reference cell into its three phases — corpus
/// synthesis, publish (index construction), query workload — and report
/// wall-clock plus allocation counts for each, so the next bottleneck is
/// measured instead of guessed.
fn profile_cell(cfg: &EvalConfig) -> Vec<ProfilePhase> {
    let config = cfg.sim(SchemeChoice::Simple, CachePolicy::Single);
    let (corpus, corpus_phase) = timed_phase("corpus", || {
        Arc::new(Corpus::generate(Simulation::corpus_config(&config)))
    });
    let (sim, publish_phase) = timed_phase("publish", || {
        Simulation::prepare_with_corpus(config, corpus)
    });
    let (_, queries_phase) = timed_phase("queries", || {
        let mut sim = sim;
        sim.execute()
    });
    let phases = vec![corpus_phase, publish_phase, queries_phase];
    for phase in &phases {
        eprintln!("{}", phase.report());
    }
    phases
}

/// One point of the grid's jobs sweep.
struct SweepPoint {
    jobs: usize,
    /// Worker threads the executor actually ran (`--jobs` clamped to the
    /// host's cores and the cell count).
    workers: usize,
    secs: f64,
    speedup: f64,
}

/// The `bench` sub-command: time one fixed cell, sweep the full figure
/// grid over `--jobs {1,2,4,8}`, print the speedup curve, and record it
/// all in `BENCH_results.json`. Each timing is the median of 3 runs; a
/// warmup pass (untimed) precedes them so page-cache and allocator effects
/// don't land in the first sample.
///
/// Exits non-zero when any sweep point that ran with real parallelism
/// (workers > 1) is slower than serial, unless `--allow-regression` was
/// given. Points clamped to one worker execute the identical serial code
/// path, so their "speedup" is pure timer noise and is exempt.
fn bench(
    cfg: &EvalConfig,
    jobs: usize,
    csv_dir: &Option<PathBuf>,
    metrics_path: &Option<PathBuf>,
    profile: bool,
    allow_regression: bool,
) -> ExitCode {
    // Warmup pass over the fixed reference cell (simple scheme,
    // single-cache policy); doubles as the observability sample when
    // `--metrics` asks for one.
    let (metrics, snapshot) = Simulation::run_with_snapshot(SimConfig {
        collect_metrics: metrics_path.is_some(),
        ..cfg.sim(SchemeChoice::Simple, CachePolicy::Single)
    });
    if let (Some(path), Some(snap)) = (metrics_path, snapshot) {
        let json = format!(
            "{{\n  \"Simple/single-cache\": {}\n}}\n",
            snap.to_json().replace('\n', "\n  ")
        );
        match write_creating_parent(path, &json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }

    let cell_secs = median_of_3(|| {
        Simulation::run(cfg.sim(SchemeChoice::Simple, CachePolicy::Single));
    });
    let queries_per_sec = cfg.queries as f64 / cell_secs.max(1e-9);
    eprintln!(
        "# cell simple/single-cache: median {cell_secs:.3} s, {queries_per_sec:.0} queries/s \
         ({:.2} interactions/query)",
        metrics.mean_interactions()
    );

    let phases = if profile {
        profile_cell(cfg)
    } else {
        Vec::new()
    };

    // The full scheme × policy grid swept over the jobs ladder (fresh
    // evaluations per run, so every run does all the work). An explicit
    // `--jobs` value outside the ladder is swept too.
    let grid = experiments::paper_grid();
    let mut sweep_jobs: Vec<usize> = SWEEP_JOBS.to_vec();
    if jobs > 1 && !sweep_jobs.contains(&jobs) {
        sweep_jobs.push(jobs);
        sweep_jobs.sort_unstable();
    }
    let mut sweep: Vec<SweepPoint> = Vec::with_capacity(sweep_jobs.len());
    for &j in &sweep_jobs {
        let secs = median_of_3(|| {
            Evaluation::new(*cfg).run_cells(&grid, j);
        });
        sweep.push(SweepPoint {
            jobs: j,
            workers: effective_workers(j, grid.len()),
            secs,
            speedup: 1.0,
        });
    }
    let serial_secs = sweep[0].secs;
    let mut regressed: Vec<String> = Vec::new();
    for point in &mut sweep {
        point.speedup = serial_secs / point.secs.max(1e-9);
        let note = if point.jobs > 1 && point.workers == 1 {
            " (clamped to 1 worker on this host: serial code path, exempt from the gate)"
        } else {
            ""
        };
        eprintln!(
            "# grid ({} cells) --jobs {}: {} worker(s), median {:.3} s, speedup {:.2}x{note}",
            grid.len(),
            point.jobs,
            point.workers,
            point.secs,
            point.speedup
        );
        if point.workers > 1 && point.speedup < 1.0 {
            regressed.push(format!(
                "--jobs {} ({} workers) ran {:.3} s vs {:.3} s serial ({:.2}x)",
                point.jobs, point.workers, point.secs, serial_secs, point.speedup
            ));
        }
    }
    for line in &regressed {
        eprintln!("# REGRESSION: parallel grid slower than serial: {line}");
    }

    // Loopback RPC micro-bench: real sockets, single-node server, get and
    // put at 1 and 8 client threads (median of 3 samples per cell), plus
    // the sharded-vs-single-lock thread sweep, which gates the same way
    // the grid sweep does.
    let (net_json, net_regressed) = netd::net_bench();

    let sweep_json = sweep
        .iter()
        .map(|p| {
            format!(
                "{{ \"jobs\": {}, \"workers\": {}, \"wall_clock_s\": {:.6}, \"speedup\": {:.3} }}",
                p.jobs, p.workers, p.secs, p.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n                 ");
    let profile_json = if phases.is_empty() {
        String::new()
    } else {
        format!(
            ",\n  \"profile\": [ {} ]",
            phases
                .iter()
                .map(ProfilePhase::json)
                .collect::<Vec<_>>()
                .join(",\n               ")
        )
    };
    let json = format!(
        "{{\n  \"config\": {{ \"nodes\": {}, \"articles\": {}, \"queries\": {}, \"seed\": {} }},\n  \
           \"timing\": {{ \"warmup_runs\": 1, \"samples\": 3, \"statistic\": \"median\" }},\n  \
           \"cell\": {{ \"scheme\": \"simple\", \"policy\": \"single-cache\", \
                        \"wall_clock_s\": {cell_secs:.6}, \"queries_per_sec\": {queries_per_sec:.1} }},\n  \
           \"grid\": {{ \"cells\": {}, \"serial_s\": {serial_secs:.6}, \"available_cores\": {}, \
                        \"regressed\": {},\n       \"sweep\": [ {sweep_json} ] }}{profile_json},\n  \
           \"net\": {net_json}\n}}\n",
        cfg.nodes,
        cfg.articles,
        cfg.queries,
        cfg.seed,
        grid.len(),
        p2p_index_sim::exec::available_cores(),
        !regressed.is_empty(),
    );
    let dir = csv_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = dir.join("BENCH_results.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
    if !regressed.is_empty() && !allow_regression {
        eprintln!(
            "# FAIL: the parallel grid regressed against serial (see REGRESSION lines above); \
             pass --allow-regression to record the numbers anyway"
        );
        return ExitCode::FAILURE;
    }
    if net_regressed && !allow_regression {
        eprintln!(
            "# FAIL: the sharded server fell below the noise margin against its single-lock \
             twin (see REGRESSED cells above); pass --allow-regression to record the numbers \
             anyway"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A counting wrapper around the system allocator, compiled in only with
/// `--features alloc-profile`. Counts are process-global and monotonic;
/// `bench --profile` reads deltas around each phase. Frees are not
/// tracked — the profile's question is "how much does this phase
/// allocate", not "what does it retain".
#[cfg(feature = "alloc-profile")]
mod alloc_profile {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// `(allocations, bytes)` since process start.
    pub fn counts() -> (u64, u64) {
        (
            ALLOCATIONS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;
}

fn main() -> ExitCode {
    // The networking subcommands have their own flag sets; dispatch them
    // before the exhibit parser sees (and rejects) their flags.
    let first = std::env::args().nth(1);
    if matches!(first.as_deref(), Some("serve") | Some("net-demo")) {
        let rest = std::env::args().skip(2);
        let result = match first.as_deref() {
            Some("serve") => run_serve(rest),
            _ => run_net_demo(rest),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if first.as_deref() == Some("hotspot") {
        return match run_hotspot(std::env::args().skip(2)) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = args.config;
    let jobs = args.jobs;
    eprintln!(
        "# scale: {} nodes, {} articles, {} queries (seed {}, {} jobs)",
        cfg.nodes, cfg.articles, cfg.queries, cfg.seed, jobs
    );
    if args.exhibit == "trace" {
        let query = args.query.as_deref().expect("parse_args requires it");
        return trace(&cfg, query);
    }
    if args.exhibit == "bench" {
        return bench(
            &cfg,
            jobs,
            &args.csv_dir,
            &args.metrics_path,
            args.profile,
            args.allow_regression,
        );
    }
    let mut eval = Evaluation::new(cfg);
    eval.set_collect_metrics(args.metrics_path.is_some());
    let csv = &args.csv_dir;
    let metrics_path = &args.metrics_path;

    let run = |name: &str, eval: &mut Evaluation| -> bool {
        // Pre-run the cells this exhibit needs across the worker pool; the
        // renderer below then recalls memoized results in canonical order.
        eval.run_cells(&experiments::grid_cells_for(name), jobs);
        match name {
            "fig7" => emit(&experiments::fig7_query_mix(), csv, "fig7"),
            "fig9" => emit(&experiments::fig9_popularity(), csv, "fig9"),
            "fig10" => emit(&experiments::fig10_ccdf(), csv, "fig10"),
            "fig11" => emit(&experiments::fig11_interactions(eval), csv, "fig11"),
            "fig12" => emit(&experiments::fig12_traffic(eval), csv, "fig12"),
            "fig13" => emit(&experiments::fig13_hit_ratio(eval), csv, "fig13"),
            "fig14" => emit(&experiments::fig14_cache_storage(eval), csv, "fig14"),
            "fig15" => emit(&experiments::fig15_hotspots(eval), csv, "fig15"),
            "table1" => emit(&experiments::table1_errors(eval), csv, "table1"),
            "storage" => emit(&experiments::storage_overhead(&cfg), csv, "storage"),
            "ext-structures" => emit(
                &experiments::ext_structure_breakdown(eval),
                csv,
                "ext_structures",
            ),
            "ext-churn" => emit(&experiments::ext_churn(&cfg), csv, "ext_churn"),
            // Deliberately not part of "all": the loss × budget sweep
            // re-publishes the corpus per cell, and "all" stays the exact
            // paper reproduction (faults are an extension).
            "robustness" => emit(
                &experiments::ext_robustness(&cfg, jobs),
                csv,
                "ext_robustness",
            ),
            _ => return false,
        }
        true
    };

    if args.exhibit == "all" {
        // Pre-run the whole scheme × policy grid across the worker pool;
        // the per-figure renderers below then recall memoized cells, so
        // their output is byte-identical to a serial run.
        eval.run_cells(&experiments::paper_grid(), jobs);
        for name in [
            "fig7",
            "fig9",
            "fig10",
            "storage",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "table1",
            "ext-structures",
            "ext-churn",
        ] {
            run(name, &mut eval);
        }
        if let Some(path) = metrics_path {
            write_metrics(&eval, path);
        }
        ExitCode::SUCCESS
    } else if run(&args.exhibit.clone(), &mut eval) {
        if let Some(path) = metrics_path {
            write_metrics(&eval, path);
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown exhibit {:?}\n{}", args.exhibit, usage());
        ExitCode::FAILURE
    }
}
