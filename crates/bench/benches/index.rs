//! Micro-benchmarks of the index layer: publishing, lookup steps, full
//! searches per scheme, and shortcut-cache operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_index_core::{
    CachePolicy, ComplexScheme, FlatScheme, IndexScheme, IndexService, IndexTarget, ShortcutCache,
    SimpleScheme,
};
use p2p_index_dht::RingDht;
use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};
use p2p_index_xpath::Query;
use std::hint::black_box;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        articles: 500,
        author_pool: 125,
        ..CorpusConfig::default()
    })
}

fn service_with(corpus: &Corpus, scheme: &dyn IndexScheme) -> IndexService<RingDht> {
    let mut s = IndexService::new(RingDht::with_named_nodes(100), CachePolicy::None);
    for a in corpus.articles() {
        s.publish(&a.descriptor(), a.file_name(), scheme)
            .expect("publish succeeds");
    }
    s
}

fn bench_publish(c: &mut Criterion) {
    let corpus = corpus();
    let mut g = c.benchmark_group("index/publish_article");
    for (name, scheme) in [
        ("simple", &SimpleScheme as &dyn IndexScheme),
        ("flat", &FlatScheme),
        ("complex", &ComplexScheme),
    ] {
        g.bench_function(name, |b| {
            let mut s = IndexService::new(RingDht::with_named_nodes(100), CachePolicy::None);
            let mut i = 0usize;
            b.iter(|| {
                let article = &corpus.articles()[i % corpus.len()];
                i += 1;
                s.publish(
                    &article.descriptor(),
                    format!("{}-{i}", article.file_name()),
                    scheme,
                )
                .expect("publish succeeds")
            })
        });
    }
    g.finish();
}

fn bench_lookup_step(c: &mut Criterion) {
    let corpus = corpus();
    let mut s = service_with(&corpus, &SimpleScheme);
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 1);
    let queries: Vec<Query> = (0..256).map(|_| generator.next_query().query).collect();
    c.bench_function("index/lookup_step", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            s.lookup_step(black_box(&queries[i % queries.len()]))
                .expect("lookup succeeds")
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let corpus = corpus();
    let mut g = c.benchmark_group("index/search_author_query");
    for (name, scheme) in [
        ("simple", &SimpleScheme as &dyn IndexScheme),
        ("flat", &FlatScheme),
        ("complex", &ComplexScheme),
    ] {
        let mut s = service_with(&corpus, scheme);
        let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 2);
        let queries: Vec<Query> = (0..128).map(|_| generator.next_query().query).collect();
        g.bench_with_input(BenchmarkId::from_parameter(name), &queries, |b, queries| {
            let mut i = 0usize;
            b.iter(|| {
                i = i.wrapping_add(1);
                s.search(black_box(&queries[i % queries.len()]))
                    .expect("search succeeds")
            })
        });
    }
    g.finish();
}

fn bench_generalization_search(c: &mut Criterion) {
    // Author+year queries are never indexed: the search exercises the
    // generalize-then-specialize path.
    let corpus = corpus();
    let mut s = service_with(&corpus, &SimpleScheme);
    let queries: Vec<Query> = corpus.articles()[..64]
        .iter()
        .map(|a| p2p_index_workload::QueryStructure::AuthorYear.query_for(a))
        .collect();
    c.bench_function("index/search_non_indexed_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            s.search(black_box(&queries[i % queries.len()]))
                .expect("search succeeds")
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    // The cache is keyed by the query's memoized DHT key (20-byte `Copy`),
    // so steady-state probes touch no query clones or string rendering.
    let keys: Vec<p2p_index_dht::Key> = (0..1000)
        .map(|i| {
            let q: Query = format!("/article/title/T{i}").parse().expect("valid query");
            p2p_index_dht::Key::hash_of(q.canonical_text())
        })
        .collect();
    c.bench_function("cache/lru30_insert_evict", |b| {
        let mut cache = ShortcutCache::with_capacity(30);
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.insert(keys[i % keys.len()], IndexTarget::File("f".into()))
        })
    });
    c.bench_function("cache/hit", |b| {
        let mut cache = ShortcutCache::new();
        for k in &keys {
            cache.insert(*k, IndexTarget::File("f".into()));
        }
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.get(&keys[i % keys.len()]).is_some()
        })
    });
}

criterion_group!(
    benches,
    bench_publish,
    bench_lookup_step,
    bench_search,
    bench_generalization_search,
    bench_cache,
);
criterion_main!(benches);
