//! Fuzzy query matching: absorbing misspellings before lookup.
//!
//! The paper's conclusion (§VI) singles this out as the natural next step:
//! indexes "still depend on the exact matching facilities of the underlying
//! DHT", and "misspellings can often be taken care of by validating
//! descriptors and queries against databases that store known file
//! descriptors, such as CDDB for music files".
//!
//! [`FuzzyCorrector`] is that validation database: it learns the value
//! vocabulary of published descriptors per element path, and rewrites query
//! values whose best vocabulary match is within a bounded edit distance —
//! so `/article/author/last/Smiht` becomes `/article/author/last/Smith`
//! *before* it is hashed into the DHT, where exact matching takes over.

use std::collections::HashMap;

use p2p_index_xmldoc::{Descriptor, Element};
use p2p_index_xpath::Query;

/// Levenshtein edit distance (insertions, deletions, substitutions), over
/// Unicode scalar values.
///
/// Classic two-row dynamic program; `O(|a|·|b|)` time, `O(min)` memory.
///
/// # Examples
///
/// ```
/// use p2p_index_core::fuzzy::levenshtein;
///
/// assert_eq!(levenshtein("Smith", "Smith"), 0);
/// assert_eq!(levenshtein("Smith", "Smiht"), 2); // transposition = 2 edits
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// A per-field vocabulary of known descriptor values, used to correct
/// misspelled query values.
///
/// # Examples
///
/// ```
/// use p2p_index_core::FuzzyCorrector;
/// use p2p_index_xmldoc::Descriptor;
/// use p2p_index_xpath::Query;
///
/// let mut corrector = FuzzyCorrector::new(2);
/// let d = Descriptor::parse(
///     "<article><author><first>John</first><last>Smith</last></author>\
///      <title>TCP</title></article>",
/// )?;
/// corrector.learn_descriptor(&d);
///
/// let typo: Query = "/article/author/last/Smiht".parse()?;
/// let fixed = corrector.correct_query(&typo);
/// assert_eq!(fixed.to_string(), "/article/author/last/Smith");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyCorrector {
    /// Element path (joined with `/`) → known values.
    vocabulary: HashMap<String, Vec<String>>,
    max_distance: usize,
}

impl FuzzyCorrector {
    /// A corrector accepting corrections up to `max_distance` edits.
    ///
    /// Distance 2 is a good default: it absorbs transpositions and single
    /// typos without conflating genuinely different names.
    pub fn new(max_distance: usize) -> FuzzyCorrector {
        FuzzyCorrector {
            vocabulary: HashMap::new(),
            max_distance,
        }
    }

    /// Learns one `(path, value)` pair, e.g.
    /// `("article/author/last", "Smith")`.
    pub fn learn(&mut self, path: impl Into<String>, value: impl Into<String>) {
        let value = value.into();
        if value.is_empty() {
            return;
        }
        let values = self.vocabulary.entry(path.into()).or_default();
        if !values.contains(&value) {
            values.push(value);
        }
    }

    /// Learns every `(element path, text)` pair of a descriptor. Call this
    /// for each published file to build the validation database.
    pub fn learn_descriptor(&mut self, descriptor: &Descriptor) {
        fn walk(corrector: &mut FuzzyCorrector, element: &Element, path: &mut Vec<String>) {
            path.push(element.name().to_string());
            let text = element.text();
            if !text.is_empty() {
                corrector.learn(path.join("/"), text);
            }
            for child in element.child_elements() {
                walk(corrector, child, path);
            }
            path.pop();
        }
        let mut path = Vec::new();
        walk(self, descriptor.root(), &mut path);
    }

    /// Number of distinct `(path, value)` pairs learned.
    pub fn len(&self) -> usize {
        self.vocabulary.values().map(Vec::len).sum()
    }

    /// `true` if nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.vocabulary.is_empty()
    }

    /// The best correction for `value` at `path`, if one is needed and
    /// available: returns `None` when the value is already known, when the
    /// path has no vocabulary, or when no known value is within the edit
    /// bound. Ties resolve to the lexicographically smallest candidate.
    pub fn correct(&self, path: &str, value: &str) -> Option<&str> {
        let values = self.vocabulary.get(path)?;
        if values.iter().any(|v| v == value) {
            return None;
        }
        values
            .iter()
            .map(|v| (levenshtein(v, value), v))
            .filter(|(d, _)| *d <= self.max_distance)
            .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)))
            .map(|(_, v)| v.as_str())
    }

    /// Rewrites every correctable value of `query` (leaf steps and
    /// comparison operands); unknown or already-correct values stay.
    #[must_use]
    pub fn correct_query(&self, query: &Query) -> Query {
        query.map_values(|path, value| self.correct(&path.join("/"), value).map(str::to_string))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzyCorrector {
        let mut c = FuzzyCorrector::new(2);
        let d = Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
        )
        .unwrap();
        c.learn_descriptor(&d);
        c
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("Smith", "Smyth"), 1);
        // Unicode-aware: one scalar substitution.
        assert_eq!(levenshtein("naïve", "naive"), 1);
    }

    #[test]
    fn learns_descriptor_vocabulary() {
        let c = sample();
        assert!(!c.is_empty());
        assert_eq!(c.len(), 5); // first, last, title, conf, year
        assert_eq!(c.correct("article/author/last", "Smith"), None); // exact
        assert_eq!(c.correct("article/author/last", "Smiht"), Some("Smith"));
        assert_eq!(c.correct("article/conf", "SIGCOM"), Some("SIGCOMM"));
    }

    #[test]
    fn respects_distance_bound() {
        let c = sample();
        assert_eq!(c.correct("article/author/last", "Smithsonian"), None);
        let strict = FuzzyCorrector::new(0);
        assert_eq!(strict.correct("article/title", "TPC"), None);
    }

    #[test]
    fn unknown_path_is_untouched() {
        let c = sample();
        assert_eq!(c.correct("article/publisher", "ACM"), None);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let mut c = FuzzyCorrector::new(2);
        c.learn("f", "aab");
        c.learn("f", "aac");
        // "aad" is distance 1 from both; lexicographically smallest wins.
        assert_eq!(c.correct("f", "aad"), Some("aab"));
    }

    #[test]
    fn correct_query_rewrites_misspellings() {
        let c = sample();
        let q: Query = "/article[author[first/Jonh][last/Smiht]][conf/SIGCOM]"
            .parse()
            .unwrap();
        let fixed = c.correct_query(&q);
        assert_eq!(
            fixed.to_string(),
            "/article[author[first/John][last/Smith]][conf/SIGCOMM]"
        );
    }

    #[test]
    fn correct_query_leaves_good_queries_alone() {
        let c = sample();
        let q: Query = "/article[title/TCP][year/1989]".parse().unwrap();
        assert_eq!(c.correct_query(&q), q);
    }

    #[test]
    fn correct_query_handles_comparisons() {
        let c = sample();
        let q: Query = "/article[conf=SIGCOM]".parse().unwrap();
        assert_eq!(c.correct_query(&q).to_string(), "/article[conf=SIGCOMM]");
    }

    #[test]
    fn empty_values_are_not_learned() {
        let mut c = FuzzyCorrector::new(2);
        c.learn("p", "");
        assert!(c.is_empty());
    }
}
