//! A minimal work-queue executor for embarrassingly-parallel experiment
//! grids.
//!
//! The evaluation's scheme × policy cells (and the robustness sweep's
//! loss × budget cells) are independent simulations: each is a pure
//! function of its own config and seeds. [`parallel_map`] fans such cells
//! out over scoped worker threads (`std::thread::scope`, no dependencies)
//! and reassembles the results **in input order**, so any output rendered
//! from them — notably the paper CSVs — is byte-identical to a serial run.
//!
//! Scheduling is a shared atomic cursor over the item slice: workers pull
//! the next un-started index until the queue drains. Panics inside a
//! worker are propagated to the caller after all threads have joined.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item, running up to `jobs` items concurrently, and
/// returns the results in the order of `items`.
///
/// `jobs <= 1` runs strictly serially on the calling thread (no threads
/// are spawned), which is also the fallback for empty input. The mapping
/// must be a pure function of the item for the parallel and serial
/// schedules to agree — which is exactly the determinism contract the
/// experiment grids rely on.
///
/// # Panics
///
/// Re-raises the first panic observed in a worker once every worker has
/// finished.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let panicked = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else {
                        return;
                    };
                    let r = f(item);
                    results.lock().expect("result sink poisoned").push((i, r));
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            if let Err(p) = h.join() {
                panicked.get_or_insert(p);
            }
        }
        panicked
    });
    if let Some(p) = panicked {
        panic::resume_unwind(p);
    }
    let mut results = results.into_inner().expect("result sink poisoned");
    results.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(results.len(), items.len());
    results.into_iter().map(|(_, r)| r).collect()
}

/// The number of worker threads a `--jobs` value selects: `0` means "use
/// every available core", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 4, 9] {
            let out = parallel_map(&items, jobs, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        assert_eq!(parallel_map(&items, 1, f), parallel_map(&items, 4, f));
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 100, |&x| x * x), vec![1, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        parallel_map(&items, 3, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn resolve_jobs_maps_zero_to_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
