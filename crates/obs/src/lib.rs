//! Deterministic observability for the p2p-index system.
//!
//! Two primitives, zero dependencies:
//!
//! * [`MetricsRegistry`] — named counters and fixed-bucket histograms
//!   behind an `Arc`-shareable handle. The default handle is
//!   **disabled** and every recording call on it is a no-op `Option`
//!   check, so instrumented code pays nothing until somebody turns
//!   metrics on. [`MetricsRegistry::snapshot`] freezes the state into a
//!   sorted, comparable [`MetricsSnapshot`] with JSON/CSV renderings.
//! * [`Trace`] / [`TraceRecorder`] — a span tree recording one
//!   operation end-to-end (generalization steps, index hops, per-hop
//!   DHT ops, retries, cache probes), with a deterministic
//!   pretty-printer behind `repro trace <query>`.
//!
//! Plus one derived statistic: [`ImbalanceSummary`], which reduces a
//! per-node load vector to max/mean, Gini, and top-k numbers for the
//! hot-spot exhibits.
//!
//! Everything here is deterministic by construction: no clocks, no
//! thread ids, ordered maps only. Equal executions produce byte-equal
//! snapshots and traces, which is what lets the simulator emit metrics
//! from a parallel work queue and still be byte-identical at any
//! `--jobs N`, and what turns metrics into executable invariants in
//! `tests/invariants.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod registry;
pub mod trace;

pub use load::ImbalanceSummary;
pub use registry::{Histogram, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS, BUCKET_COUNT};
pub use trace::{Span, SpanItem, Trace, TraceRecorder};
