//! Plain-text table and CSV rendering for experiment reports.
//!
//! Every experiment renders through [`TextTable`] so the `repro` binary and
//! the benches print the same rows the paper's figures plot, plus a CSV
//! form for external plotting.

use std::fmt::Write as _;

/// A simple aligned text table with a title.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> TextTable {
        TextTable {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn header<S: Into<String>>(&mut self, columns: impl IntoIterator<Item = S>) -> &mut Self {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", render_row(&self.header, &widths));
            let _ = writeln!(
                out,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("-+-")
            );
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders the CSV form (header + rows, comma-separated, quoted as
    /// needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", csv_row(&self.header));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_row(row));
        }
        out
    }
}

fn render_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "{:<width$}",
                c,
                width = widths.get(i).copied().unwrap_or(c.len())
            )
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a float with `digits` decimals.
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new("Demo");
        t.header(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["beta, with comma", "2"]);
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("name"));
        assert!(text.contains("alpha"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator, two rows, title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"beta, with comma\""));
        assert!(csv.starts_with("name,value"));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = TextTable::new("q");
        t.row(["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.756), "75.6%");
        assert!(!sample().is_empty());
        assert_eq!(sample().len(), 2);
        assert_eq!(sample().title(), "Demo");
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = TextTable::new("r");
        t.header(["a"]);
        t.row(["1", "2", "3"]);
        let text = t.to_text();
        assert!(text.contains('3'));
    }
}
