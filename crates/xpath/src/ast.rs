//! The query AST: normalized tree patterns.
//!
//! A query in the paper's XPath subset — location steps, predicates,
//! wildcard `*`, descendant `//`, and value comparisons — is represented as
//! a *tree pattern*: a rooted tree of [`Pattern`] nodes where the syntactic
//! distinction between a path continuation (`/article/title/TCP`) and a
//! predicate (`/article[title/TCP]`) disappears. Boolean matching semantics
//! make the two forms equivalent, so collapsing them (plus sorting and
//! deduplicating branches) yields the "unique normalized format" the paper
//! requires before hashing queries into the DHT key space (footnote 1,
//! §III-B).
//!
//! [`Query`] wraps a normalized root pattern; its `Display` output *is* the
//! canonical text, so `Key::hash_of(&query.to_string())` is well-defined.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// How a pattern node relates to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Direct child (`/`).
    Child,
    /// Any strict descendant (`//`).
    Descendant,
}

/// What names a pattern node accepts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NameTest {
    /// An exact element name — or, for leaf nodes, an exact text value
    /// (the paper's simplified syntax writes values as final steps, e.g.
    /// `/article/title/TCP`).
    Name(String),
    /// The wildcard `*`: any element name.
    Wildcard,
}

impl NameTest {
    /// Does this test accept element name `name`?
    pub fn accepts(&self, name: &str) -> bool {
        match self {
            NameTest::Name(n) => n == name,
            NameTest::Wildcard => true,
        }
    }
}

/// Comparison operators usable in predicates (`[year>=1990]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `^=` — string prefix test (`[author/last^=S]` selects last names
    /// starting with "S"; the initial-letter indexes of §IV-C).
    StartsWith,
    /// `*=` — substring test (`[title*=Routing]` selects titles containing
    /// "Routing"; enables the keyword indexes sketched in the related-work
    /// discussion of splitting query strings).
    Contains,
}

impl CmpOp {
    /// The operator's surface syntax.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::StartsWith => "^=",
            CmpOp::Contains => "*=",
        }
    }

    /// Evaluates `left OP right`.
    ///
    /// If both operands parse as numbers the comparison is numeric (so
    /// `"0100" = "100"` and `"9" < "10"`); otherwise it is lexicographic on
    /// the raw strings.
    pub fn eval(&self, left: &str, right: &str) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::StartsWith => return left.starts_with(right),
            CmpOp::Contains => return left.contains(right),
            _ => {}
        }
        let ord = match (left.trim().parse::<f64>(), right.trim().parse::<f64>()) {
            (Ok(l), Ok(r)) => l.partial_cmp(&r),
            _ => Some(left.cmp(right)),
        };
        let Some(ord) = ord else { return false };
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::StartsWith | CmpOp::Contains => unreachable!("handled above"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A value comparison attached to a pattern node, constraining the text
/// content of the matched element.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Comparison {
    /// The operator.
    pub op: CmpOp,
    /// The constant right-hand side.
    pub value: String,
}

/// One node of a tree pattern.
///
/// Constructed through [`Query`] /
/// [`QueryBuilder`](crate::QueryBuilder) / the parser; fields stay private
/// so every externally visible pattern is normalized.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pattern {
    pub(crate) axis: Axis,
    pub(crate) test: NameTest,
    pub(crate) comparison: Option<Comparison>,
    pub(crate) children: Vec<Pattern>,
}

impl Pattern {
    /// Creates a leaf pattern node.
    pub(crate) fn leaf(axis: Axis, test: NameTest) -> Pattern {
        Pattern {
            axis,
            test,
            comparison: None,
            children: Vec::new(),
        }
    }

    /// The edge type from this node's parent.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The node's name test.
    pub fn test(&self) -> &NameTest {
        &self.test
    }

    /// The comparison constraining the matched element's text, if any.
    pub fn comparison(&self) -> Option<&Comparison> {
        self.comparison.as_ref()
    }

    /// Child pattern nodes (normalized order).
    pub fn children(&self) -> &[Pattern] {
        &self.children
    }

    /// True when the node constrains nothing below itself: a pure
    /// name/value leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty() && self.comparison.is_none()
    }

    /// Sorts and deduplicates the subtree, in place.
    pub(crate) fn normalize(&mut self) {
        for c in &mut self.children {
            c.normalize();
        }
        self.children.sort();
        self.children.dedup();
    }

    /// Number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Pattern::size).sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Pattern::depth).max().unwrap_or(0)
    }

    /// All strict descendants of this node, pre-order.
    pub(crate) fn descendants(&self) -> Vec<&Pattern> {
        let mut out = Vec::new();
        let mut stack: Vec<&Pattern> = self.children.iter().collect();
        while let Some(p) = stack.pop() {
            out.push(p);
            stack.extend(p.children.iter());
        }
        out
    }

    fn write_name(test: &NameTest, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match test {
            NameTest::Wildcard => out.write_str("*"),
            NameTest::Name(n) => {
                if needs_quoting(n) {
                    write!(out, "\"{}\"", n.replace('\\', "\\\\").replace('"', "\\\""))
                } else {
                    out.write_str(n)
                }
            }
        }
    }

    /// Canonical rendering. `relative` suppresses the leading axis token of
    /// the first step inside a predicate (`[author[...]]`, not `[/author[...]]`).
    fn write(&self, out: &mut fmt::Formatter<'_>, relative: bool) -> fmt::Result {
        if !relative {
            out.write_str(match self.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
        } else if self.axis == Axis::Descendant {
            // Inside a predicate a descendant first step keeps its `//`.
            out.write_str("//")?;
        }
        Self::write_name(&self.test, out)?;
        // A single comparison-free child continues the path; anything else
        // renders as sorted predicates. This reproduces the paper's style:
        // chains print as `/article/author/last/Smith`, branches as
        // `/article[author[...]][conf/INFOCOM]`.
        if self.comparison.is_none() && self.children.len() == 1 {
            let only = &self.children[0];
            if only.comparison.is_none() {
                return only.write(out, false);
            }
        }
        for child in &self.children {
            out.write_str("[")?;
            child.write(out, true)?;
            out.write_str("]")?;
        }
        if let Some(cmp) = &self.comparison {
            // Each node renders its own comparison, after its predicates,
            // matching the parser which binds `op value` to the last step.
            write!(out, "{}", cmp.op)?;
            if needs_quoting(&cmp.value) {
                write!(
                    out,
                    "\"{}\"",
                    cmp.value.replace('\\', "\\\\").replace('"', "\\\"")
                )?;
            } else {
                out.write_str(&cmp.value)?;
            }
        }
        Ok(())
    }
}

/// Bare tokens may contain alphanumerics and a few safe punctuation marks;
/// anything else (spaces, slashes, brackets, quotes, operators) is quoted.
pub(crate) fn needs_quoting(token: &str) -> bool {
    token.is_empty()
        || token == "*"
        || !token.chars().all(|c| {
            c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':' | ',' | '&' | '+' | '\'')
        })
}

/// A normalized query over descriptors.
///
/// Create queries with [`Query::parse`](crate::parse_query),
/// [`QueryBuilder`](crate::QueryBuilder), or
/// [`Query::most_specific`](crate::Query::most_specific); all three produce
/// the same canonical representation, so equal queries are `==` and print
/// identically.
///
/// The canonical text — and therefore the DHT key `h(q)` — of a query is
/// needed on every lookup, so it is rendered **once** at construction and
/// memoized: `Display`, [`canonical_text`](Query::canonical_text),
/// equality, hashing, and ordering all reuse the cached string instead of
/// re-walking the pattern tree. Both the tree and the cached text sit
/// behind `Arc`s, making `Query::clone` two reference-count bumps — cheap
/// enough for the simulator's per-interaction cloning.
///
/// # Examples
///
/// ```
/// use p2p_index_xpath::Query;
///
/// // Predicate order does not matter after normalization:
/// let a: Query = "/article[conf/INFOCOM][author/last/Smith]".parse()?;
/// let b: Query = "/article[author/last/Smith][conf/INFOCOM]".parse()?;
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), b.to_string());
/// # Ok::<(), p2p_index_xpath::ParseQueryError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "QueryRepr", into = "QueryRepr")]
pub struct Query {
    pub(crate) root: Arc<Pattern>,
    /// Canonical rendering of `root`, computed once at construction.
    canon: Arc<str>,
}

/// Serde shape of a [`Query`]: just the root pattern, exactly the layout
/// the type had before the canonical text was memoized. Deserialization
/// re-normalizes and re-renders, so the cache can never go stale.
#[derive(Serialize, Deserialize)]
#[serde(rename = "Query")]
struct QueryRepr {
    root: Pattern,
}

impl From<QueryRepr> for Query {
    fn from(repr: QueryRepr) -> Query {
        Query::from_root(repr.root)
    }
}

impl From<Query> for QueryRepr {
    fn from(query: Query) -> QueryRepr {
        QueryRepr {
            root: (*query.root).clone(),
        }
    }
}

/// The normalized canonical rendering is injective (guaranteed by the
/// parse-roundtrip property tests), so the cached text is a faithful
/// proxy for the whole tree: comparing/hashing it gives exactly the
/// tree-equality semantics, without traversals or allocations.
impl PartialEq for Query {
    fn eq(&self, other: &Query) -> bool {
        Arc::ptr_eq(&self.canon, &other.canon) || self.canon == other.canon
    }
}

impl Eq for Query {}

impl Hash for Query {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canon.hash(state);
    }
}

impl PartialOrd for Query {
    fn partial_cmp(&self, other: &Query) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Query {
    fn cmp(&self, other: &Query) -> Ordering {
        self.canon.cmp(&other.canon)
    }
}

impl Query {
    /// Wraps and normalizes a root pattern, rendering the canonical text
    /// exactly once.
    pub(crate) fn from_root(mut root: Pattern) -> Query {
        root.normalize();
        Query::from_normalized_root(root)
    }

    /// Wraps a root pattern that is **already normalized** (children sorted
    /// and deduplicated at every level), skipping the recursive
    /// re-normalization pass. Callers must guarantee the invariant — e.g.
    /// a tree cloned from an existing query with a child removed stays
    /// normalized.
    fn from_normalized_root(root: Pattern) -> Query {
        debug_assert!(
            {
                let mut check = root.clone();
                check.normalize();
                check == root
            },
            "from_normalized_root requires a normalized pattern"
        );
        struct Canon<'a>(&'a Pattern);
        impl fmt::Display for Canon<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.write(f, false)
            }
        }
        // Render through a thread-local scratch buffer: `to_string()`
        // grows an empty String through several reallocations per query,
        // and schemes build a handful of queries per published file —
        // this keeps query construction at one allocation (the Arc copy).
        thread_local! {
            static CANON_SCRATCH: std::cell::RefCell<String> =
                const { std::cell::RefCell::new(String::new()) };
        }
        let canon: Arc<str> = CANON_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.clear();
            use fmt::Write;
            write!(scratch, "{}", Canon(&root)).expect("fmt to String cannot fail");
            Arc::from(scratch.as_str())
        });
        Query {
            root: Arc::new(root),
            canon,
        }
    }

    /// The root pattern node.
    pub fn root(&self) -> &Pattern {
        &self.root
    }

    /// The root element name this query requires, if it names one
    /// (`None` for a wildcard root).
    pub fn root_name(&self) -> Option<&str> {
        match &self.root.test {
            NameTest::Name(n) => Some(n),
            NameTest::Wildcard => None,
        }
    }

    /// Number of pattern nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Pattern depth (`/article` has depth 1).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// The canonical text; equal to `self.to_string()` and suitable as the
    /// hash input `h(q)`. Memoized at construction — this is a borrow, not
    /// a render, so hot paths can read lengths and hash inputs without
    /// allocating.
    pub fn canonical_text(&self) -> &str {
        &self.canon
    }

    /// The top-level branches (children of the root).
    pub fn top_branches(&self) -> &[Pattern] {
        &self.root.children
    }

    /// A copy of this query with top-level branch `index` removed — the
    /// one-step *generalization* used when a query is not indexed (§IV-B:
    /// "looking for a query qᵢ such that qᵢ ⊒ q").
    ///
    /// Returns `None` if `index` is out of range.
    #[must_use]
    pub fn drop_top_branch(&self, index: usize) -> Option<Query> {
        if index >= self.root.children.len() {
            return None;
        }
        let mut root = (*self.root).clone();
        root.children.remove(index);
        // A query's tree is always normalized; removing one child of the
        // root keeps every level sorted and deduplicated, so the recursive
        // re-normalization pass can be skipped.
        Some(Query::from_normalized_root(root))
    }

    /// All one-step generalizations: each top-level branch dropped in turn.
    /// Broadest-first exploration of these reaches every indexed ancestor.
    pub fn generalizations(&self) -> Vec<Query> {
        let mut out = Vec::with_capacity(self.root.children.len());
        self.generalizations_into(&mut out);
        out
    }

    /// Appends all one-step generalizations to `out` — the allocation-free
    /// sibling of [`generalizations`](Self::generalizations) for hot loops
    /// that keep a reusable frontier buffer.
    pub fn generalizations_into(&self, out: &mut Vec<Query>) {
        out.extend((0..self.root.children.len()).filter_map(|i| self.drop_top_branch(i)));
    }

    /// Rewrites the query's *values* — leaf steps (`…/title/TCP`) and
    /// comparison right-hand sides (`[year>=1990]`) — through `f`, which
    /// receives the element path leading to the value (e.g.
    /// `["article", "author", "last"]`) and the current value, and returns
    /// a replacement (or `None` to keep it). The result is re-normalized.
    ///
    /// This is the hook fuzzy matching builds on (the paper's §VI:
    /// validating queries "against databases that store known file
    /// descriptors" to absorb misspellings).
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_xpath::parse_query;
    ///
    /// let q = parse_query("/article/author/last/Smiht")?;
    /// let fixed = q.map_values(|path, value| {
    ///     (path == ["article", "author", "last"] && value == "Smiht")
    ///         .then(|| "Smith".to_string())
    /// });
    /// assert_eq!(fixed.to_string(), "/article/author/last/Smith");
    /// # Ok::<(), p2p_index_xpath::ParseQueryError>(())
    /// ```
    #[must_use]
    pub fn map_values<F>(&self, mut f: F) -> Query
    where
        F: FnMut(&[&str], &str) -> Option<String>,
    {
        let mut root = (*self.root).clone();
        let mut path: Vec<String> = Vec::new();
        map_values_in(&mut root, &mut path, &mut f);
        Query::from_root(root)
    }
}

fn map_values_in<F>(node: &mut Pattern, path: &mut Vec<String>, f: &mut F)
where
    F: FnMut(&[&str], &str) -> Option<String>,
{
    let name = match &node.test {
        NameTest::Name(n) => n.clone(),
        NameTest::Wildcard => "*".to_string(),
    };
    path.push(name);
    {
        let borrowed: Vec<&str> = path.iter().map(String::as_str).collect();
        if let Some(cmp) = &mut node.comparison {
            if let Some(new) = f(&borrowed, &cmp.value) {
                cmp.value = new;
            }
        }
        // A child that is a pure leaf is a value in our semantics; its
        // "path" is the chain of element names above it.
        for child in &mut node.children {
            if child.is_leaf() {
                if let NameTest::Name(value) = &child.test.clone() {
                    if let Some(new) = f(&borrowed, value) {
                        child.test = NameTest::Name(new);
                    }
                }
            }
        }
    }
    for child in &mut node.children {
        if !child.is_leaf() {
            map_values_in(child, path, f);
        }
    }
    path.pop();
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(test: &str, children: Vec<Pattern>) -> Pattern {
        Pattern {
            axis: Axis::Child,
            test: NameTest::Name(test.into()),
            comparison: None,
            children,
        }
    }

    #[test]
    fn cmp_op_numeric_and_lexicographic() {
        assert!(CmpOp::Lt.eval("9", "10")); // numeric
        assert!(CmpOp::Eq.eval("0100", "100")); // numeric equality
        assert!(CmpOp::Lt.eval("apple", "banana")); // lexicographic
        assert!(CmpOp::Ge.eval("1996", "1996"));
        assert!(CmpOp::Ne.eval("a", "b"));
        assert!(!CmpOp::Gt.eval("5", "5"));
        assert!(CmpOp::Le.eval("5", "5"));
    }

    #[test]
    fn display_chain_as_path() {
        let q = Query::from_root(node(
            "article",
            vec![node(
                "author",
                vec![node("last", vec![node("Smith", vec![])])],
            )],
        ));
        assert_eq!(q.to_string(), "/article/author/last/Smith");
    }

    #[test]
    fn display_branches_as_predicates() {
        let q = Query::from_root(node(
            "article",
            vec![
                node("title", vec![node("TCP", vec![])]),
                node(
                    "author",
                    vec![
                        node("first", vec![node("John", vec![])]),
                        node("last", vec![node("Smith", vec![])]),
                    ],
                ),
            ],
        ));
        // Children sort deterministically (author < title).
        assert_eq!(
            q.to_string(),
            "/article[author[first/John][last/Smith]][title/TCP]"
        );
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let a = Query::from_root(node(
            "article",
            vec![
                node("year", vec![node("1996", vec![])]),
                node("conf", vec![node("INFOCOM", vec![])]),
                node("conf", vec![node("INFOCOM", vec![])]),
            ],
        ));
        let b = Query::from_root(node(
            "article",
            vec![
                node("conf", vec![node("INFOCOM", vec![])]),
                node("year", vec![node("1996", vec![])]),
            ],
        ));
        assert_eq!(a, b);
        assert_eq!(a.size(), 5);
    }

    #[test]
    fn quoting_in_display() {
        let q = Query::from_root(node(
            "article",
            vec![node("title", vec![node("A Space Odyssey", vec![])])],
        ));
        assert_eq!(q.to_string(), "/article/title/\"A Space Odyssey\"");
    }

    #[test]
    fn quoting_escapes_quotes_and_backslashes() {
        let q = Query::from_root(node("t", vec![node("say \"hi\" \\ bye", vec![])]));
        assert_eq!(q.to_string(), r#"/t/"say \"hi\" \\ bye""#);
    }

    #[test]
    fn comparison_renders_in_predicate() {
        let mut year = node("year", vec![]);
        year.comparison = Some(Comparison {
            op: CmpOp::Ge,
            value: "1990".into(),
        });
        let q = Query::from_root(node("article", vec![year]));
        assert_eq!(q.to_string(), "/article[year>=1990]");
    }

    #[test]
    fn single_child_with_comparison_is_predicate_not_path() {
        let mut year = node("year", vec![]);
        year.comparison = Some(Comparison {
            op: CmpOp::Lt,
            value: "2000".into(),
        });
        let q = Query::from_root(node("article", vec![year]));
        assert!(q.to_string().contains('['));
    }

    #[test]
    fn descendant_axis_renders_double_slash() {
        let mut smith = node("Smith", vec![]);
        smith.axis = Axis::Descendant;
        let q = Query::from_root(node("article", vec![smith]));
        assert_eq!(q.to_string(), "/article//Smith");
    }

    #[test]
    fn wildcard_renders_star() {
        let q = Query::from_root(Pattern {
            axis: Axis::Child,
            test: NameTest::Wildcard,
            comparison: None,
            children: vec![node("title", vec![])],
        });
        assert_eq!(q.to_string(), "/*/title");
    }

    #[test]
    fn drop_top_branch_generalizes() {
        let q = Query::from_root(node(
            "article",
            vec![
                node("author", vec![node("last", vec![node("Smith", vec![])])]),
                node("conf", vec![node("INFOCOM", vec![])]),
            ],
        ));
        let gens = q.generalizations();
        assert_eq!(gens.len(), 2);
        assert!(gens
            .iter()
            .any(|g| g.to_string() == "/article/conf/INFOCOM"));
        assert!(gens
            .iter()
            .any(|g| g.to_string() == "/article/author/last/Smith"));
        assert!(q.drop_top_branch(5).is_none());
    }

    #[test]
    fn size_and_depth() {
        let q = Query::from_root(node(
            "article",
            vec![node(
                "author",
                vec![node("last", vec![node("Smith", vec![])])],
            )],
        ));
        assert_eq!(q.size(), 4);
        assert_eq!(q.depth(), 4);
        assert_eq!(Query::from_root(node("a", vec![])).depth(), 1);
    }

    #[test]
    fn root_name() {
        let q = Query::from_root(node("article", vec![]));
        assert_eq!(q.root_name(), Some("article"));
        let w = Query::from_root(Pattern::leaf(Axis::Child, NameTest::Wildcard));
        assert_eq!(w.root_name(), None);
    }

    #[test]
    fn map_values_rewrites_leaves_and_comparisons() {
        let q: Query = "/article[author[first/John][last/Smiht]][year>=199O]"
            .parse()
            .unwrap();
        let fixed = q.map_values(|path, value| match (path, value) {
            (["article", "author", "last"], "Smiht") => Some("Smith".into()),
            (["article", "year"], "199O") => Some("1990".into()),
            _ => None,
        });
        assert_eq!(
            fixed.to_string(),
            "/article[author[first/John][last/Smith]][year>=1990]"
        );
        // The original is untouched.
        assert!(q.to_string().contains("Smiht"));
    }

    #[test]
    fn map_values_identity_when_f_returns_none() {
        let q: Query = "/article[title/TCP][conf/SIGCOMM]".parse().unwrap();
        assert_eq!(q.map_values(|_, _| None), q);
    }

    #[test]
    fn map_values_skips_element_presence_leaves_by_path() {
        // [title] is an element-presence test; its leaf name reaches f with
        // path ["article"], so a value-vocabulary keyed by full paths never
        // rewrites it.
        let q: Query = "/article[title]".parse().unwrap();
        let mut seen = Vec::new();
        let _ = q.map_values(|path, value| {
            seen.push((path.join("/"), value.to_string()));
            None
        });
        assert_eq!(seen, vec![("article".to_string(), "title".to_string())]);
    }

    #[test]
    fn name_test_accepts() {
        assert!(NameTest::Wildcard.accepts("anything"));
        assert!(NameTest::Name("a".into()).accepts("a"));
        assert!(!NameTest::Name("a".into()).accepts("b"));
    }
}
