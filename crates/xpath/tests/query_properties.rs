//! Property tests on the query language itself: parser totality, canonical
//! stability, and structural invariants of normalization.

use p2p_index_xpath::{parse_query, Axis, CmpOp, Query, QueryBuilder};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("author/first".to_string()),
        Just("author/last".to_string()),
        Just("title".to_string()),
        Just("conf".to_string()),
        Just("year".to_string()),
        Just("journal/volume".to_string()),
    ]
}

fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        "[A-Za-z][A-Za-z0-9]{0,10}",
        "[0-9]{1,4}",
        // Values needing quoting.
        "[A-Za-z]{1,5} [A-Za-z]{1,5}",
        "[A-Za-z]{1,3}\"[A-Za-z]{1,3}",
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::StartsWith),
        Just(CmpOp::Contains),
    ]
}

/// Random queries through the builder (always well-formed).
fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec((arb_field(), arb_value()), 0..4),
        proptest::collection::vec((arb_field(), arb_op(), arb_value()), 0..2),
    )
        .prop_map(|(values, comparisons)| {
            let mut b = QueryBuilder::new("article");
            for (f, v) in values {
                b = b.value(&f, v);
            }
            for (f, op, v) in comparisons {
                b = b.compare(&f, op, v);
            }
            b.build()
        })
}

proptest! {
    /// The canonical text of any query parses back to the same query —
    /// the property that makes h(q) well-defined.
    #[test]
    fn canonical_text_is_stable(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &q);
        prop_assert_eq!(reparsed.to_string(), text);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(s in "[ -~]{0,64}") {
        let _ = parse_query(&s);
    }

    /// Parsing whitespace-padded canonical text yields the same query.
    #[test]
    fn whitespace_insensitive(q in arb_query()) {
        let padded: String = q
            .to_string()
            .chars()
            .flat_map(|c| if c == '[' { vec!['[', ' '] } else { vec![c] })
            .collect();
        prop_assert_eq!(parse_query(&padded).expect("padded parses"), q);
    }

    /// Size and depth are consistent with the pattern structure.
    #[test]
    fn size_and_depth_bounds(q in arb_query()) {
        prop_assert!(q.size() >= 1);
        prop_assert!(q.depth() >= 1);
        prop_assert!(q.depth() <= q.size());
        // Dropping a branch strictly shrinks the size.
        for g in q.generalizations() {
            prop_assert!(g.size() < q.size());
        }
    }

    /// Normalized queries have sorted, deduplicated branches at the root.
    #[test]
    fn branches_sorted_and_unique(q in arb_query()) {
        let branches = q.top_branches();
        for w in branches.windows(2) {
            prop_assert!(w[0] < w[1], "branches must be strictly ascending");
        }
    }

    /// The root axis of builder queries is Child and the root name sticks.
    #[test]
    fn root_invariants(q in arb_query()) {
        prop_assert_eq!(q.root().axis(), Axis::Child);
        prop_assert_eq!(q.root_name(), Some("article"));
    }
}
