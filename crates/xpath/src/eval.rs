//! Query evaluation: does a descriptor match a query?
//!
//! An XML document *matches* an XPath expression "when the evaluation of
//! the expression on the document yields a non-null object" (§III-B). For
//! tree patterns this becomes an embedding check: every pattern node must
//! map to an element (or text value) of the document, respecting axes,
//! name tests, and comparisons.
//!
//! Value steps follow the paper's simplified syntax: a leaf pattern node
//! named `TCP` is satisfied either by a child element `<TCP>` or by the
//! context element's text being exactly `"TCP"` — so
//! `/article/title/TCP` matches `<article><title>TCP</title></article>`.

use p2p_index_xmldoc::Element;

use crate::ast::{Axis, NameTest, Pattern, Query};

impl Query {
    /// Evaluates this query against a descriptor's root element.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_xmldoc::parse;
    /// use p2p_index_xpath::parse_query;
    ///
    /// let doc = parse("<article><title>TCP</title><year>1989</year></article>")?;
    /// assert!(parse_query("/article/title/TCP")?.matches(&doc));
    /// assert!(parse_query("/article[year>=1980]")?.matches(&doc));
    /// assert!(!parse_query("/article/title/IPv6")?.matches(&doc));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn matches(&self, doc: &Element) -> bool {
        match self.root.axis {
            Axis::Child => node_matches(&self.root, doc),
            // `//x` from the document node: the root element and all its
            // descendants are candidates — including, for a pure value
            // pattern like `//Smith`, any element whose text equals it.
            Axis::Descendant => {
                let elements = std::iter::once(doc).chain(descendant_elements(doc));
                if self.root.is_leaf() {
                    if let NameTest::Name(value) = self.root.test() {
                        return elements
                            .into_iter()
                            .any(|e| e.name() == value || e.text() == *value);
                    }
                }
                elements.into_iter().any(|e| node_matches(&self.root, e))
            }
        }
    }
}

/// All strict descendant elements of `e`, pre-order.
fn descendant_elements(e: &Element) -> Vec<&Element> {
    let mut out = Vec::new();
    let mut stack: Vec<&Element> = e.child_elements().collect();
    while let Some(el) = stack.pop() {
        out.push(el);
        stack.extend(el.child_elements());
    }
    out
}

/// Does element `e` itself satisfy pattern node `p` (name, comparison, and
/// all child constraints)?
fn node_matches(p: &Pattern, e: &Element) -> bool {
    if !p.test().accepts(e.name()) {
        return false;
    }
    if let Some(cmp) = p.comparison() {
        if !cmp.op.eval(&e.text(), &cmp.value) {
            return false;
        }
    }
    p.children().iter().all(|c| child_satisfied(c, e))
}

/// Is the child constraint `c` satisfied at context element `e`?
fn child_satisfied(c: &Pattern, e: &Element) -> bool {
    // Value-node interpretation: a pure leaf with a concrete name may be
    // satisfied by text content equal to that name.
    if c.is_leaf() {
        if let NameTest::Name(value) = c.test() {
            let text_hit = match c.axis() {
                Axis::Child => e.text() == *value,
                Axis::Descendant => {
                    e.text() == *value || descendant_elements(e).iter().any(|d| d.text() == *value)
                }
            };
            if text_hit {
                return true;
            }
        }
    }
    // Element interpretation.
    match c.axis() {
        Axis::Child => e.child_elements().any(|child| node_matches(c, child)),
        Axis::Descendant => descendant_elements(e).iter().any(|d| node_matches(c, d)),
    }
}

#[cfg(test)]
mod tests {
    use p2p_index_xmldoc::parse;

    use crate::parse::parse_query;

    fn d1() -> p2p_index_xmldoc::Element {
        parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>TCP</title><conf>SIGCOMM</conf><year>1989</year><size>315635</size></article>",
        )
        .unwrap()
    }

    fn d2() -> p2p_index_xmldoc::Element {
        parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>IPv6</title><conf>INFOCOM</conf><year>1996</year><size>312352</size></article>",
        )
        .unwrap()
    }

    fn d3() -> p2p_index_xmldoc::Element {
        parse(
            "<article><author><first>Alan</first><last>Doe</last></author>\
             <title>Wavelets</title><conf>INFOCOM</conf><year>1996</year><size>259827</size></article>",
        )
        .unwrap()
    }

    #[test]
    fn figure_2_queries_match_figure_1_descriptors() {
        let q1 = parse_query(
            "/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]",
        )
        .unwrap();
        let q2 = parse_query("/article[author[first/John][last/Smith]][conf/INFOCOM]").unwrap();
        let q3 = parse_query("/article/author[first/John][last/Smith]").unwrap();
        let q4 = parse_query("/article/title/TCP").unwrap();
        let q5 = parse_query("/article/conf/INFOCOM").unwrap();
        let q6 = parse_query("/article/author/last/Smith").unwrap();

        // q1 is the most specific query for d1 only.
        assert!(q1.matches(&d1()));
        assert!(!q1.matches(&d2()));
        assert!(!q1.matches(&d3()));
        // q2: John Smith at INFOCOM — only d2.
        assert!(!q2.matches(&d1()));
        assert!(q2.matches(&d2()));
        assert!(!q2.matches(&d3()));
        // q3: John Smith — d1 and d2.
        assert!(q3.matches(&d1()));
        assert!(q3.matches(&d2()));
        assert!(!q3.matches(&d3()));
        // q4: title TCP — d1 only.
        assert!(q4.matches(&d1()));
        assert!(!q4.matches(&d2()));
        // q5: INFOCOM — d2 and d3.
        assert!(!q5.matches(&d1()));
        assert!(q5.matches(&d2()));
        assert!(q5.matches(&d3()));
        // q6: last name Smith — d1 and d2.
        assert!(q6.matches(&d1()));
        assert!(q6.matches(&d2()));
        assert!(!q6.matches(&d3()));
    }

    #[test]
    fn root_name_must_match() {
        assert!(!parse_query("/book/title/TCP").unwrap().matches(&d1()));
    }

    #[test]
    fn wildcard_matches_any_element() {
        assert!(parse_query("/*/title/TCP").unwrap().matches(&d1()));
        // `*` matches exactly one level: Smith is text of author's child.
        assert!(parse_query("/article/author/*/Smith")
            .unwrap()
            .matches(&d1()));
        assert!(!parse_query("/article/*/Smith").unwrap().matches(&d1()));
        assert!(!parse_query("/article/*/Nowhere").unwrap().matches(&d1()));
        // `*` one-level value match: TCP is direct text of title.
        assert!(parse_query("/article/*/TCP").unwrap().matches(&d1()));
    }

    #[test]
    fn descendant_axis_reaches_deep_values() {
        assert!(parse_query("//Smith").unwrap().matches(&d1()));
        assert!(parse_query("/article//Smith").unwrap().matches(&d1()));
        assert!(parse_query("//last/Smith").unwrap().matches(&d1()));
        assert!(!parse_query("//Nobody").unwrap().matches(&d1()));
        assert!(parse_query("//title").unwrap().matches(&d1()));
    }

    #[test]
    fn descendant_root_matches_root_element_itself() {
        assert!(parse_query("//article").unwrap().matches(&d1()));
    }

    #[test]
    fn comparisons_on_text() {
        assert!(parse_query("/article[year>=1989]").unwrap().matches(&d1()));
        assert!(parse_query("/article[year<=1989]").unwrap().matches(&d1()));
        assert!(!parse_query("/article[year>1989]").unwrap().matches(&d1()));
        assert!(parse_query("/article[year!=1996]").unwrap().matches(&d1()));
        assert!(parse_query("/article[year=1989]").unwrap().matches(&d1()));
        assert!(parse_query("/article[size>300000]").unwrap().matches(&d1()));
        assert!(!parse_query("/article[size>300000]").unwrap().matches(&d3()));
    }

    #[test]
    fn multiple_predicates_are_conjunctive() {
        let q = parse_query("/article[year>=1990][conf/INFOCOM]").unwrap();
        assert!(!q.matches(&d1()));
        assert!(q.matches(&d2()));
    }

    #[test]
    fn predicates_on_same_branch_must_hold_on_one_element() {
        // John Doe exists in no single author element even though "John"
        // and "Doe" both appear in the corpus.
        let q = parse_query("/article/author[first/John][last/Doe]").unwrap();
        assert!(!q.matches(&d1()));
        assert!(!q.matches(&d3()));
    }

    #[test]
    fn multi_author_descriptor_any_author_matches() {
        let doc = parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <author><first>Alan</first><last>Doe</last></author><title>X</title></article>",
        )
        .unwrap();
        assert!(parse_query("/article/author[first/Alan][last/Doe]")
            .unwrap()
            .matches(&doc));
        assert!(parse_query("/article/author[first/John][last/Smith]")
            .unwrap()
            .matches(&doc));
        assert!(!parse_query("/article/author[first/John][last/Doe]")
            .unwrap()
            .matches(&doc));
    }

    #[test]
    fn value_must_equal_whole_text() {
        // Substrings do not match.
        assert!(!parse_query("/article/title/TC").unwrap().matches(&d1()));
    }

    #[test]
    fn empty_query_root_only() {
        assert!(parse_query("/article").unwrap().matches(&d1()));
    }

    #[test]
    fn quoted_value_with_spaces() {
        let doc = parse("<article><title>A Space Odyssey</title></article>").unwrap();
        assert!(parse_query("/article/title/\"A Space Odyssey\"")
            .unwrap()
            .matches(&doc));
    }

    #[test]
    fn starts_with_operator() {
        let q = parse_query("/article[author/last^=Sm]").unwrap();
        assert!(q.matches(&d1()));
        assert!(!parse_query("/article[author/last^=Do]")
            .unwrap()
            .matches(&d1()));
        assert!(parse_query("/article[title^=TC]").unwrap().matches(&d1()));
        // Empty prefix matches everything with the element present.
        assert!(parse_query("/article[title^=\"\"]").unwrap().matches(&d1()));
    }

    #[test]
    fn contains_operator() {
        let doc = parse("<article><title>Adaptive Routing in Overlay Networks</title></article>")
            .unwrap();
        assert!(parse_query("/article[title*=Routing]")
            .unwrap()
            .matches(&doc));
        assert!(parse_query("/article[title*=\"Overlay Networks\"]")
            .unwrap()
            .matches(&doc));
        assert!(!parse_query("/article[title*=Caching]")
            .unwrap()
            .matches(&doc));
    }

    #[test]
    fn comparison_with_string_values() {
        let doc = parse("<article><conf>INFOCOM</conf></article>").unwrap();
        assert!(parse_query("/article[conf=INFOCOM]").unwrap().matches(&doc));
        assert!(parse_query("/article[conf!=SIGCOMM]")
            .unwrap()
            .matches(&doc));
    }
}
