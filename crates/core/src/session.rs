//! Interactive search sessions.
//!
//! "The lookup process can be interactive, i.e., the user directs the
//! search and restricts its query at each step, or automated" (§IV-B).
//! [`IndexService::search`](crate::IndexService::search) is the automated
//! mode; [`SearchSession`] is the interactive one: the application shows
//! the user the list of more specific queries returned at each step, the
//! user picks one, and the session iterates until a file is reached. On
//! success, [`SearchSession::commit`] installs shortcut cache entries along
//! the traversed path, per the service's cache policy.

use p2p_index_dht::{Dht, NodeId};
use p2p_index_xpath::Query;

use crate::service::{IndexError, IndexService};
use crate::target::IndexTarget;

/// Where an interactive session currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// The last lookup returned refinement options; pick one with
    /// [`SearchSession::refine`].
    Browsing,
    /// The last refinement reached stored files.
    Found(Vec<String>),
    /// The current query is not indexed; [`SearchSession::generalize`]
    /// offers broader queries, or the session can be abandoned.
    DeadEnd,
}

/// One user-directed search, stepping down the covering partial order.
///
/// # Examples
///
/// ```
/// use p2p_index_core::{CachePolicy, IndexService, SearchSession, SessionState, SimpleScheme};
/// use p2p_index_dht::RingDht;
/// use p2p_index_xmldoc::Descriptor;
///
/// let mut service = IndexService::new(RingDht::with_named_nodes(20), CachePolicy::Single);
/// let d = Descriptor::parse(
///     "<article><author><first>John</first><last>Smith</last></author>\
///      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
/// )?;
/// service.publish(&d, "x.pdf", &SimpleScheme)?;
///
/// let mut session = SearchSession::start(
///     &mut service,
///     "/article/author[first/John][last/Smith]".parse()?,
/// )?;
/// // The author index offers one author+title refinement; take it, then
/// // take the MSD it leads to.
/// while session.state() == SessionState::Browsing {
///     session.refine(0)?;
/// }
/// assert_eq!(session.state(), SessionState::Found(vec!["x.pdf".into()]));
/// let report = session.commit();
/// assert!(report.interactions >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SearchSession<'s, D> {
    service: &'s mut IndexService<D>,
    current: Query,
    options: Vec<IndexTarget>,
    files: Vec<String>,
    path: Vec<(NodeId, Query)>,
    interactions: u32,
}

/// What a finished session did, returned by [`SearchSession::commit`] and
/// [`SearchSession::abandon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Files reached (empty if the session was abandoned while browsing).
    pub files: Vec<String>,
    /// Lookup steps performed.
    pub interactions: u32,
    /// Shortcut cache entries created on commit.
    pub shortcuts_created: usize,
}

impl<'s, D: Dht> SearchSession<'s, D> {
    /// Starts a session by looking up `query`.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError`] from the underlying lookup.
    pub fn start(
        service: &'s mut IndexService<D>,
        query: Query,
    ) -> Result<SearchSession<'s, D>, IndexError> {
        let mut session = SearchSession {
            service,
            current: query.clone(),
            options: Vec::new(),
            files: Vec::new(),
            path: Vec::new(),
            interactions: 0,
        };
        session.lookup(query)?;
        Ok(session)
    }

    fn lookup(&mut self, query: Query) -> Result<(), IndexError> {
        let resp = self.service.lookup_step(&query)?;
        self.interactions += 1;
        if let Some(node) = resp.node {
            self.path.push((node, query.clone()));
        }
        self.current = query;
        self.files = resp
            .all_targets()
            .filter_map(|t| t.as_file().map(str::to_string))
            .collect();
        self.options = resp
            .all_targets()
            .filter(|t| t.as_query().is_some_and(|q| q != &self.current))
            .cloned()
            .collect();
        self.options.dedup();
        Ok(())
    }

    /// The query the session is currently positioned at.
    pub fn current_query(&self) -> &Query {
        &self.current
    }

    /// The refinement options the last lookup returned (more specific
    /// queries, cached shortcuts first).
    pub fn options(&self) -> &[IndexTarget] {
        &self.options
    }

    /// Lookup steps performed so far.
    pub fn interactions(&self) -> u32 {
        self.interactions
    }

    /// Files reached at the current position (non-empty once an MSD has
    /// been looked up).
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// The session's state: browsing, found, or dead end.
    pub fn state(&self) -> SessionState {
        if !self.files.is_empty() {
            SessionState::Found(self.files.clone())
        } else if self.options.is_empty() {
            SessionState::DeadEnd
        } else {
            SessionState::Browsing
        }
    }

    /// Follows option `index` from [`SearchSession::options`].
    ///
    /// # Errors
    ///
    /// [`IndexError`] from the lookup; selecting an out-of-range option is
    /// a no-op returning `Ok`.
    pub fn refine(&mut self, index: usize) -> Result<SessionState, IndexError> {
        let Some(IndexTarget::Query(q)) = self.options.get(index).cloned() else {
            return Ok(self.state());
        };
        self.lookup(q)?;
        Ok(self.state())
    }

    /// Jumps to an arbitrary query (e.g. one the user edited by hand).
    ///
    /// # Errors
    ///
    /// [`IndexError`] from the lookup.
    pub fn refine_to(&mut self, query: Query) -> Result<SessionState, IndexError> {
        self.lookup(query)?;
        Ok(self.state())
    }

    /// At a dead end, returns the one-step generalizations of the current
    /// query (the §IV-B recovery move); jump to one with
    /// [`SearchSession::refine_to`].
    pub fn generalize(&self) -> Vec<Query> {
        self.current.generalizations()
    }

    /// Fetches the *regular* index entries for the current query,
    /// bypassing the shortcut cache, and merges them into
    /// [`SearchSession::options`]. Lookups are cache-first (§IV-C), so
    /// when the offered shortcuts don't lead to what the user wants, this
    /// is the follow-up interaction that reveals the full index.
    ///
    /// # Errors
    ///
    /// [`IndexError`] from the lookup.
    pub fn expand(&mut self) -> Result<SessionState, IndexError> {
        let resp = self.service.lookup_step_bypassing_cache(&self.current)?;
        self.interactions += 1;
        for t in resp.indexed {
            match t {
                IndexTarget::File(f) => {
                    if !self.files.contains(&f) {
                        self.files.push(f);
                    }
                }
                IndexTarget::Query(q) => {
                    if q != self.current {
                        let t = IndexTarget::Query(q);
                        if !self.options.contains(&t) {
                            self.options.push(t);
                        }
                    }
                }
            }
        }
        Ok(self.state())
    }

    /// Ends the session; if files were found, installs shortcut entries
    /// (query → final MSD) along the traversed path per the cache policy.
    pub fn commit(self) -> SessionReport {
        let shortcuts_created = if self.files.is_empty() {
            0
        } else {
            self.service
                .create_shortcuts(&self.path, &IndexTarget::Query(self.current.clone()))
        };
        SessionReport {
            files: self.files,
            interactions: self.interactions,
            shortcuts_created,
        }
    }

    /// Ends the session without touching the caches.
    pub fn abandon(self) -> SessionReport {
        SessionReport {
            files: self.files,
            interactions: self.interactions,
            shortcuts_created: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use p2p_index_dht::RingDht;
    use p2p_index_xmldoc::Descriptor;

    use super::*;
    use crate::cache::CachePolicy;
    use crate::scheme::SimpleScheme;

    fn service(policy: CachePolicy) -> IndexService<RingDht> {
        let mut s = IndexService::new(RingDht::with_named_nodes(30), policy);
        for (file, first, last, title, conf, year) in [
            ("x.pdf", "John", "Smith", "TCP", "SIGCOMM", "1989"),
            ("y.pdf", "John", "Smith", "IPv6", "INFOCOM", "1996"),
            ("z.pdf", "Alan", "Doe", "Wavelets", "INFOCOM", "1996"),
        ] {
            let d = Descriptor::parse(&format!(
                "<article><author><first>{first}</first><last>{last}</last></author>\
                 <title>{title}</title><conf>{conf}</conf><year>{year}</year></article>"
            ))
            .unwrap();
            s.publish(&d, file, &SimpleScheme).unwrap();
        }
        s
    }

    #[test]
    fn walk_author_chain_to_file() {
        let mut s = service(CachePolicy::None);
        let mut session = SearchSession::start(
            &mut s,
            "/article/author[first/Alan][last/Doe]".parse().unwrap(),
        )
        .unwrap();
        assert_eq!(session.state(), SessionState::Browsing);
        assert_eq!(session.options().len(), 1); // one Doe article
        while session.state() == SessionState::Browsing {
            session.refine(0).unwrap();
        }
        assert_eq!(session.state(), SessionState::Found(vec!["z.pdf".into()]));
        let report = session.commit();
        assert_eq!(report.files, vec!["z.pdf".to_string()]);
        assert_eq!(report.interactions, 3);
        assert_eq!(report.shortcuts_created, 0); // policy None
    }

    #[test]
    fn browsing_presents_multiple_options() {
        let mut s = service(CachePolicy::None);
        let mut session =
            SearchSession::start(&mut s, "/article/conf/INFOCOM".parse().unwrap()).unwrap();
        // INFOCOM index: one conf+year entry (both INFOCOM papers are '96).
        assert_eq!(session.options().len(), 1);
        session.refine(0).unwrap();
        // conf+year holds two MSDs now.
        assert_eq!(session.options().len(), 2);
    }

    #[test]
    fn dead_end_and_generalization() {
        let mut s = service(CachePolicy::None);
        let mut session = SearchSession::start(
            &mut s,
            "/article[author[first/John][last/Smith]][year/1996]"
                .parse()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(session.state(), SessionState::DeadEnd);
        let broader = session.generalize();
        assert_eq!(broader.len(), 2);
        // Jump to the author-only generalization and walk to y.pdf.
        let author_only = broader
            .iter()
            .find(|q| q.to_string().contains("author"))
            .unwrap()
            .clone();
        session.refine_to(author_only).unwrap();
        assert_eq!(session.state(), SessionState::Browsing);
    }

    #[test]
    fn commit_creates_shortcuts_under_single_policy() {
        let mut s = service(CachePolicy::Single);
        let start: Query = "/article/author[first/Alan][last/Doe]".parse().unwrap();
        let mut session = SearchSession::start(&mut s, start.clone()).unwrap();
        while session.state() == SessionState::Browsing {
            session.refine(0).unwrap();
        }
        let report = session.commit();
        assert_eq!(report.shortcuts_created, 1);
        // The shortcut serves the next session immediately.
        let session2 = SearchSession::start(&mut s, start).unwrap();
        assert!(
            session2.options().iter().any(|t| t.as_query().is_some()),
            "cached MSD shortcut should appear in options"
        );
    }

    #[test]
    fn abandon_never_caches() {
        let mut s = service(CachePolicy::Single);
        let mut session = SearchSession::start(
            &mut s,
            "/article/author[first/Alan][last/Doe]".parse().unwrap(),
        )
        .unwrap();
        while session.state() == SessionState::Browsing {
            session.refine(0).unwrap();
        }
        let report = session.abandon();
        assert!(!report.files.is_empty());
        assert_eq!(report.shortcuts_created, 0);
        assert_eq!(s.cache_sizes().iter().map(|(_, c)| c).sum::<usize>(), 0);
    }

    #[test]
    fn expand_reveals_regular_entries_after_cache_hit() {
        let mut s = service(CachePolicy::Single);
        let start: Query = "/article/author[first/John][last/Smith]".parse().unwrap();
        // Warm the cache by walking one of the two Smith papers.
        let mut warm = SearchSession::start(&mut s, start.clone()).unwrap();
        while warm.state() == SessionState::Browsing {
            warm.refine(0).unwrap();
        }
        warm.commit();
        // A fresh session sees only the cached shortcut (cache-first)...
        let mut session = SearchSession::start(&mut s, start).unwrap();
        let cached_only = session.options().len();
        assert_eq!(cached_only, 1, "cache-first response hides regular entries");
        // ...until the user expands to the full index listing.
        let before = session.interactions();
        session.expand().unwrap();
        assert_eq!(session.interactions(), before + 1);
        assert!(
            session.options().len() >= 2,
            "expand must add the author's two author+title entries"
        );
    }

    #[test]
    fn out_of_range_refine_is_noop() {
        let mut s = service(CachePolicy::None);
        let mut session =
            SearchSession::start(&mut s, "/article/conf/INFOCOM".parse().unwrap()).unwrap();
        let before = session.interactions();
        session.refine(99).unwrap();
        assert_eq!(session.interactions(), before);
    }

    #[test]
    fn msd_start_is_found_immediately() {
        let mut s = service(CachePolicy::None);
        let d = Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
        )
        .unwrap();
        let msd = Query::most_specific(&d);
        let session = SearchSession::start(&mut s, msd).unwrap();
        assert_eq!(session.state(), SessionState::Found(vec!["x.pdf".into()]));
        assert_eq!(session.files(), ["x.pdf".to_string()]);
    }
}
