//! A Kademlia DHT simulation (XOR metric, k-buckets, iterative lookups).
//!
//! The indexing layer claims substrate independence; next to
//! [Chord](crate::chord) (ring + fingers) this module provides the other
//! classic DHT family — Kademlia (Maymounkov & Mazières, IPTPS 2002), the
//! design used by libp2p's DHT. Distance is `XOR`, routing state is one
//! k-bucket per distance prefix, and lookups iteratively query the `α`
//! closest known peers until the `k` closest nodes to the target have been
//! found. A key is stored on the node(s) closest to it by XOR.
//!
//! As with the Chord module, the whole network runs in one process and
//! RPCs are counted, not serialized. Routing tables are updated by the
//! traffic that flows through them (every reply teaches the querier about
//! new peers), so joins propagate exactly as in the real protocol.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use p2p_index_dht::{Dht, KademliaNetwork, Key};
//!
//! let mut net = KademliaNetwork::with_nodes(
//!     (0..32).map(|i| Key::hash_of(&format!("peer-{i}"))),
//! );
//! let key = Key::hash_of("item");
//! net.put(key, Bytes::from_static(b"value"));
//! assert_eq!(net.get(&key), vec![Bytes::from_static(b"value")]);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{self, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId};
use crate::chord::ChordError;
use crate::key::{Key, KEY_BITS};
use crate::storage::NodeStore;

/// Tuning knobs of the Kademlia simulation.
#[derive(Debug, Clone)]
pub struct KademliaConfig {
    /// Bucket size (and lookup result width). Kademlia's classic k = 20.
    pub k: usize,
    /// Lookup parallelism α.
    pub alpha: usize,
    /// How many of the closest nodes store each key (1 = no replication;
    /// real Kademlia stores on all k).
    pub store_width: usize,
}

impl Default for KademliaConfig {
    fn default() -> Self {
        KademliaConfig {
            k: 20,
            alpha: 3,
            store_width: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct KadNodeState {
    /// One bucket per shared-prefix length; entries are other node keys.
    buckets: Vec<Vec<Key>>,
    store: NodeStore,
}

impl KadNodeState {
    fn new() -> Self {
        KadNodeState {
            buckets: vec![Vec::new(); KEY_BITS],
            store: NodeStore::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    messages: AtomicU64,
    lookups: AtomicU64,
    hops: AtomicU64,
}

/// The simulated Kademlia network.
///
/// See the [module docs](self) for an overview.
#[derive(Debug)]
pub struct KademliaNetwork {
    cfg: KademliaConfig,
    nodes: BTreeMap<Key, KadNodeState>,
    /// Sorted mirror of the live node set.
    order: Vec<Key>,
    stats: Counters,
    next_origin: AtomicU64,
    metrics: MetricsRegistry,
}

impl KademliaNetwork {
    /// An empty network with default configuration.
    pub fn new() -> Self {
        Self::with_config(KademliaConfig::default())
    }

    /// An empty network with the given configuration.
    pub fn with_config(cfg: KademliaConfig) -> Self {
        KademliaNetwork {
            cfg,
            nodes: BTreeMap::new(),
            order: Vec::new(),
            stats: Counters::default(),
            next_origin: AtomicU64::new(0),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Builds a network over `ids` with fully populated routing tables
    /// (as if the network had been running long enough for every node to
    /// have seen traffic from its neighbourhood).
    pub fn with_nodes(ids: impl IntoIterator<Item = Key>) -> Self {
        Self::with_nodes_and_config(ids, KademliaConfig::default())
    }

    /// [`KademliaNetwork::with_nodes`] with an explicit configuration.
    pub fn with_nodes_and_config(ids: impl IntoIterator<Item = Key>, cfg: KademliaConfig) -> Self {
        let mut net = Self::with_config(cfg);
        for id in ids {
            net.nodes.entry(id).or_insert_with(KadNodeState::new);
        }
        net.order = net.nodes.keys().copied().collect();
        let all = net.order.clone();
        for a in &all {
            for b in &all {
                if a != b {
                    net.observe(a, b);
                }
            }
        }
        net
    }

    /// Records that node `who` has seen node `seen`: inserts `seen` into
    /// the appropriate k-bucket, evicting the farthest entry if the bucket
    /// is full and `seen` is closer (a deterministic stand-in for the
    /// liveness-based eviction of the real protocol).
    fn observe(&mut self, who: &Key, seen: &Key) {
        if who == seen {
            return;
        }
        let Some(state) = self.nodes.get_mut(who) else {
            return;
        };
        let idx = bucket_index(who, seen);
        let bucket = &mut state.buckets[idx];
        if bucket.contains(seen) {
            return;
        }
        if bucket.len() < self.cfg.k {
            bucket.push(*seen);
            return;
        }
        // Full: replace the farthest entry if the newcomer is closer.
        let (far_pos, far_key) = bucket
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| who.xor(b))
            .map(|(i, b)| (i, *b))
            .expect("bucket is non-empty");
        if who.xor(seen) < who.xor(&far_key) {
            bucket[far_pos] = *seen;
        }
    }

    /// The `count` live nodes closest to `target` that `node` knows about.
    fn closest_known(&self, node: &Key, target: &Key, count: usize) -> Vec<Key> {
        let Some(state) = self.nodes.get(node) else {
            return Vec::new();
        };
        let mut known: Vec<Key> = state
            .buckets
            .iter()
            .flatten()
            .filter(|k| self.nodes.contains_key(k))
            .copied()
            .collect();
        known.push(*node);
        known.sort_by_key(|k| k.xor(target));
        known.truncate(count);
        known
    }

    /// Iterative node lookup: returns the `k` closest live nodes to
    /// `target` plus the number of query rounds ("hops").
    ///
    /// Every queried node learns about the querier, and the querier learns
    /// every returned contact — the table-maintenance side channel of the
    /// real protocol.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not a live node.
    pub fn find_closest(&mut self, origin: Key, target: &Key) -> (Vec<Key>, u32) {
        assert!(self.nodes.contains_key(&origin), "origin must be live");
        let k = self.cfg.k;
        let mut shortlist = self.closest_known(&origin, target, k);
        if !shortlist.contains(&origin) {
            shortlist.push(origin);
        }
        let mut queried: Vec<Key> = vec![origin];
        let mut hops = 0u32;

        loop {
            shortlist.sort_by_key(|n| n.xor(target));
            shortlist.truncate(k);
            let top_k_before = shortlist.clone();
            let batch: Vec<Key> = shortlist
                .iter()
                .filter(|n| !queried.contains(n) && self.nodes.contains_key(n))
                .take(self.cfg.alpha)
                .copied()
                .collect();
            if batch.is_empty() {
                break;
            }
            hops += 1;
            for peer in batch {
                queried.push(peer);
                self.stats.messages.fetch_add(2, Ordering::Relaxed);
                let replies = self.closest_known(&peer, target, k);
                // Bidirectional learning.
                self.observe(&peer, &origin);
                for r in &replies {
                    self.observe(&origin, r);
                    if !shortlist.contains(r) {
                        shortlist.push(*r);
                    }
                }
            }
            // Termination: the round changed nothing about the k closest
            // candidates, and the nearest of them has been queried — the
            // result set has stabilized.
            shortlist.sort_by_key(|n| n.xor(target));
            let mut top_k_after = shortlist.clone();
            top_k_after.truncate(k);
            if top_k_after == top_k_before {
                let nearest_unqueried_exists = top_k_after
                    .iter()
                    .filter(|n| self.nodes.contains_key(n))
                    .min_by_key(|n| n.xor(target))
                    .is_some_and(|n| !queried.contains(n));
                if !nearest_unqueried_exists {
                    break;
                }
            }
        }
        shortlist.retain(|n| self.nodes.contains_key(n));
        shortlist.sort_by_key(|n| n.xor(target));
        shortlist.truncate(k);
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.stats.hops.fetch_add(hops as u64, Ordering::Relaxed);
        (shortlist, hops)
    }

    /// Ground truth: the live node with minimal XOR distance to `key`.
    pub fn nearest_node(&self, key: &Key) -> Option<Key> {
        self.order.iter().min_by_key(|n| n.xor(key)).copied()
    }

    /// Joins `id` via the live `bootstrap` node: the newcomer looks up its
    /// own identifier, which both fills its table and announces it to the
    /// nodes nearest to it.
    ///
    /// # Errors
    ///
    /// [`ChordError::DuplicateNode`] / [`ChordError::UnknownNode`] mirror
    /// the Chord substrate's join errors.
    pub fn join(&mut self, id: NodeId, bootstrap: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.contains_key(&key) {
            return Err(ChordError::DuplicateNode(id));
        }
        if !self.nodes.contains_key(bootstrap.key()) {
            return Err(ChordError::UnknownNode(bootstrap));
        }
        self.nodes.insert(key, KadNodeState::new());
        let pos = self.order.binary_search(&key).unwrap_err();
        self.order.insert(pos, key);
        self.observe(&key, bootstrap.key());
        let (_closest, _hops) = self.find_closest(key, &key.clone());
        // Take over the keys now closest to the newcomer from their
        // previous owners (the re-publication the protocol does lazily).
        self.rebalance_keys();
        Ok(())
    }

    /// Abruptly removes a node; its stored data is lost unless
    /// `store_width > 1` placed copies elsewhere.
    ///
    /// # Errors
    ///
    /// [`ChordError::UnknownNode`] if `id` is not live.
    pub fn fail(&mut self, id: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.remove(&key).is_none() {
            return Err(ChordError::UnknownNode(id));
        }
        let pos = self.order.binary_search(&key).expect("order mirrors nodes");
        self.order.remove(pos);
        Ok(())
    }

    /// Re-places every stored key on its current `store_width` closest
    /// nodes (Kademlia's periodic re-publication, done eagerly).
    pub fn rebalance_keys(&mut self) {
        let mut all: BTreeMap<Key, Vec<Bytes>> = BTreeMap::new();
        for state in self.nodes.values() {
            for (key, values) in state.store.iter() {
                let merged = all.entry(*key).or_default();
                for v in values {
                    if !merged.contains(v) {
                        merged.push(v.clone());
                    }
                }
            }
        }
        for (key, values) in all {
            let targets = self.store_set(&key);
            for (node_key, state) in self.nodes.iter_mut() {
                if targets.contains(node_key) {
                    for v in &values {
                        state.store.put(key, v.clone());
                    }
                } else {
                    state.store.remove_all(&key);
                }
            }
        }
    }

    /// The nodes that should hold `key`: the `store_width` closest.
    fn store_set(&self, key: &Key) -> Vec<Key> {
        let mut nodes = self.order.clone();
        nodes.sort_by_key(|n| n.xor(key));
        nodes.truncate(self.cfg.store_width.max(1));
        nodes
    }

    fn pick_origin(&self) -> Option<Key> {
        if self.order.is_empty() {
            return None;
        }
        let i = self.next_origin.fetch_add(1, Ordering::Relaxed) as usize;
        Some(self.order[i % self.order.len()])
    }

    /// Read-only view of one node's store.
    pub fn store_of(&self, id: &NodeId) -> Option<&NodeStore> {
        self.nodes.get(id.key()).map(|s| &s.store)
    }
}

impl Default for KademliaNetwork {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket in `a`'s table where `b` belongs: the index of the highest
/// differing bit.
fn bucket_index(a: &Key, b: &Key) -> usize {
    let lz = a.xor(b).leading_zeros();
    // lz == 160 impossible here (a != b); highest differing bit index:
    KEY_BITS - 1 - lz.min(KEY_BITS - 1)
}

impl KademliaNetwork {
    fn execute_inner(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let Some(origin) = self.pick_origin() else {
            return Err(DhtError::NoLiveNodes);
        };
        match op {
            DhtOp::NodeFor(key) => {
                let node = self.nearest_node(&key).expect("non-empty network");
                Ok(DhtResponse::Node(NodeId::from_key(node)))
            }
            DhtOp::Get(key) => Ok(DhtResponse::Values(self.get(&key))),
            DhtOp::Put { key, value } => {
                let (_closest, _hops) = self.find_closest(origin, &key);
                self.stats.messages.fetch_add(2, Ordering::Relaxed);
                let targets = self.store_set(&key);
                let mut stored = false;
                for t in targets {
                    let state = self.nodes.get_mut(&t).expect("live node");
                    stored |= state.store.put(key, value.clone());
                }
                Ok(DhtResponse::Stored(stored))
            }
            DhtOp::Remove { key, value } => {
                let (_closest, _hops) = self.find_closest(origin, &key);
                self.stats.messages.fetch_add(2, Ordering::Relaxed);
                let mut removed = false;
                for t in self.store_set(&key) {
                    let state = self.nodes.get_mut(&t).expect("live node");
                    removed |= state.store.remove(&key, &value);
                }
                Ok(DhtResponse::Removed(removed))
            }
        }
    }
}

impl Dht for KademliaNetwork {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        // Responsibility is XOR-nearest; the iterative lookup (with table
        // learning) lives on the mutating paths.
        self.nearest_node(key).map(NodeId::from_key)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.order.iter().copied().map(NodeId::from_key).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        self.stats.messages.fetch_add(2, Ordering::Relaxed);
        let mut out: Vec<Bytes> = Vec::new();
        for t in self.store_set(key) {
            if let Some(state) = self.nodes.get(&t) {
                for v in state.store.get(key) {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
            if !out.is_empty() {
                break;
            }
        }
        out
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        crate::storage::merged_entries(self.nodes.values().map(|state| &state.store))
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            lookups: self.stats.lookups.load(Ordering::Relaxed),
            hops: self.stats.hops.load(Ordering::Relaxed),
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

impl NodeChurn for KademliaNetwork {
    fn spawn(&mut self, id: NodeId) -> bool {
        let Some(bootstrap) = self.order.first().copied() else {
            return false;
        };
        self.join(id, NodeId::from_key(bootstrap)).is_ok()
    }

    fn kill(&mut self, id: NodeId) -> bool {
        self.fail(id).is_ok()
    }

    fn stabilize(&mut self) {
        self.rebalance_keys();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Key> {
        (0..n).map(|i| Key::hash_of(&format!("kad-{i}"))).collect()
    }

    #[test]
    fn bucket_index_is_highest_differing_bit() {
        let zero = Key::ZERO;
        assert_eq!(bucket_index(&zero, &Key::from_u64(1)), 0);
        assert_eq!(bucket_index(&zero, &Key::from_u64(2)), 1);
        assert_eq!(bucket_index(&zero, &Key::from_u64(3)), 1);
        assert_eq!(bucket_index(&zero, &Key::power_of_two(159)), 159);
    }

    #[test]
    fn lookup_finds_globally_nearest_node() {
        let mut net = KademliaNetwork::with_nodes(keys(64));
        let origins = net.nodes();
        for i in 0..100 {
            let target = Key::hash_of(&format!("t{i}"));
            let truth = net.nearest_node(&target).unwrap();
            let origin = *origins[i % origins.len()].key();
            let (closest, _hops) = net.find_closest(origin, &target);
            assert_eq!(closest[0], truth, "target {i}");
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut net = KademliaNetwork::with_nodes(keys(256));
        let origins = net.nodes();
        let mut total = 0u32;
        for i in 0..100 {
            let target = Key::hash_of(&format!("probe{i}"));
            let origin = *origins[i % origins.len()].key();
            let (_c, hops) = net.find_closest(origin, &target);
            total += hops;
        }
        let mean = total as f64 / 100.0;
        assert!(
            mean < 6.0,
            "mean lookup rounds {mean} too high for 256 nodes"
        );
        assert!(mean >= 1.0);
    }

    #[test]
    fn put_get_roundtrip() {
        let mut net = KademliaNetwork::with_nodes(keys(32));
        for i in 0..50 {
            let k = Key::hash_of(&format!("item{i}"));
            assert!(net.put(k, Bytes::from(format!("v{i}"))));
        }
        for i in 0..50 {
            let k = Key::hash_of(&format!("item{i}"));
            assert_eq!(net.get(&k), vec![Bytes::from(format!("v{i}"))]);
        }
    }

    #[test]
    fn multi_value_and_remove() {
        let mut net = KademliaNetwork::with_nodes(keys(16));
        let k = Key::hash_of("multi");
        assert!(net.put(k, Bytes::from_static(b"a")));
        assert!(net.put(k, Bytes::from_static(b"b")));
        assert!(!net.put(k, Bytes::from_static(b"a")));
        assert_eq!(net.get(&k).len(), 2);
        assert!(net.remove(&k, b"a"));
        assert_eq!(net.get(&k), vec![Bytes::from_static(b"b")]);
    }

    #[test]
    fn data_is_stored_on_the_nearest_node() {
        let mut net = KademliaNetwork::with_nodes(keys(32));
        let k = Key::hash_of("placed");
        net.put(k, Bytes::from_static(b"v"));
        let nearest = NodeId::from_key(net.nearest_node(&k).unwrap());
        assert!(net.store_of(&nearest).unwrap().contains_key(&k));
    }

    #[test]
    fn join_then_lookup_reaches_newcomer() {
        let ids = keys(32);
        let mut net = KademliaNetwork::with_nodes(ids.clone());
        let newcomer = NodeId::hash_of("kad-newcomer");
        net.join(newcomer, NodeId::from_key(ids[0])).unwrap();
        assert_eq!(net.len(), 33);
        // A lookup for the newcomer's own key finds it.
        let (closest, _) = net.find_closest(ids[1], newcomer.key());
        assert_eq!(closest[0], *newcomer.key());
    }

    #[test]
    fn join_takes_over_nearby_keys() {
        let ids = keys(16);
        let mut net = KademliaNetwork::with_nodes(ids.clone());
        let data: Vec<Key> = (0..60).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        net.join(NodeId::hash_of("kad-new"), NodeId::from_key(ids[0]))
            .unwrap();
        for (i, k) in data.iter().enumerate() {
            assert_eq!(net.get(k), vec![Bytes::from(format!("v{i}"))], "key {i}");
        }
    }

    #[test]
    fn join_errors() {
        let ids = keys(4);
        let mut net = KademliaNetwork::with_nodes(ids.clone());
        let dup = NodeId::from_key(ids[0]);
        assert_eq!(
            net.join(dup, NodeId::from_key(ids[1])),
            Err(ChordError::DuplicateNode(dup))
        );
        let ghost = NodeId::hash_of("ghost");
        assert_eq!(
            net.join(NodeId::hash_of("fresh"), ghost),
            Err(ChordError::UnknownNode(ghost))
        );
    }

    #[test]
    fn replication_survives_failure_after_rebalance() {
        let ids = keys(24);
        let cfg = KademliaConfig {
            store_width: 3,
            ..KademliaConfig::default()
        };
        let mut net = KademliaNetwork::with_nodes_and_config(ids, cfg);
        let k = Key::hash_of("precious");
        net.put(k, Bytes::from_static(b"data"));
        let primary = net.nearest_node(&k).unwrap();
        net.fail(NodeId::from_key(primary)).unwrap();
        assert_eq!(net.get(&k), vec![Bytes::from_static(b"data")]);
        net.rebalance_keys();
        // Back to full strength on the new closest set.
        let holders = net
            .nodes()
            .iter()
            .filter(|n| net.store_of(n).is_some_and(|s| s.contains_key(&k)))
            .count();
        assert_eq!(holders, 3);
    }

    #[test]
    fn without_replication_failure_loses_data() {
        let mut net = KademliaNetwork::with_nodes(keys(16));
        let k = Key::hash_of("fragile");
        net.put(k, Bytes::from_static(b"v"));
        let primary = net.nearest_node(&k).unwrap();
        net.fail(NodeId::from_key(primary)).unwrap();
        assert!(net.get(&k).is_empty());
    }

    #[test]
    fn empty_network_behaviour() {
        let mut net = KademliaNetwork::new();
        assert!(net.is_empty());
        assert_eq!(net.node_for(&Key::hash_of("x")), None);
        assert!(!net.put(Key::hash_of("x"), Bytes::from_static(b"v")));
        assert!(net.get(&Key::hash_of("x")).is_empty());
        assert!(!net.remove(&Key::hash_of("x"), b"v"));
    }

    #[test]
    fn stats_accumulate() {
        let mut net = KademliaNetwork::with_nodes(keys(32));
        let before = net.stats();
        net.put(Key::hash_of("s"), Bytes::from_static(b"v"));
        let after = net.stats();
        assert!(after.lookups > before.lookups);
        assert!(after.messages > before.messages);
    }

    #[test]
    fn buckets_respect_capacity() {
        let cfg = KademliaConfig {
            k: 4,
            ..KademliaConfig::default()
        };
        let net = KademliaNetwork::with_nodes_and_config(keys(128), cfg);
        for id in net.order.clone() {
            let state = &net.nodes[&id];
            for bucket in &state.buckets {
                assert!(bucket.len() <= 4);
            }
        }
    }
}
