//! Shared trait-conformance suite, instantiated for every substrate.
//!
//! The index layer is written against [`Dht`] alone, so each substrate —
//! Chord, Kademlia, Pastry, the plain ring, and the TCP-backed remote
//! cluster — must agree on the observable contract: multi-value
//! registration, duplicate suppression, removal of one value among
//! several, `node_for` consistency with `nodes()`, and the
//! message-accounting promise that one RPC request/response pair counts
//! as two messages. Every check drives the substrate through the
//! fallible [`Dht::execute`] / [`Dht::execute_many`] entry points, and
//! the batch entry point is pinned to be observationally identical to
//! the unary sequence on every substrate — including the fault wrapper
//! and the TCP-backed cluster.
//!
//! The `remote` entry is an in-process loopback cluster of real `dhtd`
//! servers (one per node) fronted by a `RemoteDht` client — the same
//! code path the multi-process harness exercises, minus the processes —
//! so "a TCP cluster behaves like an in-process substrate" is pinned
//! here, not just asserted in the net crate's own tests.

use bytes::Bytes;
use p2p_index_dht::{
    ChordNetwork, Dht, DhtError, DhtOp, DhtResponse, FaultConfig, FaultyDht, KademliaNetwork, Key,
    NodeChurn, PastryNetwork, RingDht,
};
use p2p_index_net::{ClusterDht, RemoteDht, RemoteDhtConfig};
use p2p_index_obs::MetricsRegistry;

fn keys(n: usize) -> Vec<Key> {
    (0..n).map(|i| Key::hash_of(&format!("node-{i}"))).collect()
}

/// Every substrate, behind the trait, at the given network size.
fn substrates(n: usize) -> Vec<(&'static str, Box<dyn Dht>)> {
    vec![
        ("ring", Box::new(RingDht::from_ids(keys(n)))),
        (
            "chord",
            Box::new(ChordNetwork::with_perfect_tables(keys(n))),
        ),
        ("kademlia", Box::new(KademliaNetwork::with_nodes(keys(n)))),
        (
            "pastry",
            Box::new(PastryNetwork::with_perfect_tables(keys(n))),
        ),
        (
            "remote",
            Box::new(ClusterDht::start_ring(n).expect("loopback cluster binds")),
        ),
    ]
}

fn exec_put(dht: &mut dyn Dht, key: Key, value: &str) -> bool {
    dht.execute(DhtOp::Put {
        key,
        value: Bytes::from(value.to_string()),
    })
    .expect("put on live network")
    .into_stored()
}

fn exec_get(dht: &mut dyn Dht, key: Key) -> Vec<Bytes> {
    dht.execute(DhtOp::Get(key))
        .expect("get on live network")
        .into_values()
}

fn exec_remove(dht: &mut dyn Dht, key: Key, value: &str) -> bool {
    dht.execute(DhtOp::Remove {
        key,
        value: Bytes::from(value.to_string()),
    })
    .expect("remove on live network")
    .into_removed()
}

fn sorted(mut values: Vec<Bytes>) -> Vec<Bytes> {
    values.sort();
    values
}

#[test]
fn multi_value_registration() {
    for (name, mut dht) in substrates(32) {
        let key = Key::hash_of("/article/author/last/Smith");
        assert!(exec_put(dht.as_mut(), key, "a"), "{name}");
        assert!(exec_put(dht.as_mut(), key, "b"), "{name}");
        assert!(exec_put(dht.as_mut(), key, "c"), "{name}");
        assert_eq!(
            sorted(exec_get(dht.as_mut(), key)),
            vec![
                Bytes::from_static(b"a"),
                Bytes::from_static(b"b"),
                Bytes::from_static(b"c")
            ],
            "{name}: all values registered under one key must come back"
        );
    }
}

#[test]
fn duplicate_registration_is_suppressed() {
    for (name, mut dht) in substrates(32) {
        let key = Key::hash_of("dup-key");
        assert!(exec_put(dht.as_mut(), key, "same"), "{name}: first put");
        assert!(
            !exec_put(dht.as_mut(), key, "same"),
            "{name}: duplicate put must report not-newly-stored"
        );
        assert_eq!(
            exec_get(dht.as_mut(), key).len(),
            1,
            "{name}: duplicate must not create a second copy"
        );
    }
}

#[test]
fn remove_one_value_among_several() {
    for (name, mut dht) in substrates(32) {
        let key = Key::hash_of("shared");
        for v in ["v1", "v2", "v3"] {
            exec_put(dht.as_mut(), key, v);
        }
        assert!(exec_remove(dht.as_mut(), key, "v2"), "{name}");
        assert!(
            !exec_remove(dht.as_mut(), key, "v2"),
            "{name}: removing an absent value must report false"
        );
        assert_eq!(
            sorted(exec_get(dht.as_mut(), key)),
            vec![Bytes::from_static(b"v1"), Bytes::from_static(b"v3")],
            "{name}: the other values must survive"
        );
    }
}

#[test]
fn node_for_agrees_with_nodes() {
    for (name, mut dht) in substrates(24) {
        let nodes = dht.nodes();
        assert_eq!(nodes.len(), 24, "{name}");
        let mut expected = nodes.clone();
        expected.sort();
        expected.dedup();
        assert_eq!(
            nodes, expected,
            "{name}: nodes() must be in ascending identifier order"
        );
        for i in 0..50 {
            let key = Key::hash_of(&format!("probe-{i}"));
            let resolved = dht
                .execute(DhtOp::NodeFor(key))
                .expect("resolution on live network")
                .into_node()
                .expect("NodeFor answers with a node");
            assert!(
                nodes.contains(&resolved),
                "{name}: node_for must name a live node"
            );
            assert_eq!(
                dht.node_for(&key),
                Some(resolved),
                "{name}: execute(NodeFor) and node_for must agree"
            );
        }
    }
}

#[test]
fn rpc_pairs_count_as_two_messages() {
    // On a single-node network no routing hops occur, so the counters
    // isolate the terminal RPC of each operation: put, get, and remove are
    // one request/response pair — two messages — each.
    for (name, mut dht) in substrates(1) {
        assert_eq!(dht.stats().messages, 0, "{name}: fresh network");
        let key = Key::hash_of("pinned");
        exec_put(dht.as_mut(), key, "v");
        assert_eq!(dht.stats().messages, 2, "{name}: put = request + response");
        exec_get(dht.as_mut(), key);
        assert_eq!(dht.stats().messages, 4, "{name}: get = request + response");
        exec_remove(dht.as_mut(), key, "v");
        assert_eq!(
            dht.stats().messages,
            6,
            "{name}: remove = request + response"
        );
    }
}

#[test]
fn metrics_registry_mirrors_message_accounting() {
    // Same single-node isolation as `rpc_pairs_count_as_two_messages`, but
    // observed through an attached registry: the `dht.*` series must equal
    // the substrate's own accounting, op for op.
    for (name, mut dht) in substrates(1) {
        let registry = MetricsRegistry::new();
        dht.set_metrics(registry.clone());
        let key = Key::hash_of("metered");
        exec_put(dht.as_mut(), key, "v");
        assert_eq!(
            registry.counter("dht.messages"),
            2,
            "{name}: put = request + response under the registry"
        );
        exec_get(dht.as_mut(), key);
        assert_eq!(registry.counter("dht.messages"), 4, "{name}: get pair");
        exec_remove(dht.as_mut(), key, "v");
        assert_eq!(registry.counter("dht.messages"), 6, "{name}: remove pair");

        let snap = registry.snapshot();
        assert_eq!(snap.counter("dht.ops"), 3, "{name}");
        assert_eq!(snap.counter("dht.ops.put"), 1, "{name}");
        assert_eq!(snap.counter("dht.ops.get"), 1, "{name}");
        assert_eq!(snap.counter("dht.ops.remove"), 1, "{name}");
        assert_eq!(snap.counter("dht.errors"), 0, "{name}");
        let stats = dht.stats();
        assert_eq!(
            snap.counter("dht.messages"),
            stats.messages,
            "{name}: registry must mirror DhtStats exactly"
        );
        assert_eq!(snap.counter("dht.lookups"), stats.lookups, "{name}");
        assert_eq!(snap.counter("dht.hops"), stats.hops, "{name}");
    }
}

fn faulty_metrics_case<D: Dht + NodeChurn>(name: &str, inner: D) {
    let mut dht = FaultyDht::new(inner, FaultConfig::lossy(7, 0.4));
    let registry = MetricsRegistry::new();
    dht.set_metrics(registry.clone());
    let key = Key::hash_of("retried");
    let mut successes = 0u64;
    for value in ["a", "b", "c"] {
        // A caller-side retry loop, as the index layer's RetryPolicy would
        // drive it: reissue on timeout until the put lands.
        loop {
            match dht.execute(DhtOp::Put {
                key,
                value: Bytes::from(value),
            }) {
                Ok(_) => {
                    successes += 1;
                    break;
                }
                Err(DhtError::Timeout) => continue,
                Err(e) => panic!("{name}: unexpected error {e}"),
            }
        }
    }
    let fstats = dht.fault_stats();
    assert!(fstats.injected() > 0, "{name}: loss 0.4 must inject faults");

    // fault.* mirrors the wrapper's own accounting...
    let snap = registry.snapshot();
    assert_eq!(snap.counter("fault.attempts"), fstats.attempts, "{name}");
    assert_eq!(
        snap.counter("fault.requests_lost"),
        fstats.requests_lost,
        "{name}"
    );
    assert_eq!(
        snap.counter("fault.responses_lost"),
        fstats.responses_lost,
        "{name}"
    );
    // ...and dht.* mirrors the wrapped substrate's: only operations that
    // actually reached it (successes + lost responses) count, two
    // messages each, even through the retry storm.
    let expected_messages = 2 * (successes + fstats.responses_lost);
    assert_eq!(dht.stats().messages, expected_messages, "{name}");
    assert_eq!(
        snap.counter("dht.messages"),
        expected_messages,
        "{name}: registry and substrate must agree under faults"
    );
}

#[test]
fn metrics_survive_faulty_retries() {
    faulty_metrics_case("ring", RingDht::from_ids(keys(1)));
    faulty_metrics_case("chord", ChordNetwork::with_perfect_tables(keys(1)));
    faulty_metrics_case("kademlia", KademliaNetwork::with_nodes(keys(1)));
    faulty_metrics_case("pastry", PastryNetwork::with_perfect_tables(keys(1)));
}

#[test]
fn remote_cluster_conforms_with_faulty_substrate_behind_the_server() {
    // The fault injector sits *behind* the server: injected DhtErrors
    // travel the wire as typed error frames and the remote client's
    // caller retries them exactly as it would retry a local FaultyDht.
    // The seed is fixed, so the fault schedule is reproducible.
    let mut dht = ClusterDht::start_lossy_ring(1, 7, 0.4).expect("loopback cluster binds");
    let key = Key::hash_of("retried");
    let mut timeouts = 0u64;
    for value in ["a", "b", "c"] {
        loop {
            match dht.execute(DhtOp::Put {
                key,
                value: Bytes::from(value),
            }) {
                Ok(_) => break,
                Err(DhtError::Timeout) => timeouts += 1,
                Err(e) => panic!("remote-faulty: unexpected error {e}"),
            }
        }
    }
    assert!(
        timeouts > 0,
        "loss 0.4 must surface remote faults over the wire"
    );
    assert_eq!(
        sorted(exec_get(&mut dht, key)),
        vec![
            Bytes::from_static(b"a"),
            Bytes::from_static(b"b"),
            Bytes::from_static(b"c")
        ],
        "remote-faulty: retried puts must all land exactly once"
    );
    // Accounting: only the terminal RPCs that got a response count; each
    // counted pair is two messages, same as every in-process substrate.
    let stats = dht.stats();
    assert_eq!(stats.messages, 2 * (3 + timeouts + 1));
}

#[test]
fn detached_registry_records_nothing() {
    for (name, mut dht) in substrates(4) {
        let key = Key::hash_of("silent");
        exec_put(dht.as_mut(), key, "v");
        let registry = MetricsRegistry::disabled();
        dht.set_metrics(registry.clone());
        exec_get(dht.as_mut(), key);
        assert!(
            registry.snapshot().is_empty(),
            "{name}: the disabled registry must stay empty"
        );
        assert!(dht.stats().messages >= 4, "{name}: ops still happen");
    }
}

#[test]
fn empty_network_reports_no_live_nodes() {
    let empties: Vec<(&'static str, Box<dyn Dht>)> = vec![
        ("ring", Box::new(RingDht::new())),
        ("chord", Box::new(ChordNetwork::new())),
        ("kademlia", Box::new(KademliaNetwork::new())),
        ("pastry", Box::new(PastryNetwork::new())),
        (
            "remote",
            Box::new(RemoteDht::connect(Vec::new(), RemoteDhtConfig::default())),
        ),
    ];
    for (name, mut dht) in empties {
        for op in [
            DhtOp::NodeFor(Key::hash_of("k")),
            DhtOp::Get(Key::hash_of("k")),
            DhtOp::Put {
                key: Key::hash_of("k"),
                value: Bytes::from_static(b"v"),
            },
            DhtOp::Remove {
                key: Key::hash_of("k"),
                value: Bytes::from_static(b"v"),
            },
        ] {
            assert_eq!(
                dht.execute(op.clone()),
                Err(DhtError::NoLiveNodes),
                "{name}: {op:?}"
            );
        }
    }
}

/// A deterministic mixed workload cycling over a few keys: puts, gets,
/// resolutions, and removes (some hitting stored values, some absent).
fn mixed_ops(n: usize) -> Vec<DhtOp> {
    (0..n)
        .map(|i| {
            let key = Key::hash_of(&format!("batch-{}", i % 7));
            match i % 4 {
                0 => DhtOp::Put {
                    key,
                    value: Bytes::from(format!("v{i}")),
                },
                1 => DhtOp::Get(key),
                2 => DhtOp::NodeFor(key),
                _ => DhtOp::Remove {
                    key: Key::hash_of("batch-0"),
                    value: Bytes::from_static(b"v0"),
                },
            }
        })
        .collect()
}

#[test]
fn execute_many_matches_unary_execute() {
    // The batch entry point is an API convenience plus a wire
    // optimization — never a semantic change. For every substrate a
    // mixed batch must return exactly what a twin issuing the same ops
    // one by one returns, with identical final accounting.
    let ops = mixed_ops(24);
    for ((name, mut batched), (_, mut unary)) in substrates(8).into_iter().zip(substrates(8)) {
        let batch_results = batched.execute_many(ops.clone());
        let unary_results: Vec<_> = ops.iter().cloned().map(|op| unary.execute(op)).collect();
        assert_eq!(
            batch_results, unary_results,
            "{name}: batch results must match the unary sequence op for op"
        );
        assert_eq!(
            batched.stats(),
            unary.stats(),
            "{name}: per-op accounting must survive batching"
        );
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    for (name, mut dht) in substrates(4) {
        assert!(dht.execute_many(Vec::new()).is_empty(), "{name}");
        assert_eq!(dht.stats().messages, 0, "{name}: no ops, no messages");
    }
}

#[test]
fn execute_many_preserves_fault_schedules() {
    // The fault wrapper keeps the trait's default per-op loop, so a batch
    // draws its fault rolls in exactly the order the unary sequence
    // would: same seed, same schedule, same per-op outcomes.
    let ops = mixed_ops(30);
    let mut batched = FaultyDht::new(RingDht::from_ids(keys(4)), FaultConfig::lossy(11, 0.3));
    let mut unary = FaultyDht::new(RingDht::from_ids(keys(4)), FaultConfig::lossy(11, 0.3));
    let batch_results = batched.execute_many(ops.clone());
    let unary_results: Vec<_> = ops.into_iter().map(|op| unary.execute(op)).collect();
    assert_eq!(batch_results, unary_results);
    assert!(
        batch_results.iter().any(|r| r.is_err()),
        "loss 0.3 over 30 ops must inject at least one fault"
    );
    assert!(
        batch_results.iter().any(|r| r.is_ok()),
        "and must not drop everything"
    );
    assert_eq!(
        batched.fault_stats().injected(),
        unary.fault_stats().injected()
    );
    assert_eq!(batched.stats(), unary.stats());
}

#[test]
fn replicated_remote_cluster_matches_in_process_twin_batch_and_unary() {
    // Replication is a durability feature, not a semantic one: a
    // quorum-read cluster (R=3, W=2, Rq=2) must answer a mixed batch —
    // and the same ops issued one by one — exactly like an in-process
    // unreplicated ring, with identical DhtStats. Fan-out writes and
    // quorum reads happen, but the accounting convention stays one
    // completed op = two messages + one lookup, independent of how many
    // replicas were touched.
    let ops = mixed_ops(24);
    let mut batched =
        ClusterDht::start_replicated_ring(5, 3, 2, 2).expect("loopback cluster binds");
    let mut unary = ClusterDht::start_replicated_ring(5, 3, 2, 2).expect("loopback cluster binds");
    let mut twin = RingDht::from_ids(keys(5));
    let batch_results = batched.execute_many(ops.clone());
    let unary_results: Vec<_> = ops.iter().cloned().map(|op| unary.execute(op)).collect();
    let twin_results = twin.execute_many(ops);
    assert_eq!(
        batch_results, unary_results,
        "replicated batch must match the replicated unary sequence"
    );
    assert_eq!(
        batch_results, twin_results,
        "replicated cluster must answer like the in-process ring"
    );
    assert_eq!(
        batched.stats(),
        twin.stats(),
        "quorum fan-out must not leak into the accounting convention"
    );
    assert_eq!(batched.stats(), unary.stats());
}

#[test]
fn stale_replica_is_invisible_to_conformance_and_repair_restores_it() {
    // One member's substrate is wiped in place — a replica serving stale
    // (empty) data. At read quorum 2 the cluster must keep answering
    // exactly like the in-process twin (the lowest-ranked non-empty
    // reply wins), with unchanged accounting; after an anti-entropy
    // pass the wiped member holds its copies again and answers alike.
    let mut remote = ClusterDht::start_replicated_ring(3, 3, 2, 2).expect("loopback cluster binds");
    let mut twin = RingDht::from_ids(keys(3));
    let data: Vec<Key> = (0..12)
        .map(|i| Key::hash_of(&format!("stale-{i}")))
        .collect();
    for (i, key) in data.iter().enumerate() {
        let value = format!("v{i}");
        assert!(exec_put(&mut remote, *key, &value));
        assert!(exec_put(&mut twin, *key, &value));
    }
    let member_key = *remote.cluster().members()[1].0.key();
    drop(
        remote
            .cluster()
            .server(1)
            .replace_substrate(Box::new(RingDht::from_ids([member_key]))),
    );
    for key in &data {
        assert_eq!(
            exec_get(&mut remote, *key),
            exec_get(&mut twin, *key),
            "a stale replica must be masked by the read quorum"
        );
    }
    remote.cluster().repair_all();
    for key in &data {
        assert_eq!(
            exec_get(&mut remote, *key),
            exec_get(&mut twin, *key),
            "repair must not change what the quorum already answered"
        );
    }
    assert_eq!(
        remote.stats(),
        twin.stats(),
        "stale-replica masking and repair must be accounting-neutral"
    );
}

#[test]
fn convenience_wrappers_match_execute() {
    for (name, mut dht) in substrates(16) {
        let key = Key::hash_of("wrapped");
        assert!(dht.put(key, Bytes::from_static(b"v")), "{name}");
        assert_eq!(
            dht.execute(DhtOp::Get(key)).unwrap(),
            DhtResponse::Values(vec![Bytes::from_static(b"v")]),
            "{name}: wrapper put must be visible through execute"
        );
        assert!(dht.remove(&key, b"v"), "{name}");
        assert!(dht.get(&key).is_empty(), "{name}");
    }
}
