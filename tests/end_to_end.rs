//! Cross-crate integration tests: the full stack (workload → descriptors →
//! queries → index schemes → DHT) exercised end to end.

use p2p_index::prelude::*;

fn publish_corpus(service: &mut IndexService<RingDht>, corpus: &Corpus, scheme: &dyn IndexScheme) {
    for article in corpus.articles() {
        service
            .publish(&article.descriptor(), article.file_name(), scheme)
            .expect("publish succeeds on a live network");
    }
}

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        articles: 250,
        author_pool: 60,
        seed: 17,
        ..CorpusConfig::default()
    })
}

/// Ground truth via brute force: which files' descriptors match a query?
fn brute_force(corpus: &Corpus, query: &Query) -> Vec<String> {
    let mut files: Vec<String> = corpus
        .articles()
        .iter()
        .filter(|a| query.matches(a.descriptor().root()))
        .map(|a| a.file_name())
        .collect();
    files.sort();
    files
}

#[test]
fn search_results_match_brute_force_for_indexed_structures() {
    let corpus = corpus();
    let mut service = IndexService::new(RingDht::with_named_nodes(80), CachePolicy::None);
    publish_corpus(&mut service, &corpus, &SimpleScheme);

    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 23);
    let mut checked = 0;
    for item in generator.take_queries(300) {
        // Author+year is not indexed: search returns the *target-reachable*
        // subset via generalization, which still satisfies the query, so
        // brute-force equality applies there too.
        let report = service.search(&item.query).expect("search succeeds");
        let mut found: Vec<String> = report.files.iter().map(|h| h.file.clone()).collect();
        found.sort();
        found.dedup();
        let expected = brute_force(&corpus, &item.query);
        assert_eq!(found, expected, "query {}", item.query);
        checked += 1;
    }
    assert_eq!(checked, 300);
}

#[test]
fn search_is_sound_never_returns_non_matching_files() {
    let corpus = corpus();
    for scheme in [
        &SimpleScheme as &dyn IndexScheme,
        &FlatScheme,
        &ComplexScheme,
    ] {
        let mut service = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::None);
        publish_corpus(&mut service, &corpus, scheme);
        let mut generator = QueryGenerator::new(&corpus, StructureMix::bibfinder_log(), 31);
        for item in generator.take_queries(150) {
            let report = service.search(&item.query).expect("search succeeds");
            for hit in &report.files {
                let id: usize = hit
                    .file
                    .trim_start_matches("article-")
                    .trim_end_matches(".pdf")
                    .parse()
                    .expect("file name encodes the article id");
                let d = corpus.article(id).expect("valid article id").descriptor();
                assert!(
                    item.query.matches(d.root()),
                    "{}: {} returned for non-matching {}",
                    scheme.name(),
                    hit.file,
                    item.query
                );
            }
        }
    }
}

#[test]
fn all_three_schemes_agree_on_results() {
    let corpus = corpus();
    let mut services: Vec<IndexService<RingDht>> = Vec::new();
    for scheme in [
        &SimpleScheme as &dyn IndexScheme,
        &FlatScheme,
        &ComplexScheme,
    ] {
        let mut s = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::None);
        publish_corpus(&mut s, &corpus, scheme);
        services.push(s);
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 47);
    for item in generator.take_queries(100) {
        let mut results: Vec<Vec<String>> = Vec::new();
        for service in &mut services {
            let report = service.search(&item.query).expect("search succeeds");
            let mut files: Vec<String> = report.files.iter().map(|h| h.file.clone()).collect();
            files.sort();
            results.push(files);
        }
        assert_eq!(results[0], results[1], "simple vs flat on {}", item.query);
        assert_eq!(
            results[0], results[2],
            "simple vs complex on {}",
            item.query
        );
    }
}

#[test]
fn ring_and_chord_substrates_give_identical_results() {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 120,
        author_pool: 40,
        seed: 5,
        ..CorpusConfig::default()
    });
    let ids: Vec<p2p_index::dht::Key> = (0..40)
        .map(|i| p2p_index::dht::Key::hash_of(&format!("node-{i}")))
        .collect();

    let mut over_ring = IndexService::new(RingDht::from_ids(ids.clone()), CachePolicy::None);
    let mut over_chord = IndexService::new(
        p2p_index::dht::ChordNetwork::with_perfect_tables(ids),
        CachePolicy::None,
    );
    for article in corpus.articles() {
        over_ring
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .unwrap();
        over_chord
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .unwrap();
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 3);
    for item in generator.take_queries(120) {
        let mut ring_files: Vec<String> = over_ring
            .search(&item.query)
            .unwrap()
            .files
            .iter()
            .map(|h| h.file.clone())
            .collect();
        let mut chord_files: Vec<String> = over_chord
            .search(&item.query)
            .unwrap()
            .files
            .iter()
            .map(|h| h.file.clone())
            .collect();
        ring_files.sort();
        chord_files.sort();
        assert_eq!(
            ring_files, chord_files,
            "substrates disagree on {}",
            item.query
        );
    }
}

#[test]
fn deletion_is_complete_and_leaves_no_dangling_entries() {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 80,
        author_pool: 25,
        seed: 29,
        ..CorpusConfig::default()
    });
    let mut service = IndexService::new(RingDht::with_named_nodes(40), CachePolicy::None);
    publish_corpus(&mut service, &corpus, &SimpleScheme);

    // Delete the first half of the corpus.
    for article in &corpus.articles()[..40] {
        service
            .unpublish(&article.descriptor(), &article.file_name(), &SimpleScheme)
            .unwrap();
    }
    // Deleted articles are unreachable; surviving ones still found.
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 13);
    for item in generator.take_queries(200) {
        let report = service.search(&item.query).unwrap();
        let files: Vec<&str> = report.files.iter().map(|h| h.file.as_str()).collect();
        for article in &corpus.articles()[..40] {
            assert!(
                !files.contains(&article.file_name().as_str()),
                "deleted {} resurfaced for {}",
                article.file_name(),
                item.query
            );
        }
        // Soundness still holds for survivors.
        for f in &files {
            let id: usize = f
                .trim_start_matches("article-")
                .trim_end_matches(".pdf")
                .parse()
                .unwrap();
            assert!(id >= 40, "deleted article {id} returned");
        }
    }

    // Deleting everything leaves the DHT with no index entries at all.
    for article in &corpus.articles()[40..] {
        service
            .unpublish(&article.descriptor(), &article.file_name(), &SimpleScheme)
            .unwrap();
    }
    assert_eq!(
        service.dht().total_keys(),
        0,
        "recursive cleanup must empty the network"
    );
}

#[test]
fn cached_and_uncached_searches_return_identical_files() {
    let corpus = corpus();
    let mut plain = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::None);
    let mut cached = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::Single);
    publish_corpus(&mut plain, &corpus, &SimpleScheme);
    publish_corpus(&mut cached, &corpus, &SimpleScheme);

    // Warm the cache through the user model.
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 61);
    for item in generator.take_queries(500) {
        let article = corpus.article(item.target).unwrap();
        let msd = Query::most_specific(&article.descriptor());
        p2p_index::sim::simulation::user_search(
            &mut cached,
            &item.query,
            &msd,
            &article.file_name(),
        );
    }

    // Shortcut entries must never change the *result set* of searches.
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 62);
    for item in generator.take_queries(150) {
        let mut a: Vec<String> = plain
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        let mut b: Vec<String> = cached
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        a.sort();
        b.sort();
        b.dedup();
        assert_eq!(a, b, "cache changed results of {}", item.query);
    }
}

#[test]
fn fig4_scheme_supports_last_name_searches() {
    let corpus = corpus();
    let mut service = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::None);
    publish_corpus(&mut service, &corpus, &Fig4Scheme);
    let article = corpus.article(0).unwrap();
    let (_, last) = article.primary_author();
    let q = QueryBuilder::new("article")
        .value("author/last", last)
        .build();
    let report = service.search(&q).unwrap();
    assert!(
        report.files.iter().any(|h| h.file == article.file_name()),
        "last-name search must reach the article through the Fig. 4 hierarchy"
    );
    let expected = brute_force(&corpus, &q);
    let mut found: Vec<String> = report.files.iter().map(|h| h.file.clone()).collect();
    found.sort();
    assert_eq!(found, expected);
}

#[test]
fn kademlia_substrate_gives_identical_results() {
    // Third substrate family (XOR metric): the index layer is agnostic.
    let corpus = Corpus::generate(CorpusConfig {
        articles: 100,
        author_pool: 30,
        seed: 8,
        ..CorpusConfig::default()
    });
    let ids: Vec<p2p_index::dht::Key> = (0..32)
        .map(|i| p2p_index::dht::Key::hash_of(&format!("node-{i}")))
        .collect();
    let mut over_ring = IndexService::new(RingDht::from_ids(ids.clone()), CachePolicy::None);
    let mut over_kad = IndexService::new(KademliaNetwork::with_nodes(ids), CachePolicy::None);
    for article in corpus.articles() {
        over_ring
            .publish(&article.descriptor(), article.file_name(), &ComplexScheme)
            .unwrap();
        over_kad
            .publish(&article.descriptor(), article.file_name(), &ComplexScheme)
            .unwrap();
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 77);
    for item in generator.take_queries(100) {
        let mut a: Vec<String> = over_ring
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        let mut b: Vec<String> = over_kad
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "kademlia disagrees on {}", item.query);
    }
}

#[test]
fn browse_by_author_initial_letter() {
    // §IV-C substring indexes: initial-letter entries let users browse
    // authors alphabetically and refine.
    let corpus = Corpus::generate(CorpusConfig {
        articles: 150,
        author_pool: 40,
        seed: 41,
        ..CorpusConfig::default()
    });
    let scheme = InitialLetterScheme::new(SimpleScheme, 1);
    let mut service = IndexService::new(RingDht::with_named_nodes(50), CachePolicy::None);
    for article in corpus.articles() {
        service
            .publish(&article.descriptor(), article.file_name(), &scheme)
            .unwrap();
    }
    // Browse every article through its primary author's initial.
    for article in corpus.articles().iter().take(30) {
        let (_, last) = article.primary_author();
        let initial: String = last.chars().take(1).collect();
        let q: Query = format!("/article[author/last^={initial}]").parse().unwrap();
        let report = service.search(&q).unwrap();
        assert!(
            report.files.iter().any(|h| h.file == article.file_name()),
            "initial {initial} must reach {}",
            article.file_name()
        );
        // Soundness: all results really have a matching author initial.
        for hit in &report.files {
            let id: usize = hit
                .file
                .trim_start_matches("article-")
                .trim_end_matches(".pdf")
                .parse()
                .unwrap();
            let a = corpus.article(id).unwrap();
            assert!(
                a.authors.iter().any(|(_, l)| l.starts_with(&initial)),
                "{} has no author starting with {initial}",
                hit.file
            );
        }
    }
}

#[test]
fn pastry_substrate_gives_identical_results() {
    // Fourth substrate (prefix routing / PAST): still the same results.
    let corpus = Corpus::generate(CorpusConfig {
        articles: 100,
        author_pool: 30,
        seed: 8,
        ..CorpusConfig::default()
    });
    let ids: Vec<p2p_index::dht::Key> = (0..32)
        .map(|i| p2p_index::dht::Key::hash_of(&format!("node-{i}")))
        .collect();
    let mut over_ring = IndexService::new(RingDht::from_ids(ids.clone()), CachePolicy::None);
    let mut over_pastry =
        IndexService::new(PastryNetwork::with_perfect_tables(ids), CachePolicy::None);
    for article in corpus.articles() {
        over_ring
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .unwrap();
        over_pastry
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .unwrap();
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 91);
    for item in generator.take_queries(100) {
        let mut a: Vec<String> = over_ring
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        let mut b: Vec<String> = over_pastry
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "pastry disagrees on {}", item.query);
    }
}
