//! The adaptive distributed cache under a skewed workload.
//!
//! Reproduces §IV-C / §V-D in miniature: a power-law query workload hits a
//! small library, and shortcut entries accumulate along successful lookup
//! paths. The example prints how the hit ratio and the interaction count
//! evolve as the cache warms, and compares LRU capacities.
//!
//! Run with: `cargo run --example adaptive_caching`

use p2p_index::index::IndexTarget;
use p2p_index::prelude::*;
use p2p_index::sim::simulation::user_search;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 400,
        author_pool: 100,
        seed: 11,
        ..CorpusConfig::default()
    });

    for policy in [
        CachePolicy::None,
        CachePolicy::Single,
        CachePolicy::Lru(10),
        CachePolicy::Lru(30),
    ] {
        let mut service = IndexService::new(RingDht::with_named_nodes(100), policy);
        for article in corpus.articles() {
            service.publish(&article.descriptor(), article.file_name(), &SimpleScheme)?;
        }
        service.reset_metrics();

        let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 99);
        let batches = 5;
        let batch_size = 1_000;
        println!("policy {policy:?}");
        for batch in 1..=batches {
            let mut interactions = 0u64;
            let mut hits = 0u64;
            for _ in 0..batch_size {
                let item = generator.next_query();
                let article = corpus.article(item.target).expect("valid target");
                let msd = Query::most_specific(&article.descriptor());
                let outcome = user_search(&mut service, &item.query, &msd, &article.file_name());
                interactions += outcome.interactions as u64;
                hits += outcome.cache_hit as u64;
            }
            println!(
                "  batch {batch}: {:.2} interactions/query, hit ratio {:>5.1}%",
                interactions as f64 / batch_size as f64,
                100.0 * hits as f64 / batch_size as f64,
            );
        }
        let cached: usize = service.cache_sizes().iter().map(|(_, c)| c).sum();
        let (full, empty) = service.cache_fill_fractions();
        println!(
            "  cached keys total {cached}, caches full {:.0}%, empty {:.0}%\n",
            full * 100.0,
            empty * 100.0
        );
    }

    // Manual short-circuit entries (§IV-C): make the most popular article
    // reachable in two hops from a very broad query.
    let mut service = IndexService::new(RingDht::with_named_nodes(100), CachePolicy::None);
    for article in corpus.articles() {
        service.publish(&article.descriptor(), article.file_name(), &SimpleScheme)?;
    }
    let star = corpus.article(0).expect("non-empty corpus");
    let (first, last) = star.primary_author();
    let author_query = QueryBuilder::new("article")
        .value("author/first", first)
        .value("author/last", last)
        .build();
    let msd = Query::most_specific(&star.descriptor());
    service.insert_mapping(author_query.clone(), msd.clone())?;
    let resp = service.lookup_step(&author_query)?;
    let has_shortcut = resp
        .indexed
        .iter()
        .any(|t| matches!(t, IndexTarget::Query(q) if *q == msd));
    println!(
        "short-circuit entry ({author_query} ; MSD) installed: lookup now returns the MSD directly ({has_shortcut})"
    );
    Ok(())
}
