//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `dht` — SHA-1, key arithmetic, Chord routing/puts, ring lookups;
//! * `xpath` — query parsing, matching, covering, MSD derivation;
//! * `index` — publish/lookup/search per scheme, cache operations;
//! * `paper_figures` — one benchmark per paper exhibit (Figs. 7, 9-15,
//!   Table I, §V-B storage), each also printing the regenerated table;
//! * `ablations` — substrate independence, hierarchy depth, cache
//!   capacity sweep.

#![forbid(unsafe_code)]
