//! Retry policies for DHT operations issued by the index layer.
//!
//! The substrate reports faults through [`DhtError`](p2p_index_dht::DhtError);
//! this module decides what the index service does about them. A
//! [`RetryPolicy`] bounds how many attempts each operation gets and shapes
//! the exponential backoff between them. Time is *simulated*: backoff
//! delays are accumulated into the service's logical clock instead of
//! sleeping, so experiments can measure latency cost without wall-clock
//! runtime.
//!
//! The default policy is [`RetryPolicy::none`] — one attempt, no backoff,
//! no RNG draws — which makes a fault-free service bit-for-bit identical to
//! the pre-retry behavior.

use p2p_index_dht::SplitMix64;

/// How the index service retries failed DHT operations.
///
/// Backoff for the `n`-th retry is `base_backoff · 2ⁿ⁻¹`, plus a uniform
/// jitter of up to `jitter` times that value, drawn from the service's
/// seeded RNG (so runs are reproducible). All times are in simulated
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (≥ 1; 1 means "never retry").
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_backoff_ms: u64,
    /// Extra uniform jitter as a fraction of the backoff (0.0 = none).
    pub jitter: f64,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl RetryPolicy {
    /// One attempt, no retries — the behavior-neutral default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// A standard policy: `max_attempts` attempts, 100 ms base backoff,
    /// 50 % jitter, driven by `seed`.
    pub fn with_budget(seed: u64, max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff_ms: 100,
            jitter: 0.5,
            seed,
        }
    }

    /// `true` when this policy can ever retry.
    pub fn retries(&self) -> bool {
        self.max_attempts > 1
    }

    /// The simulated delay before retry number `retry` (1-based), with
    /// jitter drawn from `rng`.
    pub fn backoff_ms(&self, retry: u32, rng: &mut SplitMix64) -> u64 {
        let base = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry - 1).min(32));
        if self.jitter > 0.0 && base > 0 {
            base + (self.jitter * base as f64 * rng.next_f64()) as u64
        } else {
            base
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters for the retry work a service performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// DHT operation attempts issued (including retries).
    pub attempts: u64,
    /// Retries issued (attempts beyond each operation's first).
    pub retries: u64,
    /// Operations that failed after exhausting their attempt budget (or
    /// hit a non-transient fault).
    pub gave_up: u64,
    /// Total simulated backoff delay, in milliseconds.
    pub backoff_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.retries());
        assert_eq!(p, RetryPolicy::default());
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let mut p = RetryPolicy::with_budget(7, 4);
        p.jitter = 0.0;
        let mut rng = SplitMix64::new(7);
        assert_eq!(p.backoff_ms(1, &mut rng), 100);
        assert_eq!(p.backoff_ms(2, &mut rng), 200);
        assert_eq!(p.backoff_ms(3, &mut rng), 400);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy::with_budget(9, 3);
        let mut a = SplitMix64::new(p.seed);
        let mut b = SplitMix64::new(p.seed);
        for retry in 1..=8 {
            let d = p.backoff_ms(retry, &mut a);
            let base = 100u64 << (retry - 1);
            assert!(d >= base, "retry {retry}: {d} < {base}");
            assert!(d <= base + base / 2, "retry {retry}: {d} too large");
            assert_eq!(d, p.backoff_ms(retry, &mut b));
        }
    }

    #[test]
    fn budget_clamps_to_one_attempt() {
        assert_eq!(RetryPolicy::with_budget(0, 0).max_attempts, 1);
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let mut p = RetryPolicy::with_budget(1, u32::MAX);
        p.jitter = 0.0;
        let mut rng = SplitMix64::new(1);
        // The shift is clamped, so very deep retries plateau instead of
        // overflowing the u64 backoff.
        assert_eq!(p.backoff_ms(64, &mut rng), p.backoff_ms(33, &mut rng));
    }
}
