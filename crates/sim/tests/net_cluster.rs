//! Multi-process cluster harness: the acceptance test for the networked
//! substrate.
//!
//! Each test spawns real `repro serve` child processes (one dhtd per
//! node, ephemeral ports), parses the `DHTD LISTENING <addr>` line each
//! daemon prints, and drives the *same* paper workload through an
//! `IndexService<RemoteDht>` that an in-process `RingDht` run sees.
//! Results must be equal — the wire is an implementation detail, not a
//! semantic one.
//!
//! Teardown is deliberate: a wire `Shutdown` frame per member, then
//! `wait()` with a hard deadline, then `kill()`. A hung daemon fails the
//! test rather than the CI job.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use p2p_index_dht::placement::replica_keys;
use p2p_index_dht::{ChordConfig, ChordNetwork, Dht, Key, NodeChurn, NodeId, RingDht};
use p2p_index_net::{RemoteDht, RemoteDhtConfig};
use p2p_index_obs::MetricsRegistry;
use p2p_index_sim::netd::{run_workload, run_workload_with_churn};

/// One spawned `repro serve` daemon and the address it bound.
struct DhtdChild {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `repro serve` with the given extra flags on an ephemeral port
/// and waits for its `DHTD LISTENING <addr>` banner.
fn spawn_dhtd(node_name: &str, extra: &[&str]) -> DhtdChild {
    spawn_dhtd_on(node_name, 0, extra)
}

/// [`spawn_dhtd`] on a fixed port — replicated clusters hand every
/// member the full `NAME=HOST:PORT` list up front, so their ports must
/// be chosen before any daemon starts (and survive a restart).
fn spawn_dhtd_on(node_name: &str, port: u16, extra: &[&str]) -> DhtdChild {
    let port = port.to_string();
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--substrate", "ring", "--port", &port])
        .args(["--node-name", node_name])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon exited before announcing its address")
        .expect("read daemon banner");
    let addr = banner
        .strip_prefix("DHTD LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .parse()
        .expect("parse daemon address");
    // Keep draining stdout in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    DhtdChild { child, addr }
}

fn spawn_cluster(n: usize, extra: &[&str]) -> Vec<DhtdChild> {
    (0..n)
        .map(|i| spawn_dhtd(&format!("node-{i}"), extra))
        .collect()
}

fn members(children: &[DhtdChild]) -> Vec<SocketAddr> {
    children.iter().map(|c| c.addr).collect()
}

/// Sends each member a wire shutdown frame, then waits for every child
/// with a hard deadline; anything still alive is killed and the test
/// fails.
fn shutdown_cluster(children: Vec<DhtdChild>, addrs: &[SocketAddr]) {
    let closer = RemoteDht::connect(RemoteDht::named_members(addrs), RemoteDhtConfig::default());
    closer.shutdown_members();
    let deadline = Instant::now() + Duration::from_secs(10);
    for mut child in children {
        loop {
            match child.child.try_wait().expect("poll child") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    break;
                }
                None if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                None => {
                    child.child.kill().ok();
                    child.child.wait().ok();
                    panic!("daemon ignored shutdown frame; killed");
                }
            }
        }
    }
}

fn remote_client(addrs: &[SocketAddr]) -> RemoteDht {
    RemoteDht::connect(RemoteDht::named_members(addrs), RemoteDhtConfig::default())
}

/// The acceptance criterion: `IndexService<RemoteDht>` against live dhtd
/// processes produces results equal to an in-process run of the same
/// seed — files found, interactions, misses, and DHT stats alike.
#[test]
fn remote_cluster_workload_equals_in_process_run() {
    const NODES: usize = 5;
    let children = spawn_cluster(NODES, &[]);
    let addrs = members(&children);

    let remote = run_workload(remote_client(&addrs), 30, 20, 77).expect("remote workload");
    let local = run_workload(RingDht::with_named_nodes(NODES), 30, 20, 77).expect("local workload");
    assert_eq!(remote, local, "socket hop changed the workload outcome");
    assert!(remote.files_found > 0, "workload found nothing — vacuous");

    shutdown_cluster(children, &addrs);
}

/// net.* frame counters must agree with the substrate's
/// 2-messages-per-completed-op accounting: a lone op is one
/// request/response frame pair, a batch of k is one Batch/BatchReply
/// frame pair carrying k ops — two DHT messages per op either way.
#[test]
fn net_frame_counters_match_message_accounting() {
    let children = spawn_cluster(3, &[]);
    let addrs = members(&children);

    let metrics = MetricsRegistry::new();
    let mut client = remote_client(&addrs);
    client.set_metrics(metrics.clone());
    let outcome = run_workload(client, 18, 12, 5).expect("remote workload");

    let snap = metrics.snapshot();
    let frames_out = snap.counter("net.frames_out");
    let frames_in = snap.counter("net.frames_in");
    let batch_out = snap.counter("net.batch.frames_out");
    let batch_in = snap.counter("net.batch.frames_in");
    let batch_ops = snap.counter("net.batch.ops");
    assert!(frames_out > 0, "no frames sent — vacuous");
    assert!(
        batch_ops > 0,
        "the multi-get fast path never pipelined a batch"
    );
    assert_eq!(frames_out, frames_in, "every request frame got a response");
    assert_eq!(batch_out, batch_in, "every batch frame got a batch reply");
    assert_eq!(
        (frames_out - batch_out) + (frames_in - batch_in) + 2 * batch_ops,
        outcome.messages,
        "2-messages-per-op accounting drifted from wire frame counts"
    );
    assert_eq!(snap.counter("net.transport_errors"), 0);
    assert_eq!(snap.counter("net.decode_errors"), 0);

    shutdown_cluster(children, &addrs);
}

/// `execute_many` against real `dhtd` processes: results and per-op
/// stats identical to an in-process `RingDht` twin, with the wire cost
/// collapsed to one pipelined frame pair per routed member.
#[test]
fn batched_ops_against_live_daemons_match_in_process_twin() {
    const NODES: usize = 5;
    let children = spawn_cluster(NODES, &[]);
    let addrs = members(&children);

    let metrics = MetricsRegistry::new();
    let mut client = remote_client(&addrs);
    client.set_metrics(metrics.clone());
    let mut twin = RingDht::with_named_nodes(NODES);

    let mut ops = Vec::new();
    for i in 0..40usize {
        let key = p2p_index_dht::Key::hash_of(&format!("batch-key-{}", i % 13));
        ops.push(match i % 4 {
            0 | 1 => p2p_index_dht::DhtOp::Put {
                key,
                value: bytes::Bytes::from(format!("v{i}")),
            },
            2 => p2p_index_dht::DhtOp::Get(key),
            _ => p2p_index_dht::DhtOp::NodeFor(key),
        });
    }
    let remote = client.execute_many(ops.clone());
    let local = twin.execute_many(ops);
    assert_eq!(remote, local, "batched results diverged from the twin");
    assert_eq!(client.stats(), twin.stats(), "per-op accounting diverged");

    let snap = metrics.snapshot();
    assert!(
        snap.counter("net.batch.ops") > 0,
        "a 40-op batch over 5 members must have pipelined"
    );
    assert_eq!(
        snap.counter("net.batch.frames_out"),
        snap.counter("net.batch.frames_in"),
        "every batch frame got a batch reply"
    );

    shutdown_cluster(children, &addrs);
}

/// Fault injection behind the server: daemons started with `--loss`
/// wrap their partition in `FaultyDht`, so the client sees typed
/// `DhtError::Timeout` frames. `IndexService`'s retry policy must absorb
/// them and still complete the workload.
#[test]
fn lossy_cluster_completes_under_retry() {
    let children = spawn_cluster(3, &["--loss", "0.15", "--fault-seed", "29"]);
    let addrs = members(&children);

    let dht = remote_client(&addrs);
    let lossless = run_workload(RingDht::with_named_nodes(3), 18, 12, 11).expect("local");
    let outcome = run_workload(dht, 18, 12, 11).expect("lossy remote workload");
    assert_eq!(
        outcome.files_found, lossless.files_found,
        "retries should mask loss without changing results"
    );
    assert!(
        outcome.messages > lossless.messages,
        "injected loss should cost extra message pairs (retries)"
    );

    shutdown_cluster(children, &addrs);
}

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then releasing them. Replicated daemons need the whole membership
/// list before the first one starts, so their ports cannot come from
/// the banner; the tiny release-to-rebind race is acceptable on a CI
/// loopback.
fn reserve_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr"))
        .collect()
}

/// Waits until `addr` can be bound again (a killed daemon's port may
/// linger briefly in kernel teardown states), then releases it for the
/// restarting daemon.
fn wait_until_bindable(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpListener::bind(addr) {
            Ok(probe) => {
                drop(probe);
                return;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("port {addr} never became bindable: {e}"),
        }
    }
}

/// The churn acceptance test (ROADMAP item 3): a 5-daemon cluster at
/// replication 3 loses one member to SIGKILL mid-workload and the user
/// never notices — zero failed searches, zero abandoned branches at
/// read quorum 2, answers equal to an in-process replicated Chord twin
/// churned at the same query index. Afterwards the killed daemon
/// restarts empty on its old port and the survivors' anti-entropy
/// repair refills it, restoring the replication factor.
#[test]
fn sigkilled_daemon_is_masked_by_quorum_and_refilled_after_restart() {
    const NODES: usize = 5;
    const REPLICAS: usize = 3;
    const ARTICLES: usize = 30;
    const QUERIES: usize = 20;
    const SEED: u64 = 77;
    const KILL_AT: usize = QUERIES / 2;
    const VICTIM: usize = 2;

    let addrs = reserve_addrs(NODES);
    let peers = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| format!("node-{i}={addr}"))
        .collect::<Vec<_>>()
        .join(",");
    let extra = [
        "--replicas",
        "3",
        "--quorum",
        "2,2",
        "--peers",
        &peers,
        "--repair-ms",
        "40",
    ];
    let mut children: Vec<DhtdChild> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let child = spawn_dhtd_on(&format!("node-{i}"), addr.port(), &extra);
            assert_eq!(child.addr, *addr, "daemon bound a different port");
            child
        })
        .collect();

    let quorum_config = RemoteDhtConfig {
        replicas: REPLICAS,
        read_quorum: 2,
        ..RemoteDhtConfig::default()
    };
    let client = || RemoteDht::connect(RemoteDht::named_members(&addrs), quorum_config.clone());

    // Sentinel keys whose replica set includes the victim: written while
    // everyone is alive, they prove the victim held copies before the
    // kill and must hold them again after restart + repair.
    let mut ring: Vec<Key> = (0..NODES)
        .map(|i| Key::hash_of(&format!("node-{i}")))
        .collect();
    ring.sort();
    let victim_key = Key::hash_of(&format!("node-{VICTIM}"));
    let sentinels: Vec<Key> = (0..200u32)
        .map(|i| Key::hash_of(&format!("sentinel-{i}")))
        .filter(|key| replica_keys(&ring, key, REPLICAS).contains(&victim_key))
        .take(4)
        .collect();
    assert!(!sentinels.is_empty(), "no sentinel landed on the victim");
    let mut writer = client();
    for key in &sentinels {
        assert!(writer.put(*key, bytes::Bytes::from_static(b"sentinel")));
    }
    let solo_victim = |addr: SocketAddr| {
        RemoteDht::connect(
            vec![(NodeId::hash_of(&format!("node-{VICTIM}")), addr)],
            RemoteDhtConfig::default(),
        )
    };
    let holds_all_sentinels = |probe: &mut RemoteDht| {
        sentinels.iter().all(|key| {
            probe
                .get(key)
                .iter()
                .any(|v| v.as_ref() == b"sentinel".as_slice())
        })
    };
    let mut probe = solo_victim(addrs[VICTIM]);
    let replicated = Instant::now() + Duration::from_secs(10);
    while !holds_all_sentinels(&mut probe) {
        assert!(
            Instant::now() < replicated,
            "victim never received its sentinel replicas"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The workload, with the victim SIGKILLed right before query 10.
    // Zero failed searches is `Ok`; the churned in-process twin (same
    // placement rule, replication 3, killed + repaired at the same
    // index) pins the degraded-reporting story: nothing degrades.
    let victim_child = &mut children[VICTIM].child;
    let remote = run_workload_with_churn(client(), ARTICLES, QUERIES, SEED, KILL_AT, |_service| {
        victim_child.kill().expect("SIGKILL victim daemon");
        victim_child.wait().expect("reap victim daemon");
    })
    .expect("a quorum-2 workload must survive one killed member");
    let twin_dht = ChordNetwork::with_perfect_tables_and_config(
        (0..NODES).map(|i| Key::hash_of(&format!("node-{i}"))),
        ChordConfig {
            replication: REPLICAS,
            ..ChordConfig::default()
        },
    );
    let local = run_workload_with_churn(twin_dht, ARTICLES, QUERIES, SEED, KILL_AT, |service| {
        let dht = service.dht_mut();
        assert!(dht.kill(NodeId::hash_of(&format!("node-{VICTIM}"))));
        dht.stabilize();
    })
    .expect("in-process replicated twin");
    assert_eq!(remote, local, "churned cluster diverged from its twin");
    assert!(remote.files_found > 0, "workload found nothing — vacuous");
    assert_eq!(remote.abandoned, 0, "replication must mask the crash");

    // Restart the victim empty on its old port; the survivors' repair
    // pass must push its replica copies back.
    wait_until_bindable(addrs[VICTIM]);
    let restarted = spawn_dhtd_on(&format!("node-{VICTIM}"), addrs[VICTIM].port(), &extra);
    assert_eq!(restarted.addr, addrs[VICTIM], "victim moved ports");
    children[VICTIM] = restarted;
    let mut probe = solo_victim(addrs[VICTIM]);
    let repaired = Instant::now() + Duration::from_secs(20);
    while !holds_all_sentinels(&mut probe) {
        assert!(
            Instant::now() < repaired,
            "repair never restored the victim's replicas"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    shutdown_cluster(children, &addrs);
}

/// A plain `Dht` smoke test over one daemon: put/get/remove round-trip
/// with values intact.
#[test]
fn single_daemon_round_trip() {
    let children = spawn_cluster(1, &[]);
    let addrs = members(&children);

    let mut dht = remote_client(&addrs);
    let key = p2p_index_dht::Key::hash_of("net-harness-key");
    assert!(dht.put(key, bytes::Bytes::from_static(b"alpha")));
    assert!(dht.put(key, bytes::Bytes::from_static(b"beta")));
    let mut got: Vec<_> = dht
        .get(&key)
        .into_iter()
        .map(|b| String::from_utf8_lossy(&b).into_owned())
        .collect();
    got.sort();
    assert_eq!(got, ["alpha", "beta"]);
    assert!(dht.remove(&key, b"alpha"));
    assert!(dht.remove(&key, b"beta"));
    assert!(dht.get(&key).is_empty());

    shutdown_cluster(children, &addrs);
}
