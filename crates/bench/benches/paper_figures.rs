//! One benchmark per exhibit of the paper's evaluation (§V).
//!
//! Each bench regenerates its table/figure at a reduced scale (the same
//! shapes as the paper-scale run; see EXPERIMENTS.md for the full-scale
//! numbers produced by the `repro` binary), prints it once, and then times
//! the underlying computation. Benchmarks:
//!
//! `fig07_query_mix`, `fig09_popularity`, `fig10_ccdf`, `storage_overhead`,
//! `fig11_interactions`, `fig12_traffic`, `fig13_hit_ratio`,
//! `fig14_cache_storage`, `fig15_hotspots`, `table1_errors`.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_index_core::CachePolicy;
use p2p_index_sim::experiments::{
    self, EvalConfig, Evaluation, FIG11_POLICIES, FIG12_POLICIES, FIG13_POLICIES, TABLE1_POLICIES,
};
use p2p_index_sim::simulation::{SchemeChoice, SimConfig, Simulation};
use p2p_index_workload::StructureMix;
use std::hint::black_box;

/// Bench-scale grid: small enough for criterion, large enough to keep the
/// paper's qualitative shapes.
fn bench_config() -> EvalConfig {
    EvalConfig {
        nodes: 40,
        articles: 200,
        queries: 1_000,
        seed: 42,
    }
}

fn sim_config(scheme: SchemeChoice, policy: CachePolicy) -> SimConfig {
    let cfg = bench_config();
    SimConfig {
        nodes: cfg.nodes,
        articles: cfg.articles,
        queries: cfg.queries,
        scheme,
        policy,
        mix: StructureMix::paper_simulation(),
        seed: cfg.seed,
    }
}

fn fig07_query_mix(c: &mut Criterion) {
    println!("{}", experiments::fig7_query_mix().to_text());
    c.bench_function("fig07_query_mix", |b| {
        b.iter(|| black_box(experiments::fig7_query_mix()))
    });
}

fn fig09_popularity(c: &mut Criterion) {
    println!("{}", experiments::fig9_popularity().to_text());
    c.bench_function("fig09_popularity", |b| {
        b.iter(|| black_box(experiments::fig9_popularity()))
    });
}

fn fig10_ccdf(c: &mut Criterion) {
    println!("{}", experiments::fig10_ccdf().to_text());
    c.bench_function("fig10_ccdf", |b| {
        b.iter(|| black_box(experiments::fig10_ccdf()))
    });
}

fn storage_overhead(c: &mut Criterion) {
    let cfg = bench_config();
    println!("{}", experiments::storage_overhead(&cfg).to_text());
    c.bench_function("storage_overhead", |b| {
        b.iter(|| black_box(experiments::storage_overhead(&cfg)))
    });
}

/// Times one simulation cell; the full grid is regenerated and printed once.
fn grid_bench(
    c: &mut Criterion,
    name: &str,
    table: impl FnOnce(&mut Evaluation) -> p2p_index_sim::table::TextTable,
) {
    let mut eval = Evaluation::new(bench_config());
    println!("{}", table(&mut eval).to_text());
    c.bench_function(name, |b| {
        b.iter(|| {
            black_box(Simulation::run(sim_config(
                SchemeChoice::Simple,
                CachePolicy::Lru(30),
            )))
        })
    });
}

fn fig11_interactions(c: &mut Criterion) {
    grid_bench(c, "fig11_interactions", |e| {
        // Touch every cell of the figure so the printed table is complete.
        for p in FIG11_POLICIES {
            for s in SchemeChoice::PAPER {
                e.cell(s, p);
            }
        }
        experiments::fig11_interactions(e)
    });
}

fn fig12_traffic(c: &mut Criterion) {
    grid_bench(c, "fig12_traffic", |e| {
        for p in FIG12_POLICIES {
            for s in SchemeChoice::PAPER {
                e.cell(s, p);
            }
        }
        experiments::fig12_traffic(e)
    });
}

fn fig13_hit_ratio(c: &mut Criterion) {
    grid_bench(c, "fig13_hit_ratio", |e| {
        for p in FIG13_POLICIES {
            for s in SchemeChoice::PAPER {
                e.cell(s, p);
            }
        }
        experiments::fig13_hit_ratio(e)
    });
}

fn fig14_cache_storage(c: &mut Criterion) {
    grid_bench(c, "fig14_cache_storage", experiments::fig14_cache_storage);
}

fn fig15_hotspots(c: &mut Criterion) {
    grid_bench(c, "fig15_hotspots", experiments::fig15_hotspots);
}

fn table1_errors(c: &mut Criterion) {
    grid_bench(c, "table1_errors", |e| {
        for p in TABLE1_POLICIES {
            for s in SchemeChoice::PAPER {
                e.cell(s, p);
            }
        }
        experiments::table1_errors(e)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        fig07_query_mix,
        fig09_popularity,
        fig10_ccdf,
        storage_overhead,
        fig11_interactions,
        fig12_traffic,
        fig13_hit_ratio,
        fig14_cache_storage,
        fig15_hotspots,
        table1_errors,
}
criterion_main!(benches);
