//! `repro` — regenerate any table or figure of the paper's evaluation.
//!
//! ```text
//! repro <exhibit> [--small] [--nodes N] [--articles N] [--queries N]
//!                 [--seed N] [--csv DIR]
//!
//! exhibits: fig7 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1 storage
//!           ext-structures ext-churn robustness all
//! ```
//!
//! Default scale is the paper's (500 nodes, 10 000 articles, 50 000
//! queries); `--small` runs a fast scaled-down version with the same
//! qualitative shapes.

use std::path::PathBuf;
use std::process::ExitCode;

use p2p_index_sim::experiments::{self, EvalConfig, Evaluation};
use p2p_index_sim::table::TextTable;

struct Args {
    exhibit: String,
    config: EvalConfig,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let exhibit = args.next().ok_or_else(usage)?;
    let mut config = EvalConfig::paper();
    let mut csv_dir = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--small" => config = EvalConfig::small(),
            "--nodes" => config.nodes = parse_num(args.next(), "--nodes")?,
            "--articles" => config.articles = parse_num(args.next(), "--articles")?,
            "--queries" => config.queries = parse_num(args.next(), "--queries")?,
            "--seed" => config.seed = parse_num(args.next(), "--seed")? as u64,
            "--csv" => csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?)),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        exhibit,
        config,
        csv_dir,
    })
}

fn parse_num(value: Option<String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn usage() -> String {
    "usage: repro <fig7|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table1|storage|ext-structures|ext-churn|robustness|all> \
     [--small] [--nodes N] [--articles N] [--queries N] [--seed N] [--csv DIR]"
        .to_string()
}

fn emit(table: &TextTable, csv_dir: &Option<PathBuf>, name: &str) {
    print!("{}", table.to_text());
    println!();
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = args.config;
    eprintln!(
        "# scale: {} nodes, {} articles, {} queries (seed {})",
        cfg.nodes, cfg.articles, cfg.queries, cfg.seed
    );
    let mut eval = Evaluation::new(cfg);
    let csv = &args.csv_dir;

    let run = |name: &str, eval: &mut Evaluation| -> bool {
        match name {
            "fig7" => emit(&experiments::fig7_query_mix(), csv, "fig7"),
            "fig9" => emit(&experiments::fig9_popularity(), csv, "fig9"),
            "fig10" => emit(&experiments::fig10_ccdf(), csv, "fig10"),
            "fig11" => emit(&experiments::fig11_interactions(eval), csv, "fig11"),
            "fig12" => emit(&experiments::fig12_traffic(eval), csv, "fig12"),
            "fig13" => emit(&experiments::fig13_hit_ratio(eval), csv, "fig13"),
            "fig14" => emit(&experiments::fig14_cache_storage(eval), csv, "fig14"),
            "fig15" => emit(&experiments::fig15_hotspots(eval), csv, "fig15"),
            "table1" => emit(&experiments::table1_errors(eval), csv, "table1"),
            "storage" => emit(&experiments::storage_overhead(&cfg), csv, "storage"),
            "ext-structures" => emit(
                &experiments::ext_structure_breakdown(eval),
                csv,
                "ext_structures",
            ),
            "ext-churn" => emit(&experiments::ext_churn(&cfg), csv, "ext_churn"),
            // Deliberately not part of "all": the loss × budget sweep
            // re-publishes the corpus per cell, and "all" stays the exact
            // paper reproduction (faults are an extension).
            "robustness" => emit(&experiments::ext_robustness(&cfg), csv, "ext_robustness"),
            _ => return false,
        }
        true
    };

    if args.exhibit == "all" {
        for name in [
            "fig7",
            "fig9",
            "fig10",
            "storage",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "table1",
            "ext-structures",
            "ext-churn",
        ] {
            run(name, &mut eval);
        }
        ExitCode::SUCCESS
    } else if run(&args.exhibit.clone(), &mut eval) {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown exhibit {:?}\n{}", args.exhibit, usage());
        ExitCode::FAILURE
    }
}
