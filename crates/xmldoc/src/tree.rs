//! The XML tree model for file descriptors.
//!
//! The paper describes files with "semi-structured XML data, as used by many
//! publicly-accessible databases (e.g., DBLP)" (§III-B, Fig. 1). This module
//! provides the element tree those descriptors live in, together with
//! serialization and a *canonical form* that gives structurally-equal
//! descriptors identical text — the property the paper needs so that
//! "equivalent expressions are transformed into a unique normalized format"
//! before hashing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node in an XML tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
}

impl XmlNode {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    /// The text inside this node, if it is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Element(_) => None,
            XmlNode::Text(t) => Some(t),
        }
    }
}

impl From<Element> for XmlNode {
    fn from(e: Element) -> Self {
        XmlNode::Element(e)
    }
}

/// An XML element: a name, optional attributes, and child nodes.
///
/// # Examples
///
/// Building the `<author>` fragment of the paper's Figure 1:
///
/// ```
/// use p2p_index_xmldoc::Element;
///
/// let author = Element::new("author")
///     .with_child(Element::with_text("first", "John"))
///     .with_child(Element::with_text("last", "Smith"));
/// assert_eq!(author.to_xml(), "<author><first>John</first><last>Smith</last></author>");
/// assert_eq!(author.find("last").unwrap().text(), "Smith");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<XmlNode>,
}

impl Element {
    /// Creates an empty element named `name`.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates `<name>text</name>`.
    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Element {
        let mut e = Element::new(name);
        e.children.push(XmlNode::Text(text.into()));
        e
    }

    /// The element's tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element's attributes in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All child nodes in document order.
    pub fn children(&self) -> &[XmlNode] {
        &self.children
    }

    /// Iterates over child *elements* only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// The concatenated direct text content of this element.
    ///
    /// Text is trimmed per-run; `<year> 1996 </year>` yields `"1996"`.
    pub fn text(&self) -> String {
        self.children
            .iter()
            .filter_map(XmlNode::as_text)
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// First child element named `name`.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements named `name`.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Resolves a `/`-separated path of element names and returns the text
    /// of the final element.
    ///
    /// ```
    /// use p2p_index_xmldoc::Element;
    ///
    /// let article = Element::new("article")
    ///     .with_child(Element::new("author").with_child(Element::with_text("last", "Smith")));
    /// assert_eq!(article.path_text("author/last").as_deref(), Some("Smith"));
    /// assert_eq!(article.path_text("author/first"), None);
    /// ```
    pub fn path_text(&self, path: &str) -> Option<String> {
        let mut current = self;
        for step in path.split('/').filter(|s| !s.is_empty()) {
            current = current.find(step)?;
        }
        Some(current.text())
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text run (builder style).
    #[must_use]
    pub fn with_text_node(mut self, text: impl Into<String>) -> Element {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Appends a child node in place.
    pub fn push_child(&mut self, child: impl Into<XmlNode>) {
        self.children.push(child.into());
    }

    /// Appends an attribute in place.
    pub fn push_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attributes.push((name.into(), value.into()));
    }

    /// Serializes to compact XML (no insignificant whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes to indented XML, two spaces per level.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_open_tag(&self, out: &mut String, self_close: bool) {
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attributes {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        out.push_str(if self_close { "/>" } else { ">" });
    }

    fn write_compact(&self, out: &mut String) {
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            match child {
                XmlNode::Element(e) => e.write_compact(out),
                XmlNode::Text(t) => escape_into(t, out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        // Text-only elements print on one line.
        if self.children.iter().all(|c| matches!(c, XmlNode::Text(_))) {
            self.write_open_tag(out, false);
            escape_into(&self.text(), out);
            out.push_str("</");
            out.push_str(&self.name);
            out.push('>');
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            out.push('\n');
            match child {
                XmlNode::Element(e) => e.write_pretty(out, depth + 1),
                XmlNode::Text(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    escape_into(t.trim(), out);
                }
            }
        }
        out.push('\n');
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Produces the canonical form: attributes sorted by name, child
    /// elements sorted recursively by `(name, canonical text)`, text runs
    /// trimmed and merged.
    ///
    /// Two descriptors that differ only in field order canonicalize to the
    /// same tree, so their serialized forms — and therefore their DHT keys —
    /// coincide. This implements the paper's footnote 1: "equivalent
    /// expressions are transformed into a unique normalized format".
    #[must_use]
    pub fn canonicalize(&self) -> Element {
        let mut attributes = self.attributes.clone();
        attributes.sort();
        let text = self.text();
        let mut elems: Vec<Element> = self.child_elements().map(Element::canonicalize).collect();
        elems.sort_by(|a, b| {
            a.name
                .cmp(&b.name)
                .then_with(|| a.to_xml().cmp(&b.to_xml()))
        });
        let mut children: Vec<XmlNode> = Vec::with_capacity(elems.len() + 1);
        if !text.is_empty() {
            children.push(XmlNode::Text(text));
        }
        children.extend(elems.into_iter().map(XmlNode::Element));
        Element {
            name: self.name.clone(),
            attributes,
            children,
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Escapes the five XML special characters into `out`.
fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Escapes XML special characters, returning a new string.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_into(text, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_article() -> Element {
        Element::new("article")
            .with_child(
                Element::new("author")
                    .with_child(Element::with_text("first", "John"))
                    .with_child(Element::with_text("last", "Smith")),
            )
            .with_child(Element::with_text("title", "TCP"))
            .with_child(Element::with_text("conf", "SIGCOMM"))
            .with_child(Element::with_text("year", "1989"))
            .with_child(Element::with_text("size", "315635"))
    }

    #[test]
    fn build_and_navigate() {
        let a = sample_article();
        assert_eq!(a.name(), "article");
        assert_eq!(a.find("title").unwrap().text(), "TCP");
        assert_eq!(a.path_text("author/first").as_deref(), Some("John"));
        assert_eq!(a.path_text("author/middle"), None);
        assert_eq!(a.child_elements().count(), 5);
    }

    #[test]
    fn text_trims_and_joins() {
        let e = Element::new("x")
            .with_text_node("  hello ")
            .with_child(Element::new("sep"))
            .with_text_node(" world  ");
        assert_eq!(e.text(), "hello world");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("empty").to_xml(), "<empty/>");
    }

    #[test]
    fn attributes_render_and_lookup() {
        let e = Element::new("article")
            .with_attribute("key", "journals/x/1")
            .with_attribute("mdate", "2003-01-21");
        assert_eq!(e.attribute("key"), Some("journals/x/1"));
        assert_eq!(e.attribute("missing"), None);
        assert_eq!(
            e.to_xml(),
            r#"<article key="journals/x/1" mdate="2003-01-21"/>"#
        );
    }

    #[test]
    fn escaping_special_characters() {
        let e = Element::with_text("t", "a<b & \"c\" > 'd'");
        assert_eq!(
            e.to_xml(),
            "<t>a&lt;b &amp; &quot;c&quot; &gt; &apos;d&apos;</t>"
        );
        assert_eq!(escape("&"), "&amp;");
    }

    #[test]
    fn pretty_print_shape() {
        let a = Element::new("article").with_child(Element::with_text("title", "TCP"));
        assert_eq!(
            a.to_xml_pretty(),
            "<article>\n  <title>TCP</title>\n</article>\n"
        );
    }

    #[test]
    fn canonicalize_sorts_fields() {
        let scrambled = Element::new("article")
            .with_child(Element::with_text("year", "1989"))
            .with_child(Element::with_text("title", "TCP"))
            .with_child(
                Element::new("author")
                    .with_child(Element::with_text("last", "Smith"))
                    .with_child(Element::with_text("first", "John")),
            );
        let ordered = Element::new("article")
            .with_child(
                Element::new("author")
                    .with_child(Element::with_text("first", "John"))
                    .with_child(Element::with_text("last", "Smith")),
            )
            .with_child(Element::with_text("title", "TCP"))
            .with_child(Element::with_text("year", "1989"));
        assert_eq!(scrambled.canonicalize(), ordered.canonicalize());
        assert_eq!(
            scrambled.canonicalize().to_xml(),
            ordered.canonicalize().to_xml()
        );
    }

    #[test]
    fn canonicalize_orders_same_name_siblings_deterministically() {
        let a = Element::new("authors")
            .with_child(Element::with_text("author", "Zoe"))
            .with_child(Element::with_text("author", "Anna"));
        let b = Element::new("authors")
            .with_child(Element::with_text("author", "Anna"))
            .with_child(Element::with_text("author", "Zoe"));
        assert_eq!(a.canonicalize(), b.canonicalize());
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let c1 = sample_article().canonicalize();
        let c2 = c1.canonicalize();
        assert_eq!(c1, c2);
    }

    #[test]
    fn display_matches_to_xml() {
        let a = sample_article();
        assert_eq!(a.to_string(), a.to_xml());
    }

    #[test]
    fn node_accessors() {
        let e = XmlNode::Element(Element::new("x"));
        let t = XmlNode::Text("hi".into());
        assert!(e.as_element().is_some());
        assert!(e.as_text().is_none());
        assert_eq!(t.as_text(), Some("hi"));
        assert!(t.as_element().is_none());
    }
}
