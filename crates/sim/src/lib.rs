//! The evaluation harness for the p2p-index reproduction.
//!
//! This crate re-runs the full evaluation of §V of *Data Indexing in
//! Peer-to-Peer DHT Networks*: a 500-node network, a 10 000-article
//! distributed bibliographic database, 50 000 realistic queries per
//! (scheme × cache policy) cell, and one regenerator per table and figure.
//!
//! * [`simulation`] — the user model and metrics collection
//!   ([`Simulation`], [`Metrics`]);
//! * [`experiments`] — one runner per exhibit (Figs. 7, 9-15, Table I,
//!   §V-B storage), sharing a lazily-run simulation grid
//!   ([`experiments::Evaluation`]);
//! * [`exec`] — the work-queue executor that runs independent grid cells
//!   across cores while keeping every rendered table byte-identical to a
//!   serial run;
//! * [`hotspot`] — the skewed-load scenario (`repro hotspot`): a flash
//!   crowd over a large ring, measured with and without the `crates/dht`
//!   balance subsystem in the path;
//! * [`netd`] — networked-cluster control: the `repro serve` dhtd daemon,
//!   the `net-demo` remote workload client, and the loopback RPC bench;
//! * [`table`] — text/CSV rendering.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p p2p-index-sim --bin repro -- fig11
//! cargo run --release -p p2p-index-sim --bin repro -- all --small --csv results/
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod experiments;
pub mod hotspot;
pub mod netd;
pub mod simulation;
pub mod table;

pub use exec::{parallel_map, resolve_jobs};
pub use experiments::{EvalConfig, Evaluation};
pub use hotspot::{HotspotConfig, HotspotReport};
pub use simulation::{Metrics, QueryOutcome, SchemeChoice, SimConfig, Simulation};
