//! A direct consistent-hash ring substrate.
//!
//! The paper's evaluation deliberately abstracts the DHT away: "we simply
//! assume that the underlying DHT is able to find a node *n* responsible for
//! a given key *k*" (§V-A). [`RingDht`] is exactly that assumption turned
//! into code — node placement identical to Chord (`successor(key)` on the
//! identifier circle) but resolved with one ordered-map successor lookup
//! (`BTreeMap::range`, O(log n)) instead of routed hops. It is the
//! substrate used for the 500-node × 50 000-query simulations; the
//! [`Chord`](crate::chord) substrate exists to show the indexing layer
//! really does run over the full protocol (see the substrate-independence
//! ablation bench).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{self, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId};
use crate::key::Key;
use crate::storage::NodeStore;

/// A consistent-hash ring with per-node multi-value stores.
///
/// Nodes sit on the 160-bit circle; the node responsible for a key is the
/// first node clockwise at or after the key — identical placement to Chord,
/// so data distribution statistics carry over between substrates.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use p2p_index_dht::{Dht, Key, RingDht};
///
/// let mut ring = RingDht::with_named_nodes(500);
/// let key = Key::hash_of("/article/author/last/Smith");
/// ring.put(key, Bytes::from_static(b"John/Smith"));
/// assert_eq!(ring.get(&key), vec![Bytes::from_static(b"John/Smith")]);
/// ```
#[derive(Debug, Default)]
pub struct RingDht {
    /// Node position → that node's store, ordered around the identifier
    /// circle. One map serves as both the ring ordering and the storage
    /// table: `range(key..)` resolves the clockwise successor in O(log n).
    stores: BTreeMap<Key, NodeStore>,
    // Atomic so the shared-reference read path (`get`) can account its
    // request/response pair like every other substrate does.
    lookups: AtomicU64,
    messages: AtomicU64,
    metrics: MetricsRegistry,
}

impl Clone for RingDht {
    fn clone(&self) -> Self {
        RingDht {
            stores: self.stores.clone(),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
            messages: AtomicU64::new(self.messages.load(Ordering::Relaxed)),
            metrics: self.metrics.clone(),
        }
    }
}

impl RingDht {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ring of `n` nodes with identifiers `h("node-0")` …
    /// `h("node-{n-1}")` — the standard deterministic population used
    /// throughout the experiments.
    pub fn with_named_nodes(n: usize) -> Self {
        Self::from_ids((0..n).map(|i| Key::hash_of(&format!("node-{i}"))))
    }

    /// Creates a ring from explicit node identifiers (duplicates collapsed).
    pub fn from_ids(ids: impl IntoIterator<Item = Key>) -> Self {
        let mut ring = Self::new();
        for id in ids {
            ring.add_node(NodeId::from_key(id));
        }
        ring
    }

    /// Adds a node. Returns `false` if it was already present.
    ///
    /// Keys the new node becomes responsible for move over from its
    /// successor, as in a DHT join.
    pub fn add_node(&mut self, id: NodeId) -> bool {
        let key = *id.key();
        if self.stores.contains_key(&key) {
            return false;
        }
        // Take over (pred, id] from the current owner (our successor), both
        // resolved against the ring as it is *before* the join.
        let moved = match (self.successor(&key), self.predecessor(&key)) {
            (Some(succ), Some(pred)) => self
                .stores
                .get_mut(&succ)
                .map(|s| s.split_off_interval(&pred, &key))
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        let store = self.stores.entry(key).or_default();
        for (k, values) in moved {
            for v in values {
                store.put(k, v);
            }
        }
        true
    }

    /// Removes a node, handing its keys to its successor. Returns `false`
    /// if the node was not present.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let key = *id.key();
        let Some(store) = self.stores.remove(&key) else {
            return false;
        };
        if let Some(succ) = self.owner(&key) {
            let succ_store = self.stores.entry(*succ.key()).or_default();
            for (k, values) in store.iter() {
                for v in values {
                    succ_store.put(*k, v.clone());
                }
            }
        }
        true
    }

    /// The first node clockwise at or after `key` (wrapping to the lowest
    /// position), or `None` on an empty ring.
    fn successor(&self, key: &Key) -> Option<Key> {
        self.stores
            .range(*key..)
            .next()
            .or_else(|| self.stores.iter().next())
            .map(|(k, _)| *k)
    }

    /// The first node strictly before `key` (wrapping to the highest
    /// position), or `None` on an empty ring.
    fn predecessor(&self, key: &Key) -> Option<Key> {
        self.stores
            .range(..*key)
            .next_back()
            .or_else(|| self.stores.iter().next_back())
            .map(|(k, _)| *k)
    }

    /// The node responsible for `key`, without touching the counters:
    /// an O(log n) `BTreeMap::range` successor lookup.
    pub fn owner(&self, key: &Key) -> Option<NodeId> {
        self.successor(key).map(NodeId::from_key)
    }

    /// Read-only view of one node's store.
    pub fn store_of(&self, id: &NodeId) -> Option<&NodeStore> {
        self.stores.get(id.key())
    }

    /// Per-node `(id, key_count, value_bytes)` in ring order — the input to
    /// the storage-distribution experiments.
    pub fn storage_distribution(&self) -> Vec<(NodeId, usize, usize)> {
        self.stores
            .iter()
            .map(|(id, s)| (NodeId::from_key(*id), s.key_count(), s.value_bytes()))
            .collect()
    }

    /// Total value bytes stored across all nodes (index storage footprint).
    pub fn total_value_bytes(&self) -> usize {
        self.stores.values().map(NodeStore::value_bytes).sum()
    }

    /// Total distinct keys across all nodes.
    pub fn total_keys(&self) -> usize {
        self.stores.values().map(NodeStore::key_count).sum()
    }
}

impl RingDht {
    fn execute_inner(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if self.stores.is_empty() {
            return Err(DhtError::NoLiveNodes);
        }
        match op {
            DhtOp::NodeFor(key) => {
                let owner = self.owner(&key).expect("non-empty ring has an owner");
                Ok(DhtResponse::Node(owner))
            }
            DhtOp::Get(key) => Ok(DhtResponse::Values(self.get(&key))),
            DhtOp::Put { key, value } => {
                let owner = self.owner(&key).expect("non-empty ring has an owner");
                self.lookups.fetch_add(1, Ordering::Relaxed);
                self.messages.fetch_add(2, Ordering::Relaxed);
                let stored = self
                    .stores
                    .get_mut(owner.key())
                    .expect("owner has a store")
                    .put(key, value);
                Ok(DhtResponse::Stored(stored))
            }
            DhtOp::Remove { key, value } => {
                let owner = self.owner(&key).expect("non-empty ring has an owner");
                self.messages.fetch_add(2, Ordering::Relaxed);
                let removed = self
                    .stores
                    .get_mut(owner.key())
                    .expect("owner has a store")
                    .remove(&key, &value);
                Ok(DhtResponse::Removed(removed))
            }
        }
    }
}

impl Dht for RingDht {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        if self.metrics.is_enabled() {
            // Per-op recording must stay identical to the unary sequence,
            // so a metered batch is exactly the loop the trait default runs.
            return ops.into_iter().map(|op| self.execute(op)).collect();
        }
        // The unmetered fast path: everything is in-process, so a batch
        // is the plain loop minus the per-op metrics branch.
        ops.into_iter().map(|op| self.execute_inner(op)).collect()
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.owner(key)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.stores.keys().copied().map(NodeId::from_key).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        match self.owner(key) {
            Some(owner) => {
                self.lookups.fetch_add(1, Ordering::Relaxed);
                self.messages.fetch_add(2, Ordering::Relaxed);
                self.stores[owner.key()].get(key).to_vec()
            }
            None => Vec::new(),
        }
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        crate::storage::merged_entries(self.stores.values())
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.messages.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hops: 0,
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.stores.len()
    }
}

impl NodeChurn for RingDht {
    fn spawn(&mut self, id: NodeId) -> bool {
        self.add_node(id)
    }

    fn kill(&mut self, id: NodeId) -> bool {
        self.remove_node(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut ring = RingDht::with_named_nodes(10);
        let k = Key::hash_of("k");
        assert!(ring.put(k, Bytes::from_static(b"v")));
        assert_eq!(ring.get(&k), vec![Bytes::from_static(b"v")]);
        assert!(ring.remove(&k, b"v"));
        assert!(ring.get(&k).is_empty());
    }

    #[test]
    fn owner_is_clockwise_successor() {
        let ids = [Key::from_u64(100), Key::from_u64(200), Key::from_u64(300)];
        let ring = RingDht::from_ids(ids);
        assert_eq!(
            ring.owner(&Key::from_u64(150)).unwrap().key(),
            &Key::from_u64(200)
        );
        assert_eq!(
            ring.owner(&Key::from_u64(200)).unwrap().key(),
            &Key::from_u64(200)
        );
        assert_eq!(
            ring.owner(&Key::from_u64(250)).unwrap().key(),
            &Key::from_u64(300)
        );
        // Wrap-around: keys after the last node belong to the first.
        assert_eq!(
            ring.owner(&Key::from_u64(999)).unwrap().key(),
            &Key::from_u64(100)
        );
        assert_eq!(ring.owner(&Key::ZERO).unwrap().key(), &Key::from_u64(100));
    }

    #[test]
    fn empty_ring() {
        let mut ring = RingDht::new();
        assert!(ring.is_empty());
        assert_eq!(ring.owner(&Key::hash_of("x")), None);
        assert!(!ring.put(Key::hash_of("x"), Bytes::from_static(b"v")));
        assert!(ring.get(&Key::hash_of("x")).is_empty());
        assert!(!ring.remove(&Key::hash_of("x"), b"v"));
    }

    #[test]
    fn add_node_moves_keys() {
        let mut ring = RingDht::from_ids([Key::from_u64(100), Key::from_u64(300)]);
        // Keys 150 and 250 both owned by node 300.
        let k150 = Key::from_u64(150);
        let k250 = Key::from_u64(250);
        ring.put(k150, Bytes::from_static(b"a"));
        ring.put(k250, Bytes::from_static(b"b"));
        // Node 200 joins: should take over (100, 200], i.e. key 150.
        assert!(ring.add_node(NodeId::from_key(Key::from_u64(200))));
        let n200 = NodeId::from_key(Key::from_u64(200));
        let n300 = NodeId::from_key(Key::from_u64(300));
        assert!(ring.store_of(&n200).unwrap().contains_key(&k150));
        assert!(ring.store_of(&n300).unwrap().contains_key(&k250));
        assert_eq!(ring.get(&k150), vec![Bytes::from_static(b"a")]);
        assert_eq!(ring.get(&k250), vec![Bytes::from_static(b"b")]);
    }

    #[test]
    fn add_duplicate_node_is_noop() {
        let mut ring = RingDht::with_named_nodes(3);
        let id = ring.nodes()[0];
        assert!(!ring.add_node(id));
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn remove_node_hands_keys_to_successor() {
        let mut ring = RingDht::with_named_nodes(5);
        let items: Vec<Key> = (0..100).map(|i| Key::hash_of(&format!("i{i}"))).collect();
        for (i, k) in items.iter().enumerate() {
            ring.put(*k, Bytes::from(format!("v{i}")));
        }
        let victim = ring.nodes()[2];
        assert!(ring.remove_node(victim));
        assert!(!ring.remove_node(victim));
        for (i, k) in items.iter().enumerate() {
            assert_eq!(ring.get(k), vec![Bytes::from(format!("v{i}"))], "item {i}");
        }
    }

    #[test]
    fn storage_distribution_sums_match_totals() {
        let mut ring = RingDht::with_named_nodes(8);
        for i in 0..200 {
            ring.put(
                Key::hash_of(&format!("i{i}")),
                Bytes::from(format!("value-{i}")),
            );
        }
        let dist = ring.storage_distribution();
        let keys: usize = dist.iter().map(|(_, k, _)| k).sum();
        let bytes: usize = dist.iter().map(|(_, _, b)| b).sum();
        assert_eq!(keys, ring.total_keys());
        assert_eq!(bytes, ring.total_value_bytes());
        assert_eq!(keys, 200);
    }

    #[test]
    fn matches_chord_placement() {
        use crate::chord::ChordNetwork;
        let ids: Vec<Key> = (0..32)
            .map(|i| Key::hash_of(&format!("node-{i}")))
            .collect();
        let ring = RingDht::from_ids(ids.clone());
        let chord = ChordNetwork::with_perfect_tables(ids);
        for i in 0..200 {
            let k = Key::hash_of(&format!("probe-{i}"));
            assert_eq!(
                ring.owner(&k).unwrap().key(),
                &chord.responsible_node(&k).unwrap(),
                "placement must be identical across substrates"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_every_key_has_exactly_one_owner(n in 1usize..40, seed in any::<u64>()) {
            let ring = RingDht::with_named_nodes(n);
            let key = Key::hash_of(&format!("probe-{seed}"));
            let owner = ring.owner(&key).unwrap();
            // Owner must be a live node and key must be in (pred(owner), owner].
            let nodes = ring.nodes();
            prop_assert!(nodes.contains(&owner));
            let pos = nodes.iter().position(|x| x == &owner).unwrap();
            let pred = nodes[(pos + nodes.len() - 1) % nodes.len()];
            if nodes.len() > 1 {
                prop_assert!(key.in_interval(pred.key(), owner.key()));
            }
        }

        #[test]
        fn prop_join_leave_preserves_data(n in 2usize..16, items in 1usize..50) {
            let mut ring = RingDht::with_named_nodes(n);
            let keys: Vec<Key> = (0..items).map(|i| Key::hash_of(&format!("d{i}"))).collect();
            for (i, k) in keys.iter().enumerate() {
                ring.put(*k, Bytes::from(format!("v{i}")));
            }
            ring.add_node(NodeId::hash_of("joiner"));
            ring.remove_node(ring.nodes()[0]);
            for (i, k) in keys.iter().enumerate() {
                prop_assert_eq!(ring.get(k), vec![Bytes::from(format!("v{i}"))]);
            }
        }
    }
}
