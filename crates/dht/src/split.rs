//! Load balancing: entry splitting and hot-key fan-out.
//!
//! The paper's hierarchical indexes deliberately concentrate broad queries
//! on few nodes — a popular conference key may accumulate thousands of
//! mappings, and a flash crowd hammers one title's lookup chain. This
//! module is the mitigation layer: [`SplitDht`] decorates any substrate
//! (like [`FaultyDht`](crate::faulty::FaultyDht) does for faults) and
//!
//! * **splits** an index entry into deterministic child *pages* once it
//!   outgrows a configurable byte budget ([`BalanceConfig::page_budget`]) —
//!   reads transparently reassemble, writes append to the open page;
//! * **fans out** read replicas for *hot keys* whose observed get count
//!   crosses [`BalanceConfig::hot_threshold`]: the entry is mirrored onto
//!   the key's clockwise successors (the same
//!   [`placement::replica_keys`] rule the networked cluster replicates
//!   with) and subsequent reads rotate across primary and mirrors;
//! * **measures** per-node load (puts, gets, put bytes) for every physical
//!   operation it issues, feeding the `load.*` metrics series and the
//!   `repro hotspot` imbalance exhibit.
//!
//! With [`BalanceConfig::observe_only`] the decorator changes nothing
//! about placement — every operation passes straight through — so a
//! baseline run and a mitigated run measure load through the identical
//! code path.
//!
//! # Physical layout
//!
//! A split entry with `n` pages is stored as:
//!
//! ```text
//! parent key  : v₁ … v_b, "P:n"            (first budget's worth + marker)
//! page_key(1) : v_{b+1} …                  (each page ≤ budget bytes,
//! …                                          except its last value)
//! page_key(n) : …                          (the open page; appends go here)
//! ```
//!
//! `page_key(parent, i) = h(parent_hex ∥ "#page-" ∥ i)` — deterministic,
//! so any client reassembles without coordination. The marker value
//! `P:n` can never collide with index values (their wire prefixes are
//! `Q:` and `F:`). A hot key's mirror copy of value `v` is stored under
//! the mirror node's own ring key as `M: ∥ parent ∥ v`, so several hot
//! keys mirrored onto one node never mix.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeId};
use crate::key::Key;
use crate::placement;

/// Wire prefix of a split marker value (`P:<pages>` under the parent key).
pub const MARKER_PREFIX: &[u8] = b"P:";
/// Wire prefix of a mirrored hot-key value (`M:<20-byte parent><value>`).
pub const MIRROR_PREFIX: &[u8] = b"M:";

/// Tuning knobs of the balance layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceConfig {
    /// Split an entry once its stored bytes would exceed this budget
    /// (`0` disables splitting).
    pub page_budget: usize,
    /// Promote a key to hot once this many gets were observed on it
    /// (`0` disables fan-out).
    pub hot_threshold: u64,
    /// How many read mirrors a hot key gets (its next clockwise
    /// successors, primary excluded).
    pub fanout: usize,
}

impl BalanceConfig {
    /// Measure load only: no splitting, no fan-out — every operation
    /// passes through unchanged. The baseline half of the hot-spot
    /// exhibit runs with this.
    pub fn observe_only() -> BalanceConfig {
        BalanceConfig {
            page_budget: 0,
            hot_threshold: 0,
            fanout: 0,
        }
    }

    /// Both mitigations on.
    pub fn mitigating(page_budget: usize, hot_threshold: u64, fanout: usize) -> BalanceConfig {
        BalanceConfig {
            page_budget,
            hot_threshold,
            fanout,
        }
    }

    /// `true` when neither mitigation can trigger.
    pub fn is_observe_only(&self) -> bool {
        self.page_budget == 0 && (self.hot_threshold == 0 || self.fanout == 0)
    }
}

/// Per-node load observed by the decorator: one row of the hot-spot
/// exhibit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Physical put operations served by this node.
    pub puts: u64,
    /// Physical get operations served by this node.
    pub gets: u64,
    /// Bytes written to this node by physical puts.
    pub put_bytes: u64,
}

impl NodeLoad {
    /// Total storage operations (puts + gets) — the exhibit's load unit.
    pub fn ops(&self) -> u64 {
        self.puts + self.gets
    }
}

/// Bookkeeping for one split entry.
#[derive(Debug, Clone)]
struct SplitState {
    /// Pages `1..=pages` exist; `pages` is the open page.
    pages: u32,
    /// Bytes currently stored in the open page.
    open_bytes: usize,
    /// Total logical bytes across parent and all pages.
    total_bytes: usize,
    /// Every logical value, for set-semantics checks across pages.
    members: HashSet<Bytes>,
}

/// The deterministic child key of page `page` (1-based) of `parent`.
pub fn page_key(parent: &Key, page: u32) -> Key {
    let hex = parent.to_hex();
    let mut buf = [0u8; 64];
    let mut at = 0;
    for chunk in [hex.as_bytes(), b"#page-"] {
        buf[at..at + chunk.len()].copy_from_slice(chunk);
        at += chunk.len();
    }
    let mut page = page;
    let digits_start = at;
    loop {
        buf[at] = b'0' + (page % 10) as u8;
        at += 1;
        page /= 10;
        if page == 0 {
            break;
        }
    }
    buf[digits_start..at].reverse();
    Key::hash_of_bytes(&buf[..at])
}

/// Encodes a split marker value `P:<pages>`.
fn encode_marker(pages: u32) -> Bytes {
    Bytes::from(format!("P:{pages}"))
}

/// Decodes a split marker value, if `value` is one.
fn decode_marker(value: &[u8]) -> Option<u32> {
    let digits = value.strip_prefix(MARKER_PREFIX)?;
    if digits.is_empty() || digits.len() > 9 {
        return None;
    }
    let text = std::str::from_utf8(digits).ok()?;
    text.parse().ok()
}

/// Wraps `value` of hot key `parent` for storage under a mirror node key.
fn wrap_mirror(parent: &Key, value: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(MIRROR_PREFIX.len() + 20 + value.len());
    buf.extend_from_slice(MIRROR_PREFIX);
    buf.extend_from_slice(parent.as_bytes());
    buf.extend_from_slice(value);
    Bytes::from(buf)
}

/// Recovers the values of hot key `parent` from a mirror node's entry.
fn unwrap_mirror(parent: &Key, stored: Vec<Bytes>) -> Vec<Bytes> {
    let mut out = Vec::with_capacity(stored.len());
    for v in stored {
        if v.len() >= MIRROR_PREFIX.len() + 20
            && v.starts_with(MIRROR_PREFIX)
            && &v[MIRROR_PREFIX.len()..MIRROR_PREFIX.len() + 20] == parent.as_bytes()
        {
            out.push(v.slice(MIRROR_PREFIX.len() + 20..));
        }
    }
    out
}

/// The load-balance decorator: entry splitting, hot-key fan-out, and
/// per-node load measurement over any [`Dht`].
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use p2p_index_dht::{BalanceConfig, Dht, Key, RingDht, SplitDht};
///
/// let ring = RingDht::with_named_nodes(32);
/// let mut dht = SplitDht::new(ring, BalanceConfig::mitigating(64, 0, 0));
/// let key = Key::hash_of("popular");
/// for i in 0..20 {
///     dht.put(key, Bytes::from(format!("value-number-{i:04}")));
/// }
/// // The entry outgrew its 64-byte budget and was split into pages on
/// // other nodes, but reads reassemble the full value set.
/// assert_eq!(dht.get(&key).len(), 20);
/// assert!(dht.split_key_count() > 0);
/// ```
pub struct SplitDht<D> {
    inner: D,
    config: BalanceConfig,
    /// Known byte size of unsplit entries (learned by probe or put).
    sizes: HashMap<Key, usize>,
    /// Keys that have been split into pages.
    splits: HashMap<Key, SplitState>,
    /// Gets observed per key, for hot promotion.
    get_counts: HashMap<Key, u64>,
    /// Hot keys and their mirror node keys (promotion order).
    mirrors: HashMap<Key, Vec<Key>>,
    /// Rotation counter for mirror reads.
    rotation: u64,
    /// Per-node load observed across every physical operation issued.
    load: HashMap<NodeId, NodeLoad>,
    promotions: u64,
    splits_started: u64,
    pages_opened: u64,
    reassembled_gets: u64,
    mirror_reads: u64,
    metrics: MetricsRegistry,
}

impl<D: Dht> SplitDht<D> {
    /// Wraps `inner` under `config`.
    pub fn new(inner: D, config: BalanceConfig) -> SplitDht<D> {
        SplitDht {
            inner,
            config,
            sizes: HashMap::new(),
            splits: HashMap::new(),
            get_counts: HashMap::new(),
            mirrors: HashMap::new(),
            rotation: 0,
            load: HashMap::new(),
            promotions: 0,
            splits_started: 0,
            pages_opened: 0,
            reassembled_gets: 0,
            mirror_reads: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    /// The wrapped substrate (read-only).
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped substrate (mutable).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> BalanceConfig {
        self.config
    }

    /// Per-node load observed so far (every physical put/get issued,
    /// attributed to the node responsible for its storage key).
    pub fn load(&self) -> &HashMap<NodeId, NodeLoad> {
        &self.load
    }

    /// Per-node load in ascending node order, one slot per live node
    /// (zero for nodes that served nothing).
    pub fn load_per_node(&self) -> Vec<(NodeId, NodeLoad)> {
        self.inner
            .nodes()
            .into_iter()
            .map(|n| (n, self.load.get(&n).copied().unwrap_or_default()))
            .collect()
    }

    /// Zeroes the per-node load table (e.g. between the publish phase and
    /// the query phase of a scenario).
    pub fn reset_load(&mut self) {
        self.load.clear();
    }

    /// Number of keys currently split into pages.
    pub fn split_key_count(&self) -> usize {
        self.splits.len()
    }

    /// Number of keys promoted to hot (fanned out to mirrors).
    pub fn hot_key_count(&self) -> usize {
        self.mirrors.len()
    }

    /// Counters of the balance machinery:
    /// `(splits, pages_opened, promotions, reassembled_gets, mirror_reads)`.
    pub fn balance_stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.splits_started,
            self.pages_opened,
            self.promotions,
            self.reassembled_gets,
            self.mirror_reads,
        )
    }

    /// Records one physical operation against the node owning `key`.
    fn note(&mut self, key: &Key, put_bytes: Option<usize>) {
        let Some(node) = self.inner.node_for(key) else {
            return;
        };
        let slot = self.load.entry(node).or_default();
        match put_bytes {
            Some(bytes) => {
                slot.puts += 1;
                slot.put_bytes += bytes as u64;
                self.metrics.incr("load.puts");
                self.metrics.add("load.put_bytes", bytes as u64);
            }
            None => {
                slot.gets += 1;
                self.metrics.incr("load.gets");
            }
        }
    }

    /// One physical get through the inner substrate, load-tracked.
    fn raw_get(&mut self, key: Key) -> Result<Vec<Bytes>, DhtError> {
        self.note(&key, None);
        Ok(self.inner.execute(DhtOp::Get(key))?.into_values())
    }

    /// One physical put through the inner substrate, load-tracked.
    fn raw_put(&mut self, key: Key, value: Bytes) -> Result<bool, DhtError> {
        self.note(&key, Some(value.len()));
        Ok(self.inner.execute(DhtOp::Put { key, value })?.into_stored())
    }

    /// One physical remove through the inner substrate, load-tracked as a
    /// put (a write touching the node).
    fn raw_remove(&mut self, key: Key, value: Bytes) -> Result<bool, DhtError> {
        self.note(&key, Some(0));
        Ok(self
            .inner
            .execute(DhtOp::Remove { key, value })?
            .into_removed())
    }

    /// Reads the full logical value set of `key` from its primary
    /// location (parent plus pages), stripping the marker. Also returns
    /// whether the entry was split.
    fn read_logical(&mut self, key: Key) -> Result<(Vec<Bytes>, bool), DhtError> {
        let mut values = self.raw_get(key)?;
        let mut pages = None;
        values.retain(|v| match decode_marker(v) {
            Some(n) => {
                pages = Some(n);
                false
            }
            None => true,
        });
        let Some(pages) = pages else {
            return Ok((values, false));
        };
        for page in 1..=pages {
            let mut chunk = self.raw_get(page_key(&key, page))?;
            values.append(&mut chunk);
        }
        self.reassembled_gets += 1;
        self.metrics.incr("load.reassembled_gets");
        Ok((values, true))
    }

    /// Makes sure the split/size bookkeeping for `key` reflects storage.
    /// Fresh decorators over a pre-populated substrate (e.g. a new client
    /// of a networked cluster) discover existing splits here.
    fn ensure_state(&mut self, key: Key) -> Result<(), DhtError> {
        if self.splits.contains_key(&key) || self.sizes.contains_key(&key) {
            return Ok(());
        }
        let parent = self.raw_get(key)?;
        let pages = parent.iter().find_map(|v| decode_marker(v));
        match pages {
            None => {
                let bytes = parent.iter().map(Bytes::len).sum();
                self.sizes.insert(key, bytes);
            }
            Some(pages) => {
                let mut members: HashSet<Bytes> = HashSet::new();
                let mut total = 0usize;
                for v in parent {
                    if decode_marker(&v).is_none() {
                        total += v.len();
                        members.insert(v);
                    }
                }
                let mut open_bytes = 0;
                for page in 1..=pages {
                    let chunk = self.raw_get(page_key(&key, page))?;
                    open_bytes = chunk.iter().map(Bytes::len).sum();
                    for v in chunk {
                        total += v.len();
                        members.insert(v);
                    }
                }
                self.splits.insert(
                    key,
                    SplitState {
                        pages,
                        open_bytes,
                        total_bytes: total,
                        members,
                    },
                );
            }
        }
        Ok(())
    }

    /// Promotes `key` to hot: mirror its full logical value set onto its
    /// next `fanout` clockwise successors (primary excluded), per the
    /// shared [`placement::replica_keys`] rule.
    fn promote(&mut self, key: Key) -> Result<(), DhtError> {
        let (values, _) = self.read_logical(key)?;
        let ring: Vec<Key> = self.inner.nodes().iter().map(|n| *n.key()).collect();
        let mut mirror_keys = placement::replica_keys(&ring, &key, 1 + self.config.fanout);
        if mirror_keys.len() <= 1 {
            return Ok(());
        }
        mirror_keys.remove(0);
        for mk in &mirror_keys {
            for v in &values {
                self.raw_put(*mk, wrap_mirror(&key, v))?;
            }
        }
        self.mirrors.insert(key, mirror_keys);
        self.promotions += 1;
        self.metrics.incr("load.promotions");
        Ok(())
    }

    /// The get path: hot-key rotation, then primary with reassembly.
    fn do_get(&mut self, key: Key) -> Result<DhtResponse, DhtError> {
        if self.config.hot_threshold > 0 && self.config.fanout > 0 {
            let count = {
                let slot = self.get_counts.entry(key).or_insert(0);
                *slot += 1;
                *slot
            };
            if count == self.config.hot_threshold && !self.mirrors.contains_key(&key) {
                self.promote(key)?;
            }
            if let Some(mirror_keys) = self.mirrors.get(&key) {
                let slots = mirror_keys.len() + 1;
                let pick = (self.rotation % slots as u64) as usize;
                self.rotation += 1;
                if pick > 0 {
                    let mk = mirror_keys[pick - 1];
                    let stored = self.raw_get(mk)?;
                    self.mirror_reads += 1;
                    self.metrics.incr("load.mirror_reads");
                    return Ok(DhtResponse::Values(unwrap_mirror(&key, stored)));
                }
            }
        }
        let (values, _) = self.read_logical(key)?;
        Ok(DhtResponse::Values(values))
    }

    /// The put path: set semantics across pages, append to the open page,
    /// split on budget overflow, propagate to mirrors.
    fn do_put(&mut self, key: Key, value: Bytes) -> Result<DhtResponse, DhtError> {
        let stored = if self.config.page_budget == 0 {
            self.raw_put(key, value.clone())?
        } else {
            self.ensure_state(key)?;
            if let Some(state) = self.splits.get(&key) {
                if state.members.contains(&value) {
                    return Ok(DhtResponse::Stored(false));
                }
                let (open_page, roll_over) = {
                    let state = self.splits.get(&key).expect("present above");
                    (state.pages, state.open_bytes >= self.config.page_budget)
                };
                let target_page = if roll_over {
                    // Open a fresh page and bump the parent's marker.
                    self.raw_remove(key, encode_marker(open_page))?;
                    self.raw_put(key, encode_marker(open_page + 1))?;
                    self.pages_opened += 1;
                    self.metrics.incr("load.pages_opened");
                    open_page + 1
                } else {
                    open_page
                };
                let stored = self.raw_put(page_key(&key, target_page), value.clone())?;
                let state = self.splits.get_mut(&key).expect("present above");
                if roll_over {
                    state.pages = target_page;
                    state.open_bytes = 0;
                }
                if stored {
                    state.open_bytes += value.len();
                    state.total_bytes += value.len();
                    state.members.insert(value.clone());
                }
                stored
            } else {
                let known = self.sizes.get(&key).copied().unwrap_or(0);
                if known + value.len() > self.config.page_budget {
                    // The entry outgrows its budget: split. Existing
                    // values stay on the parent (they are within budget);
                    // the new value opens page 1.
                    let parent_values = self.raw_get(key)?;
                    if parent_values.iter().any(|v| v == &value) {
                        return Ok(DhtResponse::Stored(false));
                    }
                    let mut members: HashSet<Bytes> = parent_values.into_iter().collect();
                    self.raw_put(key, encode_marker(1))?;
                    let stored = self.raw_put(page_key(&key, 1), value.clone())?;
                    members.insert(value.clone());
                    self.sizes.remove(&key);
                    self.splits.insert(
                        key,
                        SplitState {
                            pages: 1,
                            open_bytes: value.len(),
                            total_bytes: known + value.len(),
                            members,
                        },
                    );
                    self.splits_started += 1;
                    self.metrics.incr("load.splits");
                    stored
                } else {
                    let stored = self.raw_put(key, value.clone())?;
                    if stored {
                        *self.sizes.entry(key).or_insert(0) += value.len();
                    }
                    stored
                }
            }
        };
        if stored {
            if let Some(mirror_keys) = self.mirrors.get(&key) {
                for mk in mirror_keys.clone() {
                    self.raw_put(mk, wrap_mirror(&key, &value))?;
                }
            }
            let logical = self
                .splits
                .get(&key)
                .map(|s| s.total_bytes)
                .or_else(|| self.sizes.get(&key).copied());
            if let Some(bytes) = logical {
                self.metrics.observe("load.entry_bytes", bytes as u64);
            }
        }
        Ok(DhtResponse::Stored(stored))
    }

    /// The remove path: parent first, then pages; mirrors follow.
    fn do_remove(&mut self, key: Key, value: Bytes) -> Result<DhtResponse, DhtError> {
        let mut removed = self.raw_remove(key, value.clone())?;
        if self.config.page_budget > 0 {
            self.ensure_state(key)?;
        }
        if let Some(state) = self.splits.get(&key) {
            if !removed {
                for page in 1..=state.pages {
                    if self.raw_remove(page_key(&key, page), value.clone())? {
                        removed = true;
                        break;
                    }
                }
            }
            if removed {
                let state = self.splits.get_mut(&key).expect("present above");
                state.members.remove(&value);
                state.total_bytes = state.total_bytes.saturating_sub(value.len());
            }
        } else if removed {
            if let Some(size) = self.sizes.get_mut(&key) {
                *size = size.saturating_sub(value.len());
            }
        }
        if removed {
            if let Some(mirror_keys) = self.mirrors.get(&key) {
                for mk in mirror_keys.clone() {
                    self.raw_remove(mk, wrap_mirror(&key, &value))?;
                }
            }
        }
        Ok(DhtResponse::Removed(removed))
    }

    /// Read-only reassembly for the `&self` convenience [`Dht::get`]:
    /// identical value set to [`Self::do_get`]'s primary path, without
    /// load accounting or hot promotion.
    fn get_readonly(&self, key: &Key) -> Vec<Bytes> {
        let mut values = self.inner.get(key);
        let mut pages = None;
        values.retain(|v| match decode_marker(v) {
            Some(n) => {
                pages = Some(n);
                false
            }
            None => true,
        });
        if let Some(pages) = pages {
            for page in 1..=pages {
                values.extend(self.inner.get(&page_key(key, page)));
            }
        }
        values
    }
}

impl<D: Dht> Dht for SplitDht<D> {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        match op {
            DhtOp::NodeFor(_) => self.inner.execute(op),
            DhtOp::Get(key) => {
                if self.config.is_observe_only() {
                    self.note(&key, None);
                    return self.inner.execute(DhtOp::Get(key));
                }
                self.do_get(key)
            }
            DhtOp::Put { key, value } => {
                if self.config.is_observe_only() {
                    self.note(&key, Some(value.len()));
                    return self.inner.execute(DhtOp::Put { key, value });
                }
                self.do_put(key, value)
            }
            DhtOp::Remove { key, value } => {
                if self.config.is_observe_only() {
                    self.note(&key, Some(0));
                    return self.inner.execute(DhtOp::Remove { key, value });
                }
                self.do_remove(key, value)
            }
        }
    }

    fn execute_many(&mut self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        // Observe-only: track load per op, then hand the whole batch to
        // the substrate so a networked inner keeps its pipelining.
        if self.config.is_observe_only() {
            for op in &ops {
                match op {
                    DhtOp::Get(key) => self.note(key, None),
                    DhtOp::Put { key, value } => self.note(key, Some(value.len())),
                    DhtOp::Remove { key, .. } => self.note(key, Some(0)),
                    DhtOp::NodeFor(_) => {}
                }
            }
            return self.inner.execute_many(ops);
        }
        // Split-aware batched reads: a read-only batch goes to the
        // substrate as one wave, marker responses trigger a second,
        // batched page-fetch wave, and page values are spliced back in —
        // two pipelined frame pairs over the wire instead of a round
        // trip per page. Batches containing writes (or touching hot
        // keys, whose rotation is per-op state) fall back to the unary
        // path op by op.
        let read_only = ops.iter().all(|op| match op {
            DhtOp::Get(key) => !self.mirrors.contains_key(key) && self.config.hot_threshold == 0,
            DhtOp::NodeFor(_) => true,
            _ => false,
        });
        if !read_only {
            return ops.into_iter().map(|op| self.execute(op)).collect();
        }
        for op in &ops {
            if let DhtOp::Get(key) = op {
                self.note(key, None);
            }
        }
        let keys: Vec<Option<Key>> = ops
            .iter()
            .map(|op| match op {
                DhtOp::Get(key) => Some(*key),
                _ => None,
            })
            .collect();
        let mut results = self.inner.execute_many(ops);
        // Find split entries in the first wave and fetch all their pages
        // as one follow-up batch.
        let mut follow_ups: Vec<DhtOp> = Vec::new();
        let mut splices: Vec<(usize, u32, usize)> = Vec::new(); // (result idx, pages, follow-up start)
        for (i, result) in results.iter_mut().enumerate() {
            let Ok(DhtResponse::Values(values)) = result else {
                continue;
            };
            let mut pages = None;
            values.retain(|v| match decode_marker(v) {
                Some(n) => {
                    pages = Some(n);
                    false
                }
                None => true,
            });
            if let (Some(pages), Some(key)) = (pages, keys[i]) {
                let start = follow_ups.len();
                for page in 1..=pages {
                    let pk = page_key(&key, page);
                    self.note(&pk, None);
                    follow_ups.push(DhtOp::Get(pk));
                }
                splices.push((i, pages, start));
            }
        }
        if !follow_ups.is_empty() {
            let page_results = self.inner.execute_many(follow_ups);
            for (at, pages, start) in splices {
                let mut gathered: Vec<Bytes> = Vec::new();
                let mut failed = None;
                for offset in 0..pages as usize {
                    match &page_results[start + offset] {
                        Ok(resp) => gathered.extend(resp.clone().into_values()),
                        Err(e) => {
                            failed = Some(*e);
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => results[at] = Err(e),
                    None => {
                        if let Ok(DhtResponse::Values(values)) = &mut results[at] {
                            values.append(&mut gathered);
                        }
                    }
                }
                self.reassembled_gets += 1;
                self.metrics.incr("load.reassembled_gets");
            }
        }
        results
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        self.inner.node_for(key)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.inner.nodes()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        if self.config.is_observe_only() {
            return self.inner.get(key);
        }
        self.get_readonly(key)
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        self.inner.entries()
    }

    fn stats(&self) -> DhtStats {
        self.inner.stats()
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics.clone();
        self.inner.set_metrics(metrics);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingDht;

    fn value(i: usize) -> Bytes {
        Bytes::from(format!("Q:/article/value/{i:05}"))
    }

    fn split_dht(budget: usize) -> SplitDht<RingDht> {
        SplitDht::new(
            RingDht::with_named_nodes(64),
            BalanceConfig::mitigating(budget, 0, 0),
        )
    }

    #[test]
    fn page_keys_are_deterministic_and_distinct() {
        let parent = Key::hash_of("parent");
        assert_eq!(page_key(&parent, 1), page_key(&parent, 1));
        assert_ne!(page_key(&parent, 1), page_key(&parent, 2));
        assert_ne!(page_key(&parent, 1), parent);
        let other = Key::hash_of("other");
        assert_ne!(page_key(&parent, 1), page_key(&other, 1));
        // Multi-digit page numbers keep distinct keys.
        assert_ne!(page_key(&parent, 12), page_key(&parent, 21));
    }

    #[test]
    fn marker_roundtrip_and_rejection() {
        assert_eq!(decode_marker(&encode_marker(7)), Some(7));
        assert_eq!(decode_marker(&encode_marker(123_456)), Some(123_456));
        assert_eq!(decode_marker(b"P:"), None);
        assert_eq!(decode_marker(b"P:x"), None);
        assert_eq!(decode_marker(b"Q:/article"), None);
        assert_eq!(decode_marker(b"F:file.pdf"), None);
    }

    #[test]
    fn small_entry_is_not_split() {
        let mut dht = split_dht(1024);
        let key = Key::hash_of("k");
        assert!(dht.put(key, value(1)));
        assert!(!dht.put(key, value(1)), "duplicate suppressed");
        assert_eq!(dht.get(&key).len(), 1);
        assert_eq!(dht.split_key_count(), 0);
    }

    #[test]
    fn overgrown_entry_splits_and_reassembles() {
        let mut dht = split_dht(100);
        let key = Key::hash_of("hot-entry");
        for i in 0..40 {
            assert!(dht.put(key, value(i)), "value {i} must be new");
        }
        assert_eq!(dht.split_key_count(), 1);
        let values = dht.get(&key);
        assert_eq!(values.len(), 40, "reassembled read returns all values");
        let mut expected: Vec<Bytes> = (0..40).map(value).collect();
        let mut got = values.clone();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        // Raw parent storage holds the marker, not all 40 values.
        assert!(dht.inner().get(&key).len() < 40);
    }

    #[test]
    fn duplicates_are_suppressed_across_pages() {
        let mut dht = split_dht(64);
        let key = Key::hash_of("k");
        for i in 0..20 {
            dht.put(key, value(i));
        }
        for i in 0..20 {
            assert!(!dht.put(key, value(i)), "value {i} already present");
        }
        assert_eq!(dht.get(&key).len(), 20);
    }

    #[test]
    fn physical_pages_respect_the_budget() {
        let budget = 100;
        let mut dht = split_dht(budget);
        let key = Key::hash_of("k");
        let max_len = (0..60).map(|i| value(i).len()).max().unwrap();
        for i in 0..60 {
            dht.put(key, value(i));
        }
        let state = dht.splits.get(&key).expect("split");
        for page in 1..=state.pages {
            let bytes: usize = dht
                .inner()
                .get(&page_key(&key, page))
                .iter()
                .map(Bytes::len)
                .sum();
            assert!(
                bytes <= budget + max_len,
                "page {page} holds {bytes} bytes (budget {budget})"
            );
        }
    }

    #[test]
    fn remove_works_across_pages() {
        let mut dht = split_dht(80);
        let key = Key::hash_of("k");
        for i in 0..30 {
            dht.put(key, value(i));
        }
        for i in 0..30 {
            assert!(dht.remove(&key, &value(i)), "value {i} must be removable");
        }
        assert!(dht.get(&key).is_empty());
        assert!(!dht.remove(&key, &value(0)), "already gone");
    }

    #[test]
    fn fresh_decorator_discovers_existing_split() {
        let mut dht = split_dht(100);
        let key = Key::hash_of("k");
        for i in 0..40 {
            dht.put(key, value(i));
        }
        // A second decorator over the same storage (like a new client of
        // a shared cluster) reassembles and appends correctly.
        let ring = dht.inner().clone();
        let mut second = SplitDht::new(ring, BalanceConfig::mitigating(100, 0, 0));
        assert_eq!(second.get(&key).len(), 40);
        assert!(!second.put(key, value(7)), "dedup against discovered pages");
        assert!(second.put(key, value(100)));
        assert_eq!(second.get(&key).len(), 41);
    }

    #[test]
    fn hot_key_fans_out_and_rotates() {
        let mut dht = SplitDht::new(
            RingDht::with_named_nodes(64),
            BalanceConfig::mitigating(0, 4, 3),
        );
        let key = Key::hash_of("flash-crowd-title");
        dht.put(key, value(1));
        dht.put(key, value(2));
        for _ in 0..40 {
            let got = dht.execute(DhtOp::Get(key)).unwrap().into_values();
            assert_eq!(got.len(), 2, "every rotated read sees the full entry");
        }
        assert_eq!(dht.hot_key_count(), 1);
        let (_, _, promotions, _, mirror_reads) = dht.balance_stats();
        assert_eq!(promotions, 1);
        assert!(mirror_reads > 0, "reads rotate onto mirrors");
        // The mirrors carry real load: more than one node served gets.
        let loaded: Vec<_> = dht.load().values().filter(|l| l.gets > 0).collect();
        assert!(loaded.len() > 1, "gets spread over {} nodes", loaded.len());
    }

    #[test]
    fn writes_to_hot_keys_update_mirrors() {
        let mut dht = SplitDht::new(
            RingDht::with_named_nodes(64),
            BalanceConfig::mitigating(0, 2, 2),
        );
        let key = Key::hash_of("hot");
        dht.put(key, value(1));
        for _ in 0..4 {
            dht.execute(DhtOp::Get(key)).unwrap();
        }
        assert_eq!(dht.hot_key_count(), 1);
        dht.put(key, value(2));
        dht.remove(&key, &value(1));
        for _ in 0..6 {
            let got = dht.execute(DhtOp::Get(key)).unwrap().into_values();
            assert_eq!(got, vec![value(2)], "mirrors track writes");
        }
    }

    #[test]
    fn observe_only_passes_through_but_counts_load() {
        let mut plain = RingDht::with_named_nodes(32);
        let mut observed =
            SplitDht::new(RingDht::with_named_nodes(32), BalanceConfig::observe_only());
        let key = Key::hash_of("k");
        for i in 0..10 {
            assert_eq!(plain.put(key, value(i)), observed.put(key, value(i)));
        }
        assert_eq!(plain.get(&key), observed.get(&key));
        assert_eq!(observed.split_key_count(), 0);
        let total: u64 = observed.load().values().map(|l| l.puts).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn batched_reads_reassemble_split_entries() {
        let mut dht = split_dht(100);
        let k1 = Key::hash_of("big");
        let k2 = Key::hash_of("small");
        for i in 0..40 {
            dht.put(k1, value(i));
        }
        dht.put(k2, value(999));
        let results = dht.execute_many(vec![DhtOp::Get(k1), DhtOp::Get(k2)]);
        assert_eq!(results[0].clone().unwrap().into_values().len(), 40);
        assert_eq!(results[1].clone().unwrap().into_values().len(), 1);
    }

    #[test]
    fn batched_unary_parity_on_split_entries() {
        let build = || {
            let mut dht = split_dht(100);
            let keys: Vec<Key> = (0..4).map(|i| Key::hash_of(&format!("k{i}"))).collect();
            for (at, key) in keys.iter().enumerate() {
                for i in 0..(10 + at * 12) {
                    dht.put(*key, value(i));
                }
            }
            (dht, keys)
        };
        let (mut batched, keys) = build();
        let (mut unary, _) = build();
        let ops: Vec<DhtOp> = keys.iter().map(|k| DhtOp::Get(*k)).collect();
        let batch_results = batched.execute_many(ops.clone());
        let unary_results: Vec<_> = ops.into_iter().map(|op| unary.execute(op)).collect();
        for (b, u) in batch_results.iter().zip(&unary_results) {
            let mut bv = b.clone().unwrap().into_values();
            let mut uv = u.clone().unwrap().into_values();
            bv.sort();
            uv.sort();
            assert_eq!(bv, uv);
        }
    }

    #[test]
    fn load_attributes_spread_after_split() {
        // Splitting moves page storage to other nodes: put load lands on
        // more distinct nodes than without a budget.
        let run = |config: BalanceConfig| {
            let mut dht = SplitDht::new(RingDht::with_named_nodes(128), config);
            let key = Key::hash_of("one-giant-entry");
            for i in 0..200 {
                dht.put(key, value(i));
            }
            dht.load().values().filter(|l| l.puts > 0).count()
        };
        let baseline = run(BalanceConfig::observe_only());
        let mitigated = run(BalanceConfig::mitigating(256, 0, 0));
        assert_eq!(baseline, 1, "unsplit entry loads one node");
        assert!(mitigated > 3, "pages spread puts over {mitigated} nodes");
    }
}
