//! Concurrent hammer suite for the sharded server engine.
//!
//! N client threads issue interleaved put/get/remove/batch scripts
//! against one sharded `dhtd`, and every thread's results are checked
//! against a single-threaded oracle run of the same seeded script — the
//! sharded engine must be invisible except for the concurrency. A
//! shared-key phase then drives every thread at the *same* keys and
//! checks the settled final state, and a shard-count-invariance test
//! pins `--shards 1` ≡ `--shards 16` for results and accounting.

use std::net::SocketAddr;

use bytes::Bytes;
use p2p_index_dht::{Dht, DhtOp, DhtResponse, Key, NodeId, RingDht, SplitMix64};
use p2p_index_net::{DhtServer, RemoteDht, RemoteDhtConfig, ServerConfig};

fn spawn_sharded(shards: usize) -> (DhtServer, NodeId) {
    let node = NodeId::hash_of("node-0");
    let config = ServerConfig {
        shards,
        ..ServerConfig::default()
    };
    let server = DhtServer::spawn_partition(node, "127.0.0.1:0", config).expect("server binds");
    (server, node)
}

fn client_for(addr: SocketAddr) -> RemoteDht {
    RemoteDht::connect(
        RemoteDht::named_members(&[addr]),
        RemoteDhtConfig::default(),
    )
}

/// One deterministic op drawn from a seeded stream over `keys`/`values`.
fn next_op(rng: &mut SplitMix64, keys: &[Key], values: &[Bytes]) -> DhtOp {
    let key = keys[rng.gen_index(keys.len())];
    let value = values[rng.gen_index(values.len())].clone();
    match rng.gen_index(100) {
        0..=49 => DhtOp::Get(key),
        50..=74 => DhtOp::Put { key, value },
        75..=89 => DhtOp::Remove { key, value },
        _ => DhtOp::NodeFor(key),
    }
}

/// A thread's scripted workload: unary ops interleaved with small
/// batches, all drawn from one seeded stream so an oracle can replay it.
fn script(seed: u64, keys: &[Key], values: &[Bytes], len: usize) -> Vec<Vec<DhtOp>> {
    let mut rng = SplitMix64::new(seed);
    let mut groups = Vec::with_capacity(len);
    while groups.len() < len {
        if rng.gen_bool(0.25) {
            // A batch of 2-5 ops, exercising the Batch wire path.
            let n = 2 + rng.gen_index(4);
            groups.push((0..n).map(|_| next_op(&mut rng, keys, values)).collect());
        } else {
            groups.push(vec![next_op(&mut rng, keys, values)]);
        }
    }
    groups
}

#[test]
fn hammer_threads_with_disjoint_keys_match_the_oracle() {
    const THREADS: usize = 8;
    const GROUPS: usize = 60;
    let (server, node) = spawn_sharded(16);
    let addr = server.local_addr();
    let values: Vec<Bytes> = (0..4).map(|m| Bytes::from(format!("v{m}"))).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let values = values.clone();
                scope.spawn(move || {
                    // Disjoint per-thread key spaces: interleaving with
                    // other threads cannot perturb this thread's view,
                    // so results must equal the oracle's exactly.
                    let keys: Vec<Key> = (0..8)
                        .map(|j| Key::hash_of(&format!("hammer-{t}-{j}")))
                        .collect();
                    let script = script(0xC0FFEE ^ t as u64, &keys, &values, GROUPS);
                    let mut remote = client_for(addr);
                    let mut oracle = RingDht::from_ids([*node.key()]);
                    for group in script {
                        let got = remote.execute_many(group.clone());
                        let want: Vec<_> = oracle.execute_many(group);
                        // NodeFor answers differ by design: the client
                        // resolves it locally against the member ring.
                        for (g, w) in got.iter().zip(&want) {
                            if matches!(w, Ok(DhtResponse::Node(_))) {
                                continue;
                            }
                            assert_eq!(g, w);
                        }
                    }
                    assert_eq!(remote.stats(), oracle.stats(), "thread {t} accounting");
                    // The final server-side state for this thread's keys
                    // must equal the oracle's store.
                    for key in &keys {
                        let mut got = Dht::get(&remote, key);
                        let mut want = Dht::get(&oracle, key);
                        got.sort();
                        want.sort();
                        assert_eq!(got, want, "thread {t} final state");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("hammer thread panicked");
        }
    });
    server.shutdown();
}

#[test]
fn hammer_threads_on_shared_keys_settle_deterministically() {
    const THREADS: usize = 8;
    const OPS: usize = 120;
    let (server, _) = spawn_sharded(16);
    let addr = server.local_addr();
    // All threads fight over the same four keys, but each writes only
    // its own thread-unique values — so interleaved gets see arbitrary
    // subsets, while each value's *final* presence is decided solely by
    // its owner thread's last write of it.
    let keys: Vec<Key> = (0..4)
        .map(|j| Key::hash_of(&format!("shared-{j}")))
        .collect();

    let finals: Vec<Vec<(Key, Bytes, bool)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let keys = keys.clone();
                scope.spawn(move || {
                    let values: Vec<Bytes> =
                        (0..3).map(|m| Bytes::from(format!("t{t}-v{m}"))).collect();
                    let mut rng = SplitMix64::new(0xD15C0 ^ t as u64);
                    let mut remote = client_for(addr);
                    // Track the last write per (key, value): present iff
                    // the last one was a put.
                    let mut last: std::collections::BTreeMap<(Key, Bytes), bool> =
                        Default::default();
                    for _ in 0..OPS {
                        let key = keys[rng.gen_index(keys.len())];
                        let value = values[rng.gen_index(values.len())].clone();
                        match rng.gen_index(3) {
                            0 => {
                                remote.put(key, value.clone());
                                last.insert((key, value), true);
                            }
                            1 => {
                                remote.remove(&key, &value);
                                last.insert((key, value), false);
                            }
                            _ => {
                                // Interleaved reads must only ever see
                                // whole values someone actually wrote.
                                for v in Dht::get(&remote, &key) {
                                    let s = String::from_utf8(v.to_vec()).expect("utf8 value");
                                    assert!(
                                        s.starts_with('t') && s.contains("-v"),
                                        "torn or foreign value {s:?}"
                                    );
                                }
                            }
                        }
                    }
                    last.into_iter()
                        .map(|((k, v), present)| (k, v, present))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hammer thread panicked"))
            .collect()
    });

    // Settled state: each thread-unique value is present iff its owner's
    // last op on it was a put — no lost updates, no resurrections.
    let check = client_for(addr);
    for per_thread in finals {
        for (key, value, present) in per_thread {
            let stored = Dht::get(&check, &key).contains(&value);
            assert_eq!(stored, present, "final presence of {value:?}");
        }
    }
    server.shutdown();
}

#[test]
fn shard_count_is_invisible_over_the_wire() {
    let (one, node) = spawn_sharded(1);
    let (sixteen, _) = spawn_sharded(16);
    let keys: Vec<Key> = (0..10).map(|j| Key::hash_of(&format!("inv-{j}"))).collect();
    let values: Vec<Bytes> = (0..3).map(|m| Bytes::from(format!("v{m}"))).collect();
    let mut client_one = client_for(one.local_addr());
    let mut client_sixteen = client_for(sixteen.local_addr());
    for group in script(20040324, &keys, &values, 80) {
        let a = client_one.execute_many(group.clone());
        let b = client_sixteen.execute_many(group);
        assert_eq!(a, b);
    }
    assert_eq!(client_one.stats(), client_sixteen.stats());
    // The oracle triple-check: both engines also equal the in-process
    // single-node ring the partition stands in for. (Stats compared
    // before the final-state gets below, which are extra client ops.)
    let mut oracle = RingDht::from_ids([*node.key()]);
    for group in script(20040324, &keys, &values, 80) {
        oracle.execute_many(group);
    }
    assert_eq!(client_one.stats(), oracle.stats());
    for key in &keys {
        let got = Dht::get(&client_one, key);
        assert_eq!(got, Dht::get(&client_sixteen, key));
        assert_eq!(got, Dht::get(&oracle, key));
    }
    one.shutdown();
    sixteen.shutdown();
}
