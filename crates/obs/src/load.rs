//! Per-node load imbalance summaries.
//!
//! The hot-spot exhibit (`repro hotspot`) reduces a per-node load vector
//! (operations served, bytes stored, …) to a handful of comparable
//! numbers: max/mean ratio, Gini coefficient, and the top-k heaviest
//! nodes. Deterministic by construction — pure arithmetic over a sorted
//! copy of the input — so equal runs summarize byte-equally.

/// Summary statistics of one per-node load distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceSummary {
    /// Number of nodes in the distribution (including zero-load nodes).
    pub nodes: usize,
    /// Sum of all per-node loads.
    pub total: u64,
    /// Mean load per node.
    pub mean: f64,
    /// Largest single-node load.
    pub max: u64,
    /// `max / mean` — 1.0 is perfectly balanced; the headline imbalance
    /// number of the hot-spot exhibit.
    pub max_over_mean: f64,
    /// Gini coefficient of the distribution in `[0, 1)`: 0 is perfectly
    /// equal, values near 1 mean a few nodes carry everything.
    pub gini: f64,
    /// The `k` heaviest per-node loads, descending.
    pub top: Vec<u64>,
}

impl ImbalanceSummary {
    /// Summarizes `counts` (one entry per node, zeros included),
    /// retaining the `top_k` heaviest loads.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2p_index_obs::ImbalanceSummary;
    ///
    /// let even = ImbalanceSummary::from_counts(&[5, 5, 5, 5], 2);
    /// assert_eq!(even.max_over_mean, 1.0);
    /// assert_eq!(even.gini, 0.0);
    ///
    /// let skewed = ImbalanceSummary::from_counts(&[20, 0, 0, 0], 2);
    /// assert_eq!(skewed.max_over_mean, 4.0);
    /// assert!(skewed.gini > 0.7);
    /// assert_eq!(skewed.top, vec![20, 0]);
    /// ```
    pub fn from_counts(counts: &[u64], top_k: usize) -> ImbalanceSummary {
        let nodes = counts.len();
        let total: u64 = counts.iter().sum();
        let mean = if nodes == 0 {
            0.0
        } else {
            total as f64 / nodes as f64
        };
        let max = counts.iter().copied().max().unwrap_or(0);
        let max_over_mean = if mean > 0.0 { max as f64 / mean } else { 0.0 };

        // Gini over the ascending-sorted vector x (1-based i):
        //   G = 2·Σᵢ i·xᵢ / (n·Σ x) − (n+1)/n
        let gini = if nodes == 0 || total == 0 {
            0.0
        } else {
            let mut sorted: Vec<u64> = counts.to_vec();
            sorted.sort_unstable();
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            let n = nodes as f64;
            (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
        };

        let mut descending: Vec<u64> = counts.to_vec();
        descending.sort_unstable_by(|a, b| b.cmp(a));
        descending.truncate(top_k);

        ImbalanceSummary {
            nodes,
            total,
            mean,
            max,
            max_over_mean,
            gini,
            top: descending,
        }
    }

    /// Renders the summary as a JSON object fragment (hand-rolled, like
    /// every other JSON emitter in this workspace).
    pub fn to_json(&self) -> String {
        let top: Vec<String> = self.top.iter().map(u64::to_string).collect();
        format!(
            "{{\"nodes\": {}, \"total\": {}, \"mean\": {:.3}, \"max\": {}, \"max_over_mean\": {:.3}, \"gini\": {:.4}, \"top\": [{}]}}",
            self.nodes,
            self.total,
            self.mean,
            self.max,
            self.max_over_mean,
            self.gini,
            top.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_distributions() {
        let empty = ImbalanceSummary::from_counts(&[], 3);
        assert_eq!(empty.nodes, 0);
        assert_eq!(empty.gini, 0.0);
        assert_eq!(empty.max_over_mean, 0.0);

        let zeros = ImbalanceSummary::from_counts(&[0, 0, 0], 3);
        assert_eq!(zeros.total, 0);
        assert_eq!(zeros.gini, 0.0);
        assert_eq!(zeros.top, vec![0, 0, 0]);
    }

    #[test]
    fn uniform_distribution_is_balanced() {
        let s = ImbalanceSummary::from_counts(&[7; 100], 5);
        assert_eq!(s.max_over_mean, 1.0);
        assert!(s.gini.abs() < 1e-9);
        assert_eq!(s.top, vec![7; 5]);
    }

    #[test]
    fn concentrated_distribution_is_imbalanced() {
        let mut counts = vec![0u64; 100];
        counts[42] = 1000;
        let s = ImbalanceSummary::from_counts(&counts, 3);
        assert_eq!(s.max, 1000);
        assert_eq!(s.max_over_mean, 100.0);
        assert!(s.gini > 0.98, "gini {} for total concentration", s.gini);
        assert_eq!(s.top, vec![1000, 0, 0]);
    }

    #[test]
    fn gini_orders_by_skew() {
        let mild = ImbalanceSummary::from_counts(&[4, 5, 6, 5], 2);
        let harsh = ImbalanceSummary::from_counts(&[17, 1, 1, 1], 2);
        assert!(mild.gini < harsh.gini);
        assert!(mild.gini >= 0.0 && harsh.gini < 1.0);
    }

    #[test]
    fn json_fragment_is_stable() {
        let s = ImbalanceSummary::from_counts(&[2, 2, 8], 2);
        let json = s.to_json();
        assert!(json.contains("\"nodes\": 3"));
        assert!(json.contains("\"max\": 8"));
        assert!(json.contains("\"top\": [8, 2]"));
    }
}
