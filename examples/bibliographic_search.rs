//! A distributed bibliographic database, searched interactively.
//!
//! Builds the paper's evaluation scenario at small scale — a synthetic
//! DBLP-like corpus published into a 100-node network — and then walks one
//! search the way an interactive user would (§IV-B): submit a broad query,
//! inspect the list of more specific queries that comes back, pick one,
//! repeat until the file is found. Also shows the three schemes of Fig. 8
//! side by side on the same query.
//!
//! Run with: `cargo run --example bibliographic_search`

use p2p_index::index::IndexTarget;
use p2p_index::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 300,
        author_pool: 80,
        seed: 7,
        ..CorpusConfig::default()
    });

    // Publish the corpus three times, once per scheme, into separate
    // networks, so we can compare lookups.
    let mut services: Vec<(&str, IndexService<RingDht>)> = Vec::new();
    for (name, scheme) in [
        ("simple", &SimpleScheme as &dyn IndexScheme),
        ("flat", &FlatScheme),
        ("complex", &ComplexScheme),
    ] {
        let mut service = IndexService::new(RingDht::with_named_nodes(100), CachePolicy::None);
        for article in corpus.articles() {
            service.publish(&article.descriptor(), article.file_name(), scheme)?;
        }
        services.push((name, service));
    }

    // Pick a target the corpus's most prolific author wrote.
    let target = corpus.article(0).expect("non-empty corpus");
    let (first, last) = target.primary_author();
    println!(
        "target article: \"{}\" by {first} {last} ({} {})\n",
        target.title, target.conf, target.year
    );

    // --- Interactive walk on the simple scheme --------------------------
    println!("interactive session (simple scheme):");
    let service = &mut services[0].1;
    let mut current: Query = QueryBuilder::new("article")
        .value("author/first", first)
        .value("author/last", last)
        .build();
    let target_msd = Query::most_specific(&target.descriptor());
    for step in 1.. {
        let resp = service.lookup_step(&current)?;
        println!("  step {step}: lookup {current}");
        println!(
            "    node {} returned {} result(s)",
            resp.node.unwrap(),
            resp.indexed.len()
        );
        // The user scans the result list and picks the entry matching the
        // article they are after.
        let next = resp.indexed.iter().find(|t| match t {
            IndexTarget::Query(q) => *q != current && q.covers(&target_msd),
            IndexTarget::File(f) => *f == target.file_name(),
        });
        match next {
            Some(IndexTarget::File(f)) => {
                println!("    -> found file {f}\n");
                break;
            }
            Some(IndexTarget::Query(q)) => {
                println!("    -> user refines to {q}");
                current = q.clone();
            }
            None => {
                println!("    -> dead end (not indexed)");
                break;
            }
        }
        if step > 10 {
            break;
        }
    }

    // --- Scheme comparison on one automated search ----------------------
    println!("automated search for every article by {first} {last}:");
    let author_query: Query = QueryBuilder::new("article")
        .value("author/first", first)
        .value("author/last", last)
        .build();
    for (name, service) in &mut services {
        let report = service.search(&author_query)?;
        println!(
            "  {name:8} {} file(s), {} interactions",
            report.files.len(),
            report.interactions
        );
    }
    println!();

    // --- A non-indexed query recovers through generalization ------------
    let author_year: Query = QueryBuilder::new("article")
        .value("author/first", first)
        .value("author/last", last)
        .value("year", target.year.to_string())
        .build();
    let report = services[0].1.search(&author_year)?;
    println!("non-indexed query {author_year}");
    println!(
        "  recovered {} file(s) via generalization ({} extra lookup(s))",
        report.files.len(),
        report.generalization_steps
    );
    assert!(report.generalized());
    assert!(report.files.iter().any(|h| h.file == target.file_name()));

    Ok(())
}
