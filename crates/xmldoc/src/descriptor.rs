//! File descriptors: canonicalized XML documents that identify stored files.
//!
//! A descriptor is "a textual, human-readable description of the file's
//! content" (§III-A). The node responsible for storing a file `f` is found
//! by hashing the descriptor: `k = h(d)`. For that to be well-defined the
//! descriptor text must be unique per logical descriptor, so [`Descriptor`]
//! always holds the [canonical form](crate::Element::canonicalize) of its
//! element tree.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::parse::{parse, ParseXmlError};
use crate::tree::Element;

/// A canonicalized file descriptor.
///
/// Two descriptors constructed from trees that differ only in field order
/// compare equal and serialize identically — and therefore hash to the same
/// DHT key.
///
/// # Examples
///
/// ```
/// use p2p_index_xmldoc::{Descriptor, Element};
///
/// let d1 = Descriptor::new(
///     Element::new("article")
///         .with_child(Element::with_text("year", "1989"))
///         .with_child(Element::with_text("title", "TCP")),
/// );
/// let d2 = Descriptor::new(
///     Element::new("article")
///         .with_child(Element::with_text("title", "TCP"))
///         .with_child(Element::with_text("year", "1989")),
/// );
/// assert_eq!(d1, d2);
/// assert_eq!(d1.canonical_text(), d2.canonical_text());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Descriptor {
    root: Element,
}

impl Descriptor {
    /// Wraps (and canonicalizes) an element tree as a descriptor.
    pub fn new(root: Element) -> Descriptor {
        Descriptor {
            root: root.canonicalize(),
        }
    }

    /// Parses a descriptor from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] when the text is not well-formed XML.
    pub fn parse(xml: &str) -> Result<Descriptor, ParseXmlError> {
        Ok(Descriptor::new(parse(xml)?))
    }

    /// The canonical element tree.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// The canonical serialized text — the input to `h(d)`.
    pub fn canonical_text(&self) -> String {
        self.root.to_xml()
    }

    /// Text of the element at a `/`-separated path, if present.
    pub fn field(&self, path: &str) -> Option<String> {
        self.root.path_text(path).filter(|t| !t.is_empty())
    }

    /// Consumes the descriptor and returns the underlying element tree.
    pub fn into_element(self) -> Element {
        self.root
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_text())
    }
}

impl From<Element> for Descriptor {
    fn from(root: Element) -> Self {
        Descriptor::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_d1() -> Descriptor {
        Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>TCP</title><conf>SIGCOMM</conf><year>1989</year><size>315635</size></article>",
        )
        .unwrap()
    }

    #[test]
    fn field_access() {
        let d = fig1_d1();
        assert_eq!(d.field("author/last").as_deref(), Some("Smith"));
        assert_eq!(d.field("conf").as_deref(), Some("SIGCOMM"));
        assert_eq!(d.field("missing"), None);
    }

    #[test]
    fn canonical_text_is_order_independent() {
        let reordered = Descriptor::parse(
            "<article><size>315635</size><year>1989</year><conf>SIGCOMM</conf>\
             <title>TCP</title><author><last>Smith</last><first>John</first></author></article>",
        )
        .unwrap();
        assert_eq!(fig1_d1(), reordered);
        assert_eq!(fig1_d1().canonical_text(), reordered.canonical_text());
    }

    #[test]
    fn distinct_descriptors_have_distinct_text() {
        let d2 = Descriptor::parse(
            "<article><author><first>John</first><last>Smith</last></author>\
             <title>IPv6</title><conf>INFOCOM</conf><year>1996</year><size>312352</size></article>",
        )
        .unwrap();
        assert_ne!(fig1_d1(), d2);
        assert_ne!(fig1_d1().canonical_text(), d2.canonical_text());
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Descriptor::parse("<a><b></a>").is_err());
    }

    #[test]
    fn display_and_conversions() {
        let d = fig1_d1();
        assert_eq!(d.to_string(), d.canonical_text());
        let e = d.clone().into_element();
        assert_eq!(Descriptor::from(e), d);
    }
}
