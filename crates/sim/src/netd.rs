//! Networked-cluster control for the `repro` binary.
//!
//! Three entry points, all built on `crates/net`:
//!
//! * [`serve`] — the `repro serve` daemon: run one `dhtd` node serving a
//!   single-node partition of any substrate on a TCP port. Prints
//!   `DHTD LISTENING <addr>` on stdout once bound (the multi-process
//!   harness parses that line to learn ephemeral ports), then blocks
//!   until a wire shutdown frame arrives.
//! * [`net_demo`] — the `repro net-demo` client: point an
//!   `IndexService<RemoteDht>` at a running cluster, publish a
//!   deterministic corpus, drive a query workload, and report the same
//!   metrics the in-process simulation reports.
//! * [`net_bench`] — loopback RPC micro-benchmarks for `repro bench`:
//!   ops/sec and p50/p99 latency for get and put at 1 and 8 client
//!   threads, median of 3 samples, emitted as the `net` section of
//!   `BENCH_results.json`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use p2p_index_core::{CachePolicy, IndexService, RetryPolicy, SimpleScheme};
use p2p_index_dht::{
    ChordNetwork, Dht, DhtOp, FaultConfig, FaultyDht, KademliaNetwork, Key, NodeId, PastryNetwork,
    RingDht,
};
use p2p_index_net::{
    DhtServer, LoopbackCluster, RemoteDht, RemoteDhtConfig, ReplicationConfig, ServerConfig,
};
use p2p_index_obs::MetricsRegistry;
use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};

/// Options for the `repro serve` daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Which substrate implementation backs this node's partition:
    /// `ring`, `chord`, `kademlia`, or `pastry`.
    pub substrate: String,
    /// TCP port to bind on loopback (0 = ephemeral, reported on stdout).
    pub port: u16,
    /// The node's name; its identifier is `hash(name)`. The standard
    /// cluster convention is `node-0..n-1`, matching
    /// `RingDht::with_named_nodes`.
    pub node_name: String,
    /// Message-loss probability injected behind the server (0 = none).
    pub loss: f64,
    /// Seed for the fault injector, when `loss > 0`.
    pub fault_seed: u64,
    /// Replication factor R; together with a non-empty `peers` list this
    /// makes the daemon a member of a replicated cluster. `1` (the
    /// default) serves a plain unreplicated partition.
    pub replicas: usize,
    /// Write quorum W (local apply counts as one ack).
    pub write_quorum: usize,
    /// Full cluster membership as `(node name, address)` pairs, self
    /// included — every daemon gets the same list, which is what keeps
    /// client routing, fan-out, and repair on one shared placement ring.
    pub peers: Vec<(String, SocketAddr)>,
    /// Anti-entropy repair interval in milliseconds (0 disables).
    pub repair_ms: u64,
    /// Storage shard count for the ring substrate: `> 1` (the default)
    /// serves the reader-concurrent sharded engine, `1` is the classic
    /// single-mutex path kept as the contention baseline. Non-ring
    /// substrates and fault-injected partitions always use the
    /// single-mutex path (they wrap arbitrary substrates).
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            substrate: "ring".to_string(),
            port: 0,
            node_name: "node-0".to_string(),
            loss: 0.0,
            fault_seed: 0,
            replicas: 1,
            write_quorum: 1,
            peers: Vec::new(),
            repair_ms: 200,
            shards: ServerConfig::default().shards,
        }
    }
}

/// Builds the single-node substrate partition `serve` exposes.
fn build_partition(opts: &ServeOptions) -> Result<Box<dyn Dht + Send>, String> {
    let id = Key::hash_of(&opts.node_name);
    let inner: Box<dyn Dht + Send> = match opts.substrate.as_str() {
        "ring" => Box::new(RingDht::from_ids([id])),
        "chord" => Box::new(ChordNetwork::with_perfect_tables([id])),
        "kademlia" => Box::new(KademliaNetwork::with_nodes([id])),
        "pastry" => Box::new(PastryNetwork::with_perfect_tables([id])),
        other => {
            return Err(format!(
                "unknown substrate {other:?} (ring|chord|kademlia|pastry)"
            ))
        }
    };
    if opts.loss > 0.0 {
        // Each Dht impl is concrete behind FaultyDht, so wrap per kind.
        let cfg = FaultConfig::lossy(opts.fault_seed, opts.loss);
        return Ok(match opts.substrate.as_str() {
            "ring" => Box::new(FaultyDht::new(RingDht::from_ids([id]), cfg)),
            "chord" => Box::new(FaultyDht::new(ChordNetwork::with_perfect_tables([id]), cfg)),
            "kademlia" => Box::new(FaultyDht::new(KademliaNetwork::with_nodes([id]), cfg)),
            "pastry" => Box::new(FaultyDht::new(
                PastryNetwork::with_perfect_tables([id]),
                cfg,
            )),
            _ => unreachable!("validated above"),
        });
    }
    Ok(inner)
}

/// Runs one `dhtd` node until a wire shutdown frame arrives.
///
/// Prints exactly one `DHTD LISTENING <addr>` line on stdout once the
/// listener is bound; everything else goes to stderr. Returns only after
/// graceful shutdown.
pub fn serve(opts: &ServeOptions) -> Result<(), String> {
    use std::io::Write;
    let replication = if opts.replicas > 1 {
        if opts.peers.is_empty() {
            return Err("--replicas > 1 needs --peers NAME=HOST:PORT,...".to_string());
        }
        let members: Vec<(Key, SocketAddr)> = opts
            .peers
            .iter()
            .map(|(name, addr)| (Key::hash_of(name), *addr))
            .collect();
        let mut config = ReplicationConfig::new(
            Key::hash_of(&opts.node_name),
            members,
            opts.replicas,
            opts.write_quorum,
        );
        config.repair_interval =
            (opts.repair_ms > 0).then(|| Duration::from_millis(opts.repair_ms));
        Some(config)
    } else {
        None
    };
    let config = ServerConfig {
        replication,
        shards: opts.shards,
        ..ServerConfig::default()
    };
    // The plain ring partition gets the sharded reader-concurrent
    // engine; everything else (other substrates, fault injectors) wraps
    // an arbitrary `Dht` and keeps the single-mutex path.
    let server = if opts.substrate == "ring" && opts.loss == 0.0 {
        DhtServer::spawn_partition(
            NodeId::hash_of(&opts.node_name),
            ("127.0.0.1", opts.port),
            config,
        )
    } else {
        DhtServer::spawn(build_partition(opts)?, ("127.0.0.1", opts.port), config)
    }
    .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let addr = server.local_addr();
    // The harness parses this exact line to learn the ephemeral port, so
    // flush it before blocking.
    println!("DHTD LISTENING {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    eprintln!(
        "# dhtd: {} partition for {} ({}), loss {}, replicas {} (W={})",
        opts.substrate,
        opts.node_name,
        NodeId::hash_of(&opts.node_name),
        opts.loss,
        opts.replicas,
        opts.write_quorum
    );
    server.wait();
    eprintln!("# dhtd: shutdown");
    Ok(())
}

/// Summary of one `net_demo` run, also used by tests to compare a remote
/// run against an in-process one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemoOutcome {
    /// Total files located across all queries.
    pub files_found: u64,
    /// Total user-system interactions across all queries.
    pub interactions: u64,
    /// Searches that returned no files.
    pub misses: u64,
    /// Final substrate stats: (messages, lookups).
    pub messages: u64,
    /// Lookups half of the substrate stats.
    pub lookups: u64,
}

/// Publishes `articles` deterministic articles and runs `queries`
/// workload queries through `dht`, with the retry budget the robustness
/// experiments use. This is the exact same workload whether `dht` is a
/// `RemoteDht` over a live cluster or an in-process substrate — which is
/// what makes remote-vs-local equality a meaningful check.
pub fn run_workload<D: Dht>(
    dht: D,
    articles: usize,
    queries: usize,
    seed: u64,
) -> Result<DemoOutcome, String> {
    let corpus = Corpus::generate(CorpusConfig {
        articles,
        author_pool: (articles / 3).max(8),
        seed,
        ..CorpusConfig::default()
    });
    let mut service =
        IndexService::with_retry(dht, CachePolicy::Multi, RetryPolicy::with_budget(seed, 4));
    for article in corpus.articles() {
        service
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .map_err(|e| format!("publish failed: {e}"))?;
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), seed);
    let mut outcome = DemoOutcome {
        files_found: 0,
        interactions: 0,
        misses: 0,
        messages: 0,
        lookups: 0,
    };
    for item in generator.take_queries(queries) {
        let report = service
            .search(&item.query)
            .map_err(|e| format!("search {} failed: {e}", item.query))?;
        outcome.files_found += report.files.len() as u64;
        outcome.interactions += u64::from(report.interactions);
        if report.files.is_empty() {
            outcome.misses += 1;
        }
    }
    let stats = service.dht().stats();
    outcome.messages = stats.messages;
    outcome.lookups = stats.lookups;
    Ok(outcome)
}

/// Result-quality summary of a [`run_workload_with_churn`] run: what the
/// user saw, with the degraded-answer accounting
/// ([`abandoned`](ChurnOutcome::abandoned)) broken out. Message counts
/// are deliberately absent — a churned remote cluster pays failover
/// traffic an in-process twin does not, so equality claims under churn
/// are about *answers*, not wire cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Total files located across all queries.
    pub files_found: u64,
    /// Total user-system interactions across all queries.
    pub interactions: u64,
    /// Searches that returned no files.
    pub misses: u64,
    /// Index branches abandoned after the retry budget ran out, summed
    /// over every search's `SearchReport::completeness` — the degraded
    /// reporting a replicated cluster must keep at zero when one member
    /// dies.
    pub abandoned: u64,
}

/// [`run_workload`] with a mid-workload membership change: publishes the
/// corpus, runs the query workload, and invokes `kill` on the service
/// right before query `kill_at` fires. The closure gets the service so
/// in-process twins can reach the substrate
/// (`service.dht_mut().kill(..)`); multi-process harnesses ignore the
/// argument and SIGKILL a child instead.
///
/// Any search returning `Err` aborts the run — "zero failed searches
/// under churn" is exactly `Ok(outcome)` from this function.
pub fn run_workload_with_churn<D: Dht>(
    dht: D,
    articles: usize,
    queries: usize,
    seed: u64,
    kill_at: usize,
    mut kill: impl FnMut(&mut IndexService<D>),
) -> Result<ChurnOutcome, String> {
    let corpus = Corpus::generate(CorpusConfig {
        articles,
        author_pool: (articles / 3).max(8),
        seed,
        ..CorpusConfig::default()
    });
    let mut service =
        IndexService::with_retry(dht, CachePolicy::Multi, RetryPolicy::with_budget(seed, 4));
    for article in corpus.articles() {
        service
            .publish(&article.descriptor(), article.file_name(), &SimpleScheme)
            .map_err(|e| format!("publish failed: {e}"))?;
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), seed);
    let mut outcome = ChurnOutcome {
        files_found: 0,
        interactions: 0,
        misses: 0,
        abandoned: 0,
    };
    for (i, item) in generator.take_queries(queries).into_iter().enumerate() {
        if i == kill_at {
            kill(&mut service);
        }
        let report = service
            .search(&item.query)
            .map_err(|e| format!("search {} failed: {e}", item.query))?;
        outcome.files_found += report.files.len() as u64;
        outcome.interactions += u64::from(report.interactions);
        outcome.abandoned += u64::from(report.completeness.abandoned);
        if report.files.is_empty() {
            outcome.misses += 1;
        }
    }
    Ok(outcome)
}

/// The `repro net-demo` client: run [`run_workload`] over a live cluster.
///
/// `members` are `host:port` addresses in node order (the `i`-th serves
/// `node-i`). `replicas`/`read_quorum` must match the cluster's serve
/// flags (`1`/`1` for an unreplicated cluster). With `shutdown` set,
/// every member is sent a wire shutdown frame after the run — handy for
/// tearing down a quickstart cluster.
pub fn net_demo(
    members: &[SocketAddr],
    articles: usize,
    queries: usize,
    seed: u64,
    replicas: usize,
    read_quorum: usize,
    shutdown: bool,
) -> Result<(), String> {
    let client_config = RemoteDhtConfig {
        replicas,
        read_quorum,
        ..RemoteDhtConfig::default()
    };
    let client = RemoteDht::connect(RemoteDht::named_members(members), client_config.clone());
    eprintln!(
        "# net-demo: {} member(s), {articles} articles, {queries} queries, seed {seed}, \
         replicas {replicas} (Rq={read_quorum})",
        members.len()
    );
    // Keep a second client for teardown: run_workload consumes the first.
    let closer = shutdown
        .then(|| RemoteDht::connect(RemoteDht::named_members(members), client_config.clone()));
    let outcome = run_workload(client, articles, queries, seed)?;
    println!(
        "queries {queries}: {} file(s) found, {} misses, {} interactions, \
         {} DHT messages, {} lookups",
        outcome.files_found,
        outcome.misses,
        outcome.interactions,
        outcome.messages,
        outcome.lookups
    );
    if let Some(closer) = closer {
        closer.shutdown_members();
        eprintln!("# net-demo: sent shutdown to {} member(s)", members.len());
    }
    Ok(())
}

/// Latency percentile over a sorted slice of microsecond samples.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank definition: the smallest value with at least p percent
    // of the sample at or below it.
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One measured cell of the net bench: `threads` clients hammering a
/// loopback server with `ops` operations each of one kind.
struct NetBenchCell {
    op: &'static str,
    threads: usize,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Runs one `(op, threads)` cell with clients from `make_client` and
/// returns the aggregate throughput plus latency percentiles.
fn net_bench_cell(
    make_client: &(dyn Fn() -> RemoteDht + Sync),
    op: &'static str,
    threads: usize,
) -> NetBenchCell {
    const OPS_PER_THREAD: usize = 300;
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = make_client();
                    let mut lats = Vec::with_capacity(OPS_PER_THREAD);
                    for i in 0..OPS_PER_THREAD {
                        let key = Key::hash_of(&format!("bench-{t}-{i}"));
                        // "mixed" is the paper's read-heavy shape: 90%
                        // gets, every 10th op a put.
                        let write = match op {
                            "put" => true,
                            "mixed" => i % 10 == 0,
                            _ => false,
                        };
                        let req = if write {
                            DhtOp::Put {
                                key,
                                value: bytes::Bytes::from(format!("value-{t}-{i}")),
                            }
                        } else {
                            DhtOp::Get(key)
                        };
                        let at = Instant::now();
                        client.execute(req).expect("bench op on live loopback");
                        lats.push(at.elapsed().as_micros() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench thread panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    NetBenchCell {
        op,
        threads,
        ops_per_sec: latencies.len() as f64 / wall.max(1e-9),
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

/// Runs one `(op, threads)` cell 3 times and returns the median sample
/// by throughput.
fn median_cell(
    make_client: &(dyn Fn() -> RemoteDht + Sync),
    op: &'static str,
    threads: usize,
) -> NetBenchCell {
    let mut samples: Vec<NetBenchCell> = (0..3)
        .map(|_| net_bench_cell(make_client, op, threads))
        .collect();
    samples.sort_by(|a, b| {
        a.ops_per_sec
            .partial_cmp(&b.ops_per_sec)
            .expect("throughput is finite")
    });
    samples.remove(1)
}

/// One measured side of the fan-out bench: the frame count and latency
/// of fetching `k` keys, either one `execute` at a time or as a single
/// `execute_many` batch.
struct FanoutCell {
    frames_per_fanout: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Measures a k-key multi-get against `cluster` — the shape a search's
/// child fan-out takes — over a fresh metered client. Unary issues 2·k
/// frames per fan-out; batched issues one frame pair per routed member,
/// independent of k.
fn fanout_cell(cluster: &LoopbackCluster, k: usize, batched: bool) -> FanoutCell {
    const ROUNDS: usize = 60;
    let metrics = MetricsRegistry::new();
    let mut client = cluster.client();
    client.set_metrics(metrics.clone());
    let keys: Vec<Key> = (0..k)
        .map(|i| Key::hash_of(&format!("fanout-{i}")))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        client
            .execute(DhtOp::Put {
                key: *key,
                value: bytes::Bytes::from(format!("payload-{i}")),
            })
            .expect("seed put on live loopback");
    }
    let seeded = metrics.counter("net.frames_out") + metrics.counter("net.frames_in");
    let mut lats = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let at = Instant::now();
        if batched {
            let ops: Vec<DhtOp> = keys.iter().map(|key| DhtOp::Get(*key)).collect();
            for result in client.execute_many(ops) {
                result.expect("bench get on live loopback");
            }
        } else {
            for key in &keys {
                client.execute(DhtOp::Get(*key)).expect("bench get");
            }
        }
        lats.push(at.elapsed().as_micros() as u64);
    }
    let frames = metrics.counter("net.frames_out") + metrics.counter("net.frames_in") - seeded;
    lats.sort_unstable();
    FanoutCell {
        frames_per_fanout: frames as f64 / ROUNDS as f64,
        p50_us: percentile(&lats, 50.0),
        p99_us: percentile(&lats, 99.0),
    }
}

/// The loopback RPC micro-benchmark: get and put at 1 and 8 client
/// threads against a single-node loopback server, plus a k-child
/// fan-out exhibit (unary vs batched multi-get) under the `batch` key
/// and a replicated-cluster exhibit (quorum reads and fan-out writes)
/// under the `quorum` key. Each throughput cell is sampled 3 times and
/// the median by throughput is reported. Returns the `net` JSON object
/// for `BENCH_results.json` (and prints a summary line per cell on
/// stderr), plus whether any sharded-sweep cell regressed below the
/// noise margin against its single-lock twin — the caller turns that
/// into a non-zero exit, same as the grid sweep's gate.
pub fn net_bench() -> (String, bool) {
    let cluster = LoopbackCluster::start_ring(1).expect("loopback bench cluster binds");
    let mut cells = Vec::new();
    for op in ["get", "put"] {
        for threads in [1usize, 8] {
            let median = median_cell(&|| cluster.client(), op, threads);
            eprintln!(
                "# net {op} x{threads}: {:.0} ops/s, p50 {} us, p99 {} us (median of 3)",
                median.ops_per_sec, median.p50_us, median.p99_us
            );
            cells.push(median);
        }
    }
    cluster.shutdown();

    // Sharded-vs-single-lock thread sweep: the tentpole exhibit. The
    // same build serves the same single-node partition twice — once on
    // the default sharded engine, once behind `--shards 1` (the old
    // global mutex) — and get / put / 90-10 mixed throughput is swept
    // across client thread counts. A cell regresses when the sharded
    // engine falls below 0.75x the locked twin at more than one thread;
    // the margin absorbs loopback noise, and single-thread cells are
    // informational (there is no contention to win there, and one-core
    // hosts show parity by construction).
    const SWEEP_THREADS: [usize; 5] = [1, 2, 4, 8, 16];
    const SWEEP_MARGIN: f64 = 0.75;
    let shard_count = ServerConfig::default().shards;
    let sharded_cluster =
        LoopbackCluster::start_ring_sharded(1, shard_count).expect("sharded bench cluster binds");
    let locked_cluster =
        LoopbackCluster::start_ring_sharded(1, 1).expect("single-lock bench cluster binds");
    let mut sweep_rows = Vec::new();
    let mut regressed = false;
    for op in ["get", "put", "mixed"] {
        for threads in SWEEP_THREADS {
            let sharded = median_cell(&|| sharded_cluster.client(), op, threads);
            let locked = median_cell(&|| locked_cluster.client(), op, threads);
            let speedup = sharded.ops_per_sec / locked.ops_per_sec.max(1e-9);
            let cell_regressed = threads > 1 && speedup < SWEEP_MARGIN;
            regressed |= cell_regressed;
            eprintln!(
                "# net sharded {op} x{threads}: {:.0} ops/s sharded vs {:.0} ops/s locked \
                 ({speedup:.2}x){}",
                sharded.ops_per_sec,
                locked.ops_per_sec,
                if cell_regressed { " REGRESSED" } else { "" }
            );
            sweep_rows.push(format!(
                "{{ \"op\": \"{op}\", \"threads\": {threads}, \
                 \"sharded_ops_per_sec\": {:.1}, \"locked_ops_per_sec\": {:.1}, \
                 \"sharded_p50_us\": {}, \"locked_p50_us\": {}, \"speedup\": {speedup:.2} }}",
                sharded.ops_per_sec, locked.ops_per_sec, sharded.p50_us, locked.p50_us
            ));
        }
    }
    sharded_cluster.shutdown();
    locked_cluster.shutdown();

    // Quorum exhibit: the price of durability. A replicated 4-member
    // cluster (R=3, W=2, Rq=2): every put fans out server-side to two
    // more replicas, every get reads two replicas in parallel.
    const QUORUM_MEMBERS: usize = 4;
    const QUORUM_R: usize = 3;
    const QUORUM_W: usize = 2;
    const QUORUM_RQ: usize = 2;
    let q_cluster = LoopbackCluster::start_replicated_ring(QUORUM_MEMBERS, QUORUM_R, QUORUM_W)
        .expect("replicated bench cluster binds");
    let mut quorum_cells = Vec::new();
    for op in ["get", "put"] {
        let mut samples: Vec<NetBenchCell> = (0..3)
            .map(|_| net_bench_cell(&|| q_cluster.replicated_client(QUORUM_R, QUORUM_RQ), op, 1))
            .collect();
        samples.sort_by(|a, b| {
            a.ops_per_sec
                .partial_cmp(&b.ops_per_sec)
                .expect("throughput is finite")
        });
        let median = samples.remove(1);
        eprintln!(
            "# net quorum {op} (R={QUORUM_R} W={QUORUM_W} Rq={QUORUM_RQ}): \
             {:.0} ops/s, p50 {} us, p99 {} us (median of 3)",
            median.ops_per_sec, median.p50_us, median.p99_us
        );
        quorum_cells.push(median);
    }
    q_cluster.shutdown();

    // Fan-out exhibit: the k-child multi-get a search issues after
    // resolving an index node, unary vs batched, over a multi-member
    // ring so the batch actually splits across connections.
    const FANOUT_K: usize = 16;
    const FANOUT_MEMBERS: usize = 4;
    let fan_cluster =
        LoopbackCluster::start_ring(FANOUT_MEMBERS).expect("fan-out bench cluster binds");
    let unary = fanout_cell(&fan_cluster, FANOUT_K, false);
    let batch = fanout_cell(&fan_cluster, FANOUT_K, true);
    fan_cluster.shutdown();
    eprintln!(
        "# net fan-out k={FANOUT_K} over {FANOUT_MEMBERS} members: \
         unary {:.1} frames/fan-out (p50 {} us), batched {:.1} frames/fan-out (p50 {} us)",
        unary.frames_per_fanout, unary.p50_us, batch.frames_per_fanout, batch.p50_us
    );

    let body = cells
        .iter()
        .map(|c| {
            format!(
                "{{ \"op\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {} }}",
                c.op, c.threads, c.ops_per_sec, c.p50_us, c.p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let fanout_json = |c: &FanoutCell| {
        format!(
            "{{ \"frames_per_fanout\": {:.1}, \"p50_us\": {}, \"p99_us\": {} }}",
            c.frames_per_fanout, c.p50_us, c.p99_us
        )
    };
    let quorum_body = quorum_cells
        .iter()
        .map(|c| {
            format!(
                "{{ \"op\": \"{}\", \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {} }}",
                c.op, c.ops_per_sec, c.p50_us, c.p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let sweep_body = sweep_rows.join(",\n      ");
    let json = format!(
        "{{ \"transport\": \"tcp-loopback\", \"samples\": 3, \"statistic\": \"median\", \
         \"cells\": [\n    {body}\n  ],\n  \"batch\": {{ \"k\": {FANOUT_K}, \
         \"members\": {FANOUT_MEMBERS}, \"unary\": {}, \"batched\": {} }},\n  \
         \"quorum\": {{ \"members\": {QUORUM_MEMBERS}, \"replicas\": {QUORUM_R}, \
         \"write_quorum\": {QUORUM_W}, \"read_quorum\": {QUORUM_RQ}, \
         \"cells\": [ {quorum_body} ] }},\n  \
         \"sharded\": {{ \"shards\": {shard_count}, \"margin\": {SWEEP_MARGIN}, \
         \"regressed\": {regressed}, \"cells\": [\n      {sweep_body}\n    ] }} }}",
        fanout_json(&unary),
        fanout_json(&batch)
    );
    (json, regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_workload_equals_in_process_workload() {
        // The core promise, at sim scale: same corpus, same queries, same
        // seed -> byte-equal outcomes and message accounting whether the
        // substrate is a TCP cluster or in-process.
        let cluster = LoopbackCluster::start_ring(4).expect("loopback cluster binds");
        let remote = run_workload(cluster.client(), 24, 16, 9).expect("remote workload");
        let local = run_workload(RingDht::with_named_nodes(4), 24, 16, 9).expect("local workload");
        assert_eq!(remote, local);
        cluster.shutdown();
    }

    #[test]
    fn build_partition_rejects_unknown_substrates() {
        let err = match build_partition(&ServeOptions {
            substrate: "carrier-pigeon".to_string(),
            ..ServeOptions::default()
        }) {
            Err(message) => message,
            Ok(_) => panic!("unknown substrate was accepted"),
        };
        assert!(err.contains("carrier-pigeon"));
    }

    #[test]
    fn every_substrate_kind_serves_a_partition() {
        for kind in ["ring", "chord", "kademlia", "pastry"] {
            let mut dht = build_partition(&ServeOptions {
                substrate: kind.to_string(),
                ..ServeOptions::default()
            })
            .expect("known substrate");
            assert_eq!(dht.len(), 1, "{kind}");
            assert!(
                dht.put(Key::hash_of("k"), bytes::Bytes::from_static(b"v")),
                "{kind}"
            );
        }
    }

    #[test]
    fn batched_fanout_costs_one_frame_pair_per_member() {
        // The acceptance claim behind `net.batch`: a k-child fan-out is
        // 2·k frames unary, but at most one frame pair per routed member
        // batched — independent of k.
        let cluster = LoopbackCluster::start_ring(4).expect("loopback cluster binds");
        let unary = fanout_cell(&cluster, 8, false);
        let batch = fanout_cell(&cluster, 8, true);
        cluster.shutdown();
        assert!(
            (unary.frames_per_fanout - 16.0).abs() < 1e-9,
            "unary: 2 frames per child at k=8, got {}",
            unary.frames_per_fanout
        );
        assert!(
            batch.frames_per_fanout <= 8.0 + 1e-9,
            "batched: at most one frame pair per member over 4 members, got {}",
            batch.frames_per_fanout
        );
        assert!(batch.frames_per_fanout < unary.frames_per_fanout);
    }

    #[test]
    fn percentiles_are_sane() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
