//! Property-based tests of the system's central invariant: the covering
//! relation is *sound* with respect to matching, and the index layer only
//! ever follows covering edges.
//!
//! Random descriptors and random queries are generated over a small field
//! vocabulary so that matches/coverings actually occur.

use p2p_index::prelude::*;
use proptest::prelude::*;

const FIRSTS: &[&str] = &["John", "Alan", "Maria"];
const LASTS: &[&str] = &["Smith", "Doe", "Ross"];
const TITLES: &[&str] = &["TCP", "IPv6", "Wavelets"];
const CONFS: &[&str] = &["SIGCOMM", "INFOCOM"];
const YEARS: &[&str] = &["1989", "1996", "2001"];

fn arb_descriptor() -> impl Strategy<Value = Descriptor> {
    (
        0usize..FIRSTS.len(),
        0usize..LASTS.len(),
        0usize..TITLES.len(),
        0usize..CONFS.len(),
        0usize..YEARS.len(),
    )
        .prop_map(|(f, l, t, c, y)| {
            Descriptor::new(
                Element::new("article")
                    .with_child(
                        Element::new("author")
                            .with_child(Element::with_text("first", FIRSTS[f]))
                            .with_child(Element::with_text("last", LASTS[l])),
                    )
                    .with_child(Element::with_text("title", TITLES[t]))
                    .with_child(Element::with_text("conf", CONFS[c]))
                    .with_child(Element::with_text("year", YEARS[y])),
            )
        })
}

/// A random query over the same vocabulary: any subset of constraints.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::option::of(0usize..FIRSTS.len()),
        proptest::option::of(0usize..LASTS.len()),
        proptest::option::of(0usize..TITLES.len()),
        proptest::option::of(0usize..CONFS.len()),
        proptest::option::of(0usize..YEARS.len()),
        proptest::option::of((0usize..3, 0usize..YEARS.len())),
    )
        .prop_map(|(f, l, t, c, y, cmp)| {
            let mut b = QueryBuilder::new("article");
            if let Some(f) = f {
                b = b.value("author/first", FIRSTS[f]);
            }
            if let Some(l) = l {
                b = b.value("author/last", LASTS[l]);
            }
            if let Some(t) = t {
                b = b.value("title", TITLES[t]);
            }
            if let Some(c) = c {
                b = b.value("conf", CONFS[c]);
            }
            if let Some(y) = y {
                b = b.value("year", YEARS[y]);
            }
            if let Some((op, y)) = cmp {
                let op = [CmpOp::Ge, CmpOp::Le, CmpOp::Ne][op];
                b = b.compare("year2", op, YEARS[y]);
            }
            b.build()
        })
}

proptest! {
    /// Soundness: q' ⊒ q and d matches q  ⇒  d matches q'.
    /// This is the definition of covering (§III-B); if it ever failed, an
    /// index path could lead to data not matching the user's query.
    #[test]
    fn covering_is_sound_wrt_matching(
        d in arb_descriptor(),
        q1 in arb_query(),
        q2 in arb_query(),
    ) {
        if q2.covers(&q1) && q1.matches(d.root()) {
            prop_assert!(q2.matches(d.root()), "{q2} covers {q1} but missed {d}");
        }
    }

    /// The MSD is equivalent to its descriptor: exactly the descriptors
    /// equal to d match the MSD of d.
    #[test]
    fn msd_equivalence(d1 in arb_descriptor(), d2 in arb_descriptor()) {
        let msd = Query::most_specific(&d1);
        prop_assert!(msd.matches(d1.root()));
        if d1 != d2 {
            // Different field values: the MSD must not match.
            prop_assert!(!msd.matches(d2.root()), "{msd} matched {d2}");
        }
    }

    /// Covering is reflexive and transitive (a partial preorder); combined
    /// with canonical normalization, equality is exactly mutual covering.
    #[test]
    fn covering_is_a_partial_order(
        a in arb_query(),
        b in arb_query(),
        c in arb_query(),
    ) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "transitivity: {a} ⊒ {b} ⊒ {c}");
        }
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b, "antisymmetry up to normalization");
        }
    }

    /// A query covers the MSD of a descriptor iff it matches the
    /// descriptor — the bridge between the evaluation and containment
    /// semantics (exact on the XP{/,[]} fragment the schemes use).
    #[test]
    fn covers_msd_iff_matches(d in arb_descriptor(), q in arb_query()) {
        let msd = Query::most_specific(&d);
        prop_assert_eq!(
            q.covers(&msd),
            q.matches(d.root()),
            "query {} vs descriptor {}", q, d
        );
    }

    /// Dropping a top-level branch always yields a covering query: the
    /// generalization step of §IV-B can never lose the target.
    #[test]
    fn generalizations_cover_the_original(q in arb_query()) {
        for g in q.generalizations() {
            prop_assert!(g.covers(&q), "{g} must cover {q}");
        }
    }

    /// Canonical text round-trips through the parser.
    #[test]
    fn canonical_text_roundtrips(q in arb_query()) {
        let reparsed: Query = q.to_string().parse().expect("canonical text parses");
        prop_assert_eq!(reparsed, q);
    }

    /// Scheme edges always satisfy the covering invariant, for every
    /// scheme and every descriptor.
    #[test]
    fn scheme_edges_always_cover(d in arb_descriptor()) {
        let msd = Query::most_specific(&d);
        for scheme in [
            &SimpleScheme as &dyn IndexScheme,
            &FlatScheme,
            &ComplexScheme,
            &Fig4Scheme,
        ] {
            for (from, to) in scheme.index_edges(&d, &msd) {
                prop_assert!(from.covers(&to), "{}: {} ⊒ {}", scheme.name(), from, to);
            }
        }
    }

    /// End-to-end soundness on random mini-corpora: every file returned by
    /// a search matches the query.
    #[test]
    fn random_corpus_search_soundness(
        descriptors in proptest::collection::vec(arb_descriptor(), 1..12),
        q in arb_query(),
    ) {
        let mut service = IndexService::new(RingDht::with_named_nodes(12), CachePolicy::None);
        let mut unique = Vec::new();
        for (i, d) in descriptors.iter().enumerate() {
            if !unique.contains(d) {
                unique.push(d.clone());
                service.publish(d, format!("file-{i}"), &SimpleScheme).unwrap();
            }
        }
        let report = service.search(&q).unwrap();
        for hit in &report.files {
            let d = unique
                .iter()
                .find(|d| Query::most_specific(d) == hit.msd)
                .expect("hit corresponds to a published descriptor");
            prop_assert!(q.matches(d.root()), "{} returned for {}", hit.msd, q);
        }
    }
}
