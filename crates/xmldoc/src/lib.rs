//! Semi-structured XML descriptors for the p2p-index system.
//!
//! Files stored in the peer-to-peer network are identified by *descriptors*
//! — "textual, human-readable descriptions of the file's content" (§III of
//! *Data Indexing in Peer-to-Peer DHT Networks*), expressed as
//! semi-structured XML in the style of DBLP records. This crate provides:
//!
//! * [`tree`] — the element tree model, serialization (compact and pretty),
//!   and the canonical form that makes hashing well-defined;
//! * [`parse`](mod@parse) — a recursive-descent parser for the XML subset
//!   descriptors use, with located errors;
//! * [`descriptor`] — the [`Descriptor`] wrapper that couples a tree to its
//!   canonical text (the input of `k = h(d)`).
//!
//! # Quick start
//!
//! ```
//! use p2p_index_xmldoc::Descriptor;
//!
//! let d = Descriptor::parse(
//!     "<article><author><first>John</first><last>Smith</last></author>\
//!      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
//! )?;
//! assert_eq!(d.field("author/last").as_deref(), Some("Smith"));
//! # Ok::<(), p2p_index_xmldoc::ParseXmlError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod descriptor;
pub mod parse;
pub mod tree;

pub use descriptor::Descriptor;
pub use parse::{parse, ParseErrorKind, ParseXmlError};
pub use tree::{escape, Element, XmlNode};
