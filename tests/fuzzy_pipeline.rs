//! Integration tests for the fuzzy-matching pipeline (§VI): misspelled
//! queries corrected against the published-descriptor vocabulary, then
//! resolved through the regular index machinery.

use p2p_index::prelude::*;

fn setup() -> (Corpus, IndexService<RingDht>, FuzzyCorrector) {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 120,
        author_pool: 35,
        seed: 77,
        ..CorpusConfig::default()
    });
    let mut service = IndexService::new(RingDht::with_named_nodes(40), CachePolicy::None);
    let mut corrector = FuzzyCorrector::new(2);
    for article in corpus.articles() {
        let d = article.descriptor();
        corrector.learn_descriptor(&d);
        service
            .publish(&d, article.file_name(), &SimpleScheme)
            .expect("publish succeeds");
    }
    (corpus, service, corrector)
}

/// Introduce a one-character typo into the longest word of a value.
fn misspell(value: &str) -> String {
    let mut chars: Vec<char> = value.chars().collect();
    // Swap two adjacent alphabetic characters near the middle.
    let mid = chars.len() / 2;
    for i in mid..chars.len().saturating_sub(1) {
        if chars[i].is_alphabetic() && chars[i + 1].is_alphabetic() && chars[i] != chars[i + 1] {
            chars.swap(i, i + 1);
            return chars.into_iter().collect();
        }
    }
    chars.push('x');
    chars.into_iter().collect()
}

#[test]
fn misspelled_author_queries_recover_after_correction() {
    let (corpus, mut service, corrector) = setup();
    let mut corrected_count = 0;
    for article in corpus.articles().iter().take(25) {
        let (first, last) = article.primary_author();
        let typo = misspell(last);
        if typo == *last {
            continue;
        }
        let q: Query = QueryBuilder::new("article")
            .value("author/first", first)
            .value("author/last", &typo)
            .build();
        // Without correction the misspelled query finds nothing (unless the
        // typo collides with a real name, which the corpus generator avoids
        // at this scale).
        let raw = service.search(&q).expect("search succeeds");
        let fixed_query = corrector.correct_query(&q);
        if fixed_query == q {
            // Typo not correctable within distance 2 (rare: very short
            // names); skip.
            continue;
        }
        let fixed = service.search(&fixed_query).expect("search succeeds");
        // Short names can tie at equal edit distance with a different real
        // name (genuine fuzzy ambiguity), so recovery is counted, not
        // required per-query; soundness is always required.
        if fixed.files.iter().any(|h| h.file == article.file_name()) {
            corrected_count += 1;
        }
        assert!(
            fixed.files.len() >= raw.files.len(),
            "correction must not lose results"
        );
    }
    assert!(
        corrected_count >= 12,
        "most typos must recover the target, got {corrected_count}/25"
    );
}

#[test]
fn correction_never_breaks_well_spelled_queries() {
    let (corpus, mut service, corrector) = setup();
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 7);
    for item in generator.take_queries(100) {
        let corrected = corrector.correct_query(&item.query);
        assert_eq!(
            corrected, item.query,
            "a query built from real descriptor values must be a fixpoint"
        );
        let a: Vec<String> = service
            .search(&item.query)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        let b: Vec<String> = service
            .search(&corrected)
            .unwrap()
            .files
            .into_iter()
            .map(|h| h.file)
            .collect();
        assert_eq!(a, b);
    }
}

#[test]
fn corrected_results_always_match_the_corrected_query() {
    let (corpus, mut service, corrector) = setup();
    for article in corpus.articles().iter().take(15) {
        let typo = misspell(&article.conf);
        let q: Query = QueryBuilder::new("article").value("conf", typo).build();
        let fixed = corrector.correct_query(&q);
        let report = service.search(&fixed).expect("search succeeds");
        for hit in &report.files {
            let id: usize = hit
                .file
                .trim_start_matches("article-")
                .trim_end_matches(".pdf")
                .parse()
                .unwrap();
            let d = corpus.article(id).unwrap().descriptor();
            assert!(fixed.matches(d.root()), "{} vs {}", hit.file, fixed);
        }
    }
}
