//! Concurrency tests: read paths of the substrates are `Sync` and behave
//! under parallel access (lookups are `&self` with atomic counters).

use bytes::Bytes;
use p2p_index_dht::{ChordNetwork, Dht, KademliaNetwork, Key, NodeId, RingDht};
use parking_lot::RwLock;

#[test]
fn substrates_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChordNetwork>();
    assert_send_sync::<RingDht>();
    assert_send_sync::<KademliaNetwork>();
    assert_send_sync::<Key>();
    assert_send_sync::<NodeId>();
}

#[test]
fn parallel_chord_lookups_agree_with_oracle() {
    let mut net =
        ChordNetwork::with_perfect_tables((0..128).map(|i| Key::hash_of(&format!("node-{i}"))));
    for i in 0..500 {
        net.put(
            Key::hash_of(&format!("item-{i}")),
            Bytes::from(format!("v{i}")),
        );
    }
    let net = &net;
    crossbeam::scope(|scope| {
        for t in 0..8 {
            scope.spawn(move |_| {
                for i in (t..500).step_by(8) {
                    let key = Key::hash_of(&format!("item-{i}"));
                    // Routed read returns the stored value...
                    assert_eq!(net.get(&key), vec![Bytes::from(format!("v{i}"))]);
                    // ...and routed resolution matches the global oracle.
                    let origin = net.nodes()[i % 128];
                    let (owner, _) = net.find_successor_from(*origin.key(), &key);
                    assert_eq!(Some(owner), net.responsible_node(&key));
                }
            });
        }
    })
    .expect("no thread panicked");
    // Stats kept up with the concurrent traffic.
    assert!(net.stats().lookups >= 1000);
}

#[test]
fn concurrent_readers_with_writer_behind_rwlock() {
    // The intended shared-state pattern for applications: RwLock around
    // the network, many readers, occasional writer.
    let net = RwLock::new(RingDht::with_named_nodes(64));
    for i in 0..200 {
        net.write()
            .put(Key::hash_of(&format!("k{i}")), Bytes::from(format!("v{i}")));
    }
    crossbeam::scope(|scope| {
        // Readers.
        for t in 0..4 {
            let net = &net;
            scope.spawn(move |_| {
                for round in 0..50 {
                    let i = (t * 50 + round) % 200;
                    let values = net.read().get(&Key::hash_of(&format!("k{i}")));
                    assert_eq!(values, vec![Bytes::from(format!("v{i}"))]);
                }
            });
        }
        // Writer adding fresh keys concurrently.
        let net = &net;
        scope.spawn(move |_| {
            for i in 200..260 {
                net.write()
                    .put(Key::hash_of(&format!("k{i}")), Bytes::from(format!("v{i}")));
            }
        });
    })
    .expect("no thread panicked");
    assert_eq!(net.read().total_keys(), 260);
}

#[test]
fn parallel_kademlia_reads() {
    let mut net = KademliaNetwork::with_nodes((0..64).map(|i| Key::hash_of(&format!("node-{i}"))));
    for i in 0..200 {
        net.put(
            Key::hash_of(&format!("item-{i}")),
            Bytes::from(format!("v{i}")),
        );
    }
    let net = &net;
    crossbeam::scope(|scope| {
        for t in 0..8 {
            scope.spawn(move |_| {
                for i in (t..200).step_by(8) {
                    let key = Key::hash_of(&format!("item-{i}"));
                    assert_eq!(net.get(&key), vec![Bytes::from(format!("v{i}"))]);
                }
            });
        }
    })
    .expect("no thread panicked");
}
