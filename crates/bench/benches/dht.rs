//! Micro-benchmarks of the DHT substrates: hashing, ring arithmetic,
//! Chord routing, and storage operations.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p2p_index_dht::{hash::sha1, ChordNetwork, Dht, KademliaNetwork, Key, NodeId, RingDht};
use std::hint::black_box;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha1(black_box(data)))
        });
    }
    g.finish();
}

fn bench_key_ops(c: &mut Criterion) {
    let a = Key::hash_of("a");
    let b_key = Key::hash_of("b");
    let k = Key::hash_of("probe");
    c.bench_function("key/wrapping_add", |b| {
        b.iter(|| black_box(a).wrapping_add(black_box(&b_key)))
    });
    c.bench_function("key/in_interval", |b| {
        b.iter(|| black_box(k).in_interval(black_box(&a), black_box(&b_key)))
    });
    c.bench_function("key/hash_of_query_text", |b| {
        b.iter(|| {
            Key::hash_of(black_box(
                "/article[author[first/John][last/Smith]][conf/INFOCOM]",
            ))
        })
    });
}

fn bench_chord_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord/find_successor");
    for n in [64usize, 256, 1024] {
        let net =
            ChordNetwork::with_perfect_tables((0..n).map(|i| Key::hash_of(&format!("node-{i}"))));
        let origins = net.nodes();
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            let mut i = 0usize;
            b.iter(|| {
                i = i.wrapping_add(1);
                let key = Key::hash_of(&format!("probe-{i}"));
                net.find_successor_from(*origins[i % origins.len()].key(), black_box(&key))
            })
        });
    }
    g.finish();
}

fn bench_chord_storage(c: &mut Criterion) {
    let mut net =
        ChordNetwork::with_perfect_tables((0..256).map(|i| Key::hash_of(&format!("node-{i}"))));
    for i in 0..1000 {
        net.put(
            Key::hash_of(&format!("seed-{i}")),
            Bytes::from(format!("value-{i}")),
        );
    }
    let mut i = 0usize;
    c.bench_function("chord/put", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            net.put(
                Key::hash_of(&format!("bench-{i}")),
                Bytes::from_static(b"v"),
            )
        })
    });
    c.bench_function("chord/get", |b| {
        let mut j = 0usize;
        b.iter(|| {
            j = j.wrapping_add(1);
            net.get(&Key::hash_of(&format!("seed-{}", j % 1000)))
        })
    });
}

fn bench_chord_join_converge(c: &mut Criterion) {
    c.bench_function("chord/join_and_converge_64", |b| {
        b.iter_with_setup(
            || {
                ChordNetwork::with_perfect_tables(
                    (0..64).map(|i| Key::hash_of(&format!("node-{i}"))),
                )
            },
            |mut net| {
                let boot = net.nodes()[0];
                net.join(NodeId::hash_of("newcomer"), boot)
                    .expect("join succeeds");
                net.converge(50)
            },
        )
    });
}

fn bench_ring(c: &mut Criterion) {
    let mut ring = RingDht::with_named_nodes(500);
    for i in 0..1000 {
        ring.put(
            Key::hash_of(&format!("seed-{i}")),
            Bytes::from(format!("value-{i}")),
        );
    }
    c.bench_function("ring/owner_500_nodes", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            ring.owner(&Key::hash_of(&format!("probe-{i}")))
        })
    });
    c.bench_function("ring/get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            ring.get(&Key::hash_of(&format!("seed-{}", i % 1000)))
        })
    });
}

fn bench_kademlia(c: &mut Criterion) {
    let mut g = c.benchmark_group("kademlia/find_closest");
    for n in [64usize, 256] {
        let mut net =
            KademliaNetwork::with_nodes((0..n).map(|i| Key::hash_of(&format!("node-{i}"))));
        let origins = net.nodes();
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = i.wrapping_add(1);
                let key = Key::hash_of(&format!("probe-{i}"));
                net.find_closest(*origins[i % origins.len()].key(), black_box(&key))
            })
        });
    }
    g.finish();

    let mut net = KademliaNetwork::with_nodes((0..128).map(|i| Key::hash_of(&format!("node-{i}"))));
    for i in 0..500 {
        net.put(
            Key::hash_of(&format!("seed-{i}")),
            Bytes::from(format!("v{i}")),
        );
    }
    c.bench_function("kademlia/get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            net.get(&Key::hash_of(&format!("seed-{}", i % 500)))
        })
    });
}

criterion_group!(
    benches,
    bench_sha1,
    bench_key_ops,
    bench_chord_routing,
    bench_chord_storage,
    bench_chord_join_converge,
    bench_ring,
    bench_kademlia,
);
criterion_main!(benches);
