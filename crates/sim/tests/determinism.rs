//! Determinism guarantees of the performance layer.
//!
//! Two contracts are locked down here:
//!
//! 1. The parallel experiment executor produces **byte-identical** CSV/text
//!    output to a serial run — every cell is a pure function of its config
//!    and per-cell seeds, and results are reassembled in canonical order.
//! 2. The memoized query key (`Query::canonical_text` + the service's
//!    interning table) equals the historical `Key::hash_of(&q.to_string())`
//!    for every query the generator can produce.

use p2p_index_core::{CachePolicy, IndexService};
use p2p_index_dht::{Key, RingDht};
use p2p_index_sim::experiments::{self, EvalConfig, Evaluation};
use p2p_index_sim::simulation::SchemeChoice;
use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};

/// Tiny but non-degenerate scale: enough activity for every policy to
/// cache, evict, and generalize.
fn tiny() -> EvalConfig {
    EvalConfig {
        nodes: 20,
        articles: 120,
        queries: 400,
        seed: 42,
    }
}

#[test]
fn parallel_grid_output_is_byte_identical_to_serial() {
    let mut serial = Evaluation::new(tiny());
    let mut parallel = Evaluation::new(tiny());
    parallel.run_cells(&experiments::paper_grid(), 4);
    assert_eq!(parallel.cells_run(), experiments::paper_grid().len());

    // Every grid exhibit, rendered from both evaluations.
    type Renderer = fn(&mut Evaluation) -> p2p_index_sim::table::TextTable;
    let renderers: [(&str, Renderer); 7] = [
        ("fig11", experiments::fig11_interactions),
        ("fig12", experiments::fig12_traffic),
        ("fig13", experiments::fig13_hit_ratio),
        ("fig14", experiments::fig14_cache_storage),
        ("fig15", experiments::fig15_hotspots),
        ("table1", experiments::table1_errors),
        ("ext-structures", experiments::ext_structure_breakdown),
    ];
    for (name, render) in renderers {
        let s = render(&mut serial);
        let p = render(&mut parallel);
        assert_eq!(s.to_csv(), p.to_csv(), "{name} CSV must be byte-identical");
        assert_eq!(
            s.to_text(),
            p.to_text(),
            "{name} text must be byte-identical"
        );
    }
}

#[test]
fn parallel_robustness_sweep_is_byte_identical_to_serial() {
    let base = EvalConfig {
        nodes: 16,
        articles: 60,
        queries: 600, // 50 queries per loss × budget cell
        seed: 42,
    };
    let serial = experiments::ext_robustness(&base, 1);
    let parallel = experiments::ext_robustness(&base, 4);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_text(), parallel.to_text());
}

#[test]
fn run_cells_at_any_job_count_matches_serial_metrics() {
    let cells = [
        (SchemeChoice::Simple, CachePolicy::Single),
        (SchemeChoice::Flat, CachePolicy::None),
        (SchemeChoice::Complex, CachePolicy::Lru(10)),
    ];
    let mut reference = Evaluation::new(tiny());
    for &(s, p) in &cells {
        reference.cell(s, p);
    }
    for jobs in [2, 4, 8] {
        let mut e = Evaluation::new(tiny());
        e.run_cells(&cells, jobs);
        for &(s, p) in &cells {
            assert_eq!(
                e.cell(s, p),
                reference.cell(s, p),
                "{s:?}/{p} at jobs={jobs}"
            );
        }
    }
}

#[test]
fn metrics_snapshots_are_identical_at_any_job_count() {
    let cells = [
        (SchemeChoice::Simple, CachePolicy::Single),
        (SchemeChoice::Flat, CachePolicy::None),
        (SchemeChoice::Complex, CachePolicy::Lru(10)),
    ];
    let mut reference = Evaluation::new(tiny());
    reference.set_collect_metrics(true);
    for &(s, p) in &cells {
        reference.cell(s, p);
    }
    let reference_snaps = reference.metrics_snapshots();
    assert_eq!(
        reference_snaps.len(),
        cells.len(),
        "every collected cell must produce a snapshot"
    );
    for jobs in [2, 8] {
        let mut e = Evaluation::new(tiny());
        e.set_collect_metrics(true);
        e.run_cells(&cells, jobs);
        let snaps = e.metrics_snapshots();
        assert_eq!(snaps.len(), reference_snaps.len(), "jobs={jobs}");
        for ((label_a, a), (label_b, b)) in reference_snaps.iter().zip(&snaps) {
            assert_eq!(label_a, label_b, "jobs={jobs}: snapshot ordering");
            assert_eq!(a, b, "jobs={jobs}: {label_a} snapshot must not drift");
            assert_eq!(a.to_json(), b.to_json(), "jobs={jobs}: {label_a} JSON");
        }
    }
}

#[test]
fn collecting_metrics_does_not_perturb_simulation_metrics() {
    let (scheme, policy) = (SchemeChoice::Simple, CachePolicy::Lru(10));
    let mut plain = Evaluation::new(tiny());
    let mut observed = Evaluation::new(tiny());
    observed.set_collect_metrics(true);
    assert_eq!(
        plain.cell(scheme, policy),
        observed.cell(scheme, policy),
        "attaching the registry must be behavior-neutral"
    );
}

#[test]
fn memoized_key_matches_hash_of_rendered_text() {
    let corpus = Corpus::generate(CorpusConfig {
        articles: 200,
        author_pool: 50,
        seed: 7,
        ..CorpusConfig::default()
    });
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 7);
    let mut service = IndexService::new(RingDht::with_named_nodes(16), CachePolicy::Single);
    for _ in 0..500 {
        let item = generator.next_query();
        let q = item.query;
        // The memoized canonical text is exactly the Display rendering...
        assert_eq!(q.canonical_text(), q.to_string(), "{q}");
        // ...so the compute-once key equals the historical definition.
        let expected = Key::hash_of(&q.to_string());
        assert_eq!(IndexService::<RingDht>::key_of(&q), expected, "{q}");
        assert_eq!(service.cached_key(&q), expected, "{q}");
        // And the interned lookup is stable on repeat sightings.
        assert_eq!(service.cached_key(&q), expected, "{q}");
    }
}

#[test]
fn memoized_key_survives_query_transformations() {
    // Derived queries (generalizations, value rewrites) re-render and
    // re-normalize, so their memoized text must also match a fresh parse.
    let q: p2p_index_xpath::Query =
        "/article[author[first/John][last/Smith]][conf/SIGCOMM][year/1989]"
            .parse()
            .unwrap();
    for g in q.generalizations() {
        let reparsed: p2p_index_xpath::Query = g.to_string().parse().unwrap();
        assert_eq!(g, reparsed);
        assert_eq!(
            Key::hash_of(g.canonical_text()),
            Key::hash_of(&reparsed.to_string())
        );
    }
    let rewritten = q.map_values(|path, value| {
        (path == ["article", "year"] && value == "1989").then(|| "1996".to_string())
    });
    assert!(rewritten.canonical_text().contains("1996"));
    assert_eq!(
        Key::hash_of(rewritten.canonical_text()),
        Key::hash_of(&rewritten.to_string())
    );
}
