//! The threaded `dhtd` server: one node's storage partition over TCP.
//!
//! [`DhtServer::spawn`] binds a listener (port 0 for an ephemeral port),
//! starts an accept loop on its own thread, and serves every connection on
//! a dedicated worker thread — plain `std::thread`, no async runtime, no
//! new dependencies. Each worker reads request frames, executes them
//! against the shared substrate under a mutex (substrates are small,
//! synchronous state machines; the lock is held only for the in-memory
//! operation, never across I/O), and writes the response frame back with
//! the echoed request id.
//!
//! Shutdown is graceful and reachable two ways: locally via
//! [`DhtServer::shutdown`], or over the wire with a
//! [`Message::Shutdown`](crate::wire::Message::Shutdown) frame (what the
//! multi-process harness sends its children). Either path stops the
//! accept loop, lets in-flight requests finish, and joins every worker.
//!
//! Per-connection read timeouts double as the shutdown poll interval: a
//! worker blocked in `read` wakes at least every `read_timeout` to check
//! the flag, so shutdown latency is bounded without extra machinery.
//!
//! # Replication
//!
//! With a [`ReplicationConfig`] the server becomes one member of a
//! replicated cluster. Writes (`Put` / `Remove`) arriving as client
//! `Request` / `Batch` frames are applied locally and fanned out as
//! [`Message::Replicate`](crate::wire::Message::Replicate) frames to the
//! other members of the key's replica set — the R clockwise successors
//! shared with `p2p_index_dht::placement`, so client routing, server
//! fan-out, and repair can never disagree. The local apply plus remote
//! acks must reach the write quorum `W` or the client sees a transient
//! [`DhtError::Timeout`]. Incoming `Replicate` and
//! [`Transfer`](crate::wire::Message::Transfer) frames apply locally and
//! are **never re-forwarded**, so replication storms are impossible by
//! construction. A background anti-entropy thread periodically pushes
//! every local entry to the other members of its replica set
//! (`NodeStore::put` deduplicates, so repair is idempotent), which is
//! what restores the replication factor after a member is killed and
//! restarted empty. Deletes leave **tombstones**: a `Remove` marks the
//! `(key, value)` pair dead, repair withholds tombstoned values from its
//! pushes, drops them from incoming `Transfer` frames, and re-sends the
//! remove to the replica set so stale members get scrubbed — a deleted
//! mapping can no longer be resurrected by a stale replica's add-only
//! push. A wire shutdown first drains the local partition to the
//! surviving members of each key's replica set (graceful leave), then
//! stops.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use p2p_index_dht::{
    placement, Dht, DhtError, DhtOp, DhtResponse, Key, NodeId, RingDht, ShardedDht, DEFAULT_SHARDS,
};
use p2p_index_obs::MetricsRegistry;

use crate::wire::{
    read_message, read_message_with, write_message, write_message_with, Message, RecvError,
};

/// Cluster membership and quorum settings for one replicated server.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// This server's own position on the identifier circle.
    pub node_key: Key,
    /// Every cluster member (including self) as `(ring key, address)`.
    pub members: Vec<(Key, SocketAddr)>,
    /// Replication factor R: each key lives on the R clockwise
    /// successors of its hash (clamped to the cluster size).
    pub replicas: usize,
    /// Write quorum W: a write succeeds once `W` replicas (the local
    /// apply counts as one) have acknowledged it.
    pub write_quorum: usize,
    /// Anti-entropy interval; `None` disables the repair thread.
    pub repair_interval: Option<Duration>,
}

impl ReplicationConfig {
    /// A config for node `node_key` in `members`, with quorums clamped to
    /// sane bounds (`1 ≤ W ≤ R ≤ n`).
    pub fn new(
        node_key: Key,
        members: Vec<(Key, SocketAddr)>,
        replicas: usize,
        write_quorum: usize,
    ) -> ReplicationConfig {
        let replicas = replicas.clamp(1, members.len().max(1));
        ReplicationConfig {
            node_key,
            members,
            replicas,
            write_quorum: write_quorum.clamp(1, replicas),
            repair_interval: Some(Duration::from_millis(200)),
        }
    }
}

/// Tuning knobs for a [`DhtServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection socket read timeout. Also bounds how long a worker
    /// can go without checking the shutdown flag.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How often the accept loop polls for shutdown between connections.
    pub accept_poll: Duration,
    /// Metrics sink for the `net.server.*` series (disabled by default).
    pub metrics: MetricsRegistry,
    /// Replicated-cluster membership; `None` (the default) serves a
    /// plain unreplicated partition, byte-identical to prior builds.
    pub replication: Option<ReplicationConfig>,
    /// Key-hash shard count for partition servers created through
    /// [`DhtServer::spawn_partition`]: the default serves through the
    /// reader-concurrent sharded engine; `1` is the escape hatch back to
    /// the classic single-mutex path (for comparison benches). Rounded
    /// up to a power of two. Ignored by [`DhtServer::spawn`], whose
    /// explicit substrate always serves through the single-mutex engine.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            accept_poll: Duration::from_millis(10),
            metrics: MetricsRegistry::disabled(),
            replication: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

/// One peer's lazily-dialed, poisoned-on-failure server-to-server
/// connection (the same pooling discipline as the client).
struct Peer {
    addr: SocketAddr,
    conn: Mutex<Option<TcpStream>>,
}

/// Replication state shared by connection workers and the repair thread.
struct Replication {
    node_key: Key,
    /// All member ring keys, ascending — the placement ring.
    ring: Vec<Key>,
    /// Other members (self excluded) by ring key.
    peers: BTreeMap<Key, Peer>,
    replicas: usize,
    write_quorum: usize,
    repair_interval: Option<Duration>,
    next_request_id: AtomicU64,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl Replication {
    fn from_config(config: ReplicationConfig) -> Replication {
        let mut ring: Vec<Key> = config.members.iter().map(|(k, _)| *k).collect();
        ring.sort_unstable();
        ring.dedup();
        let peers = config
            .members
            .iter()
            .filter(|(k, _)| *k != config.node_key)
            .map(|(k, addr)| {
                (
                    *k,
                    Peer {
                        addr: *addr,
                        conn: Mutex::new(None),
                    },
                )
            })
            .collect();
        Replication {
            node_key: config.node_key,
            ring,
            peers,
            replicas: config.replicas,
            write_quorum: config.write_quorum,
            repair_interval: config.repair_interval,
            next_request_id: AtomicU64::new(1),
            // Server-to-server calls stay well under typical client read
            // timeouts, so one dead peer can stall a quorum write only
            // briefly — the client never times out waiting on our timeout.
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(700),
        }
    }

    /// The replica set for `key`: this node first if it is a member,
    /// then the other members in ring order.
    fn replica_set(&self, key: &Key) -> Vec<Key> {
        placement::replica_keys(&self.ring, key, self.replicas)
    }

    /// Sends one frame to `peer` and awaits its `Response`, returning the
    /// remote result. Any transport or protocol failure poisons the
    /// pooled connection and reports `Err(())` — the caller treats it as
    /// a missing ack, never as fatal.
    fn peer_call(
        &self,
        peer_key: &Key,
        msg: &Message,
    ) -> Result<Result<DhtResponse, DhtError>, ()> {
        let peer = self.peers.get(peer_key).ok_or(())?;
        let mut slot = peer.conn.lock().expect("peer pool poisoned");
        if slot.is_none() {
            let stream = TcpStream::connect_timeout(&peer.addr, self.connect_timeout)
                .and_then(|s| {
                    s.set_read_timeout(Some(self.io_timeout))?;
                    s.set_write_timeout(Some(self.io_timeout))?;
                    s.set_nodelay(true)?;
                    Ok(s)
                })
                .map_err(|_| ())?;
            *slot = Some(stream);
        }
        let stream = slot.as_mut().expect("peer connection just ensured");
        let sent_id = match msg {
            Message::Replicate { id, .. } | Message::Transfer { id, .. } => *id,
            _ => 0,
        };
        if write_message(stream, msg).is_err() {
            *slot = None;
            return Err(());
        }
        match read_message(stream) {
            Ok((Message::Response { id, result }, _)) if id == sent_id => Ok(result),
            _ => {
                *slot = None;
                Err(())
            }
        }
    }

    fn next_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// The storage engine behind one server.
///
/// [`Engine::Sharded`] is the default for partition servers: concurrent
/// reads under per-shard read locks, per-shard write locks for
/// mutations, replication tombstones resident in the shards — no global
/// lock anywhere on the request path. [`Engine::Locked`] is the classic
/// single-mutex path every arbitrary substrate (fault injectors,
/// protocol simulations, balance decorators) serves through, and the
/// `--shards 1` escape hatch for apples-to-apples benches; its deletion
/// markers live in a side table because a boxed substrate cannot host
/// them.
enum Engine {
    /// An arbitrary substrate behind one global mutex, with replication
    /// tombstones in a side table: `(key, value)` pairs a `Remove` has
    /// been observed for. Anti-entropy is add-only, so without these a
    /// stale replica's repair push would resurrect a deleted mapping; a
    /// later `Put` of the same pair clears the marker (re-add wins).
    /// Unreplicated servers never populate the table.
    Locked {
        dht: Mutex<Box<dyn Dht + Send>>,
        tombstones: Mutex<HashMap<Key, HashSet<Bytes>>>,
    },
    /// The sharded reader-concurrent partition store (tombstones live
    /// inside the shards, under the same locks as the values they
    /// shadow).
    Sharded(ShardedDht),
}

impl Engine {
    /// Executes one operation. Locked: one global lock acquisition.
    /// Sharded: only the shard the key hashes to is locked (read lock
    /// for `Get`/`NodeFor`, write lock for `Put`/`Remove`).
    fn execute(&self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        match self {
            Engine::Locked { dht, .. } => {
                dht.lock().expect("server substrate poisoned").execute(op)
            }
            Engine::Sharded(sharded) => sharded.execute_shared(op),
        }
    }

    /// Executes a batch of independent operations. Locked: the global
    /// lock is taken once for the whole batch. Sharded: each op locks
    /// only its own shard, so batches from different connections
    /// interleave.
    fn execute_many(&self, ops: Vec<DhtOp>) -> Vec<Result<DhtResponse, DhtError>> {
        match self {
            Engine::Locked { dht, .. } => dht
                .lock()
                .expect("server substrate poisoned")
                .execute_many(ops),
            Engine::Sharded(sharded) => sharded.execute_many_shared(ops),
        }
    }

    /// Records the tombstone transition of one write: `Remove` marks the
    /// `(key, value)` pair deleted, `Put` of the same pair clears the
    /// marker (re-add wins). Only called on replicated servers.
    fn note_write(&self, op: &DhtOp) {
        match self {
            Engine::Locked { tombstones, .. } => {
                let mut tombstones = tombstones.lock().expect("tombstones poisoned");
                match op {
                    DhtOp::Remove { key, value } => {
                        tombstones.entry(*key).or_default().insert(value.clone());
                    }
                    DhtOp::Put { key, value } => {
                        if let Some(set) = tombstones.get_mut(key) {
                            set.remove(value);
                            if set.is_empty() {
                                tombstones.remove(key);
                            }
                        }
                    }
                    _ => {}
                }
            }
            Engine::Sharded(sharded) => sharded.note_write(op),
        }
    }

    /// The substrate's full entry snapshot (tombstoned values included).
    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        match self {
            Engine::Locked { dht, .. } => dht.lock().expect("server substrate poisoned").entries(),
            Engine::Sharded(sharded) => sharded.entries(),
        }
    }

    /// The local entries minus every tombstoned value — what anti-entropy
    /// and the graceful-leave drain are allowed to push — plus the number
    /// of values withheld. Sharded: one consistent per-shard sweep.
    fn live_local_entries(&self) -> (Vec<(Key, Vec<Bytes>)>, u64) {
        match self {
            Engine::Locked { .. } => self.filter_incoming(self.entries()),
            Engine::Sharded(sharded) => sharded.live_entries(),
        }
    }

    /// Filters an incoming entry list (a peer's `Transfer` payload)
    /// against the local tombstones, returning the survivors and the
    /// number of values withheld.
    fn filter_incoming(&self, entries: Vec<(Key, Vec<Bytes>)>) -> (Vec<(Key, Vec<Bytes>)>, u64) {
        match self {
            Engine::Locked { tombstones, .. } => {
                let tombstones = tombstones.lock().expect("tombstones poisoned");
                if tombstones.is_empty() {
                    return (entries, 0);
                }
                let mut withheld = 0u64;
                let filtered = entries
                    .into_iter()
                    .filter_map(|(key, values)| {
                        let values: Vec<Bytes> = match tombstones.get(&key) {
                            None => values,
                            Some(dead) => values
                                .into_iter()
                                .filter(|v| {
                                    let keep = !dead.contains(v);
                                    withheld += u64::from(!keep);
                                    keep
                                })
                                .collect(),
                        };
                        (!values.is_empty()).then_some((key, values))
                    })
                    .collect();
                (filtered, withheld)
            }
            Engine::Sharded(sharded) => sharded.filter_live(entries),
        }
    }

    /// Snapshot of every tombstone as `(key, deleted values)` — the
    /// input to the repair pass's scrub half.
    fn tombstones(&self) -> Vec<(Key, Vec<Bytes>)> {
        match self {
            Engine::Locked { tombstones, .. } => {
                let tombstones = tombstones.lock().expect("tombstones poisoned");
                tombstones
                    .iter()
                    .map(|(k, dead)| (*k, dead.iter().cloned().collect()))
                    .collect()
            }
            Engine::Sharded(sharded) => sharded.tombstones(),
        }
    }

    /// Swaps the served contents for `new`'s, returning the old
    /// substrate (tombstones stay in place on both paths).
    fn replace(&self, new: Box<dyn Dht + Send>) -> Box<dyn Dht + Send> {
        match self {
            Engine::Locked { dht, .. } => {
                let mut slot = dht.lock().expect("server substrate poisoned");
                std::mem::replace(&mut *slot, new)
            }
            Engine::Sharded(sharded) => sharded.replace_contents(new),
        }
    }
}

/// Precomputed per-kind request counter names. The `format!` this
/// replaces ran once per served frame — one of the hot path's last
/// recurring allocations (and it allocated even with metrics disabled).
fn op_counter(kind: &str) -> &'static str {
    match kind {
        "node_for" => "net.server.ops.node_for",
        "put" => "net.server.ops.put",
        "get" => "net.server.ops.get",
        "remove" => "net.server.ops.remove",
        _ => "net.server.ops.other",
    }
}

/// Shared state between the accept loop and connection workers.
struct Shared {
    engine: Engine,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Operations served since spawn (requests answered, ok or error).
    served: AtomicU64,
    /// `Some` when this server is a member of a replicated cluster.
    replication: Option<Replication>,
}

/// A running DHT node server. Dropping the handle shuts the server down.
pub struct DhtServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    repair_thread: Option<JoinHandle<()>>,
}

impl DhtServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `dht` — typically a single-node substrate holding this server's
    /// partition of the key space, optionally wrapped in a fault injector.
    pub fn spawn(
        dht: Box<dyn Dht + Send>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        Self::spawn_on(TcpListener::bind(addr)?, dht, config)
    }

    /// Starts serving on an already-bound listener. Replicated clusters
    /// bootstrap this way: bind every member's listener first, collect
    /// the addresses into each [`ReplicationConfig`], then spawn — no
    /// member ever dials a peer that hasn't bound yet.
    pub fn spawn_on(
        listener: TcpListener,
        dht: Box<dyn Dht + Send>,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        let engine = Engine::Locked {
            dht: Mutex::new(dht),
            tombstones: Mutex::new(HashMap::new()),
        };
        Self::spawn_engine(listener, engine, config)
    }

    /// Binds `addr` and serves the partition owned by `node` on the
    /// engine `config.shards` selects: the sharded reader-concurrent
    /// store (the default), or the classic single-mutex single-node ring
    /// when `shards <= 1` — the `--shards 1` escape hatch, behaviorally
    /// identical to serving `RingDht::from_ids([node])` via
    /// [`DhtServer::spawn`].
    pub fn spawn_partition(
        node: NodeId,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        Self::spawn_partition_on(TcpListener::bind(addr)?, node, config)
    }

    /// [`DhtServer::spawn_partition`] on an already-bound listener (the
    /// replicated-cluster bootstrap path).
    pub fn spawn_partition_on(
        listener: TcpListener,
        node: NodeId,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        if config.shards <= 1 {
            let dht: Box<dyn Dht + Send> = Box::new(RingDht::from_ids([*node.key()]));
            return Self::spawn_on(listener, dht, config);
        }
        let mut sharded = ShardedDht::new(node, config.shards);
        sharded.set_shard_metrics(config.metrics.clone());
        Self::spawn_engine(listener, Engine::Sharded(sharded), config)
    }

    fn spawn_engine(
        listener: TcpListener,
        engine: Engine,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let replication = config.replication.map(Replication::from_config);
        let shared = Arc::new(Shared {
            engine,
            stop: AtomicBool::new(false),
            metrics: config.metrics.clone(),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            served: AtomicU64::new(0),
            replication,
        });
        let accept_shared = Arc::clone(&shared);
        let poll = config.accept_poll;
        let accept_thread = std::thread::Builder::new()
            .name(format!("dhtd-accept-{}", local_addr.port()))
            .spawn(move || accept_loop(listener, accept_shared, poll))?;
        let repair_thread = match shared.replication.as_ref().and_then(|r| r.repair_interval) {
            Some(interval) if shared.replication.as_ref().is_some_and(|r| r.replicas > 1) => {
                let repair_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name(format!("dhtd-repair-{}", local_addr.port()))
                        .spawn(move || repair_loop(repair_shared, interval))?,
                )
            }
            _ => None,
        };
        Ok(DhtServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            repair_thread,
        })
    }

    /// Swaps the served substrate in place, returning the old one. Lets
    /// tests wipe one member (a "stale replica") without rebinding its
    /// port, and is how a restarted daemon would rejoin with an empty
    /// store before repair refills it.
    pub fn replace_substrate(&self, dht: Box<dyn Dht + Send>) -> Box<dyn Dht + Send> {
        self.shared.engine.replace(dht)
    }

    /// Runs one synchronous anti-entropy pass now (in addition to the
    /// periodic thread), so tests can await "replication factor restored"
    /// without sleeping for the interval.
    pub fn repair_now(&self) {
        repair_pass(&self.shared);
    }

    /// The bound address — read this after `port 0` to learn the
    /// ephemeral port the OS assigned.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Operations answered so far (ok and error responses alike).
    pub fn ops_served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// `true` once a shutdown (local or wire) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Blocks until the server shuts down (via a wire shutdown frame or
    /// another thread calling [`DhtServer::shutdown`]). Used by the
    /// `repro serve` daemon main.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.repair_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains in-flight requests, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Like [`DhtServer::shutdown`] but by reference, so a cluster can
    /// crash one member in place while the rest keep serving. No
    /// graceful-leave drain happens — this models failure, not leave.
    pub fn halt(&mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.repair_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DhtServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Accepts connections until the stop flag is set, then joins workers.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, poll: Duration) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.incr("net.server.connections");
                let conn_shared = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name("dhtd-conn".to_string())
                    .spawn(move || serve_connection(stream, conn_shared))
                {
                    Ok(handle) => workers.push(handle),
                    Err(_) => shared.metrics.incr("net.server.spawn_errors"),
                }
                // Opportunistically reap finished workers so a long-lived
                // daemon doesn't accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => {
                shared.metrics.incr("net.server.accept_errors");
                std::thread::sleep(poll);
            }
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Serves one connection until the peer closes, a protocol error poisons
/// the stream, or shutdown is requested.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    // Per-connection frame buffers, reused across every frame this worker
    // reads and writes: the per-frame payload and encode allocations of
    // the old path amortize to a few capacity growths per connection.
    let mut read_scratch: Vec<u8> = Vec::new();
    let mut write_scratch: Vec<u8> = Vec::with_capacity(256);
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let (msg, bytes_in) = match read_message_with(&mut stream, &mut read_scratch) {
            Ok(ok) => ok,
            Err(RecvError::Closed) => return,
            Err(RecvError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: loop to re-check the shutdown flag.
                continue;
            }
            Err(RecvError::Io(_)) => {
                shared.metrics.incr("net.server.transport_errors");
                return;
            }
            Err(RecvError::Wire(_)) => {
                // Strict rejection: a malformed frame poisons the stream
                // (framing can no longer be trusted), so the connection is
                // dropped rather than resynchronized by guesswork.
                shared.metrics.incr("net.server.decode_errors");
                return;
            }
        };
        shared.metrics.incr("net.server.frames_in");
        shared.metrics.add("net.server.bytes_in", bytes_in as u64);
        match msg {
            Message::Request { id, op } => {
                let kind = op.kind();
                let result = replicated_execute(&shared, op);
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.metrics.incr(op_counter(kind));
                if result.is_err() {
                    shared.metrics.incr("net.server.op_errors");
                }
                let reply = Message::Response { id, result };
                match write_message_with(&mut stream, &reply, &mut write_scratch) {
                    Ok(bytes_out) => {
                        shared.metrics.incr("net.server.frames_out");
                        shared.metrics.add("net.server.bytes_out", bytes_out as u64);
                    }
                    Err(_) => {
                        shared.metrics.incr("net.server.transport_errors");
                        return;
                    }
                }
            }
            Message::Batch { id, ops } => {
                // A whole batch executes in one connection turn: every op
                // runs in order and a single BatchReply answers them all.
                // On the locked engine the substrate lock is taken once
                // for the batch; on the sharded engine each op takes only
                // its shard's lock. (Replicated servers go op by op
                // instead, because write fan-out must not happen under
                // any storage lock.)
                let count = ops.len() as u64;
                let kinds: Vec<&'static str> = ops.iter().map(|op| op.kind()).collect();
                let results = if shared.replication.is_some() {
                    ops.into_iter()
                        .map(|op| replicated_execute(&shared, op))
                        .collect()
                } else {
                    shared.engine.execute_many(ops)
                };
                shared.served.fetch_add(count, Ordering::Relaxed);
                shared.metrics.incr("net.server.batches");
                shared.metrics.add("net.server.batch_ops", count);
                for (kind, result) in kinds.iter().zip(&results) {
                    shared.metrics.incr(op_counter(kind));
                    if result.is_err() {
                        shared.metrics.incr("net.server.op_errors");
                    }
                }
                let reply = Message::BatchReply { id, results };
                match write_message_with(&mut stream, &reply, &mut write_scratch) {
                    Ok(bytes_out) => {
                        shared.metrics.incr("net.server.frames_out");
                        shared.metrics.add("net.server.bytes_out", bytes_out as u64);
                    }
                    Err(_) => {
                        shared.metrics.incr("net.server.transport_errors");
                        return;
                    }
                }
            }
            Message::Replicate { id, op } => {
                // A peer's write fan-out: apply locally, reply, and never
                // re-forward — only client `Request`/`Batch` frames fan
                // out, so replication storms cannot happen. The tombstone
                // transition is recorded here too, so replicated removes
                // (and the repair pass's tombstone scrubs) stick on every
                // member, not just the one the client happened to reach.
                if shared.replication.is_some() {
                    shared.engine.note_write(&op);
                }
                let result = shared.engine.execute(op);
                shared.metrics.incr("net.server.replica.applied");
                let reply = Message::Response { id, result };
                if write_message_with(&mut stream, &reply, &mut write_scratch).is_err() {
                    shared.metrics.incr("net.server.transport_errors");
                    return;
                }
            }
            Message::Transfer { id, entries } => {
                // Bulk handoff from a leaving peer or a repair pass:
                // apply every value locally (puts deduplicate, so
                // re-transfers are no-ops), never re-forward. Values this
                // member holds a tombstone for are dropped — a stale
                // peer's add-only repair push must not resurrect a
                // mapping deleted here.
                let (entries, dropped) = shared.engine.filter_incoming(entries);
                let values: u64 = entries.iter().map(|(_, vs)| vs.len() as u64).sum();
                let puts: Vec<DhtOp> = entries
                    .into_iter()
                    .flat_map(|(key, values)| {
                        values
                            .into_iter()
                            .map(move |value| DhtOp::Put { key, value })
                    })
                    .collect();
                let _ = shared.engine.execute_many(puts);
                shared
                    .metrics
                    .add("net.server.replica.transfer_values", values);
                shared
                    .metrics
                    .add("net.server.replica.tombstone_drops", dropped);
                let reply = Message::Response {
                    id,
                    result: Ok(DhtResponse::Stored(true)),
                };
                if write_message_with(&mut stream, &reply, &mut write_scratch).is_err() {
                    shared.metrics.incr("net.server.transport_errors");
                    return;
                }
            }
            Message::Shutdown => {
                shared.metrics.incr("net.server.shutdowns");
                // Graceful leave: hand this node's partition to the
                // surviving replica-set members before going quiet.
                drain_partition(&shared);
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Message::Response { .. } | Message::BatchReply { .. } => {
                // Clients must not send responses; treat as protocol abuse.
                shared.metrics.incr("net.server.decode_errors");
                return;
            }
        }
    }
}

/// Executes one client op; on a replicated server, writes are applied
/// locally and fanned out to the rest of the key's replica set, and the
/// write quorum `W` (local apply included) is enforced before replying.
/// The substrate lock is never held across peer I/O.
fn replicated_execute(shared: &Shared, op: DhtOp) -> Result<DhtResponse, DhtError> {
    let repl = match shared.replication.as_ref() {
        Some(repl)
            if repl.replicas > 1 && matches!(op, DhtOp::Put { .. } | DhtOp::Remove { .. }) =>
        {
            repl
        }
        _ => return shared.engine.execute(op),
    };
    let key = *op.key();
    shared.engine.note_write(&op);
    let local = shared.engine.execute(op.clone());
    let mut acks = usize::from(local.is_ok());
    for member in repl.replica_set(&key) {
        if member == repl.node_key {
            continue;
        }
        let id = repl.next_id();
        shared.metrics.incr("net.server.replica.fanout");
        if let Ok(Ok(_)) = repl.peer_call(&member, &Message::Replicate { id, op: op.clone() }) {
            acks += 1;
            shared.metrics.incr("net.server.replica.acks");
        }
    }
    if acks >= repl.write_quorum {
        local
    } else {
        shared.metrics.incr("net.server.replica.quorum_failures");
        Err(DhtError::Timeout)
    }
}

/// Groups `(key, values)` entries by target member for one bulk push.
fn group_entries(
    entries: &[(Key, Vec<Bytes>)],
    targets: impl Fn(&Key) -> Vec<Key>,
    skip: &Key,
) -> BTreeMap<Key, Vec<(Key, Vec<Bytes>)>> {
    let mut grouped: BTreeMap<Key, Vec<(Key, Vec<Bytes>)>> = BTreeMap::new();
    for (key, values) in entries {
        for target in targets(key) {
            if target != *skip {
                grouped
                    .entry(target)
                    .or_default()
                    .push((*key, values.clone()));
            }
        }
    }
    grouped
}

/// The periodic anti-entropy driver: a repair pass every `interval`,
/// sleeping in short ticks so shutdown stays responsive.
fn repair_loop(shared: Arc<Shared>, interval: Duration) {
    let tick = Duration::from_millis(20).min(interval);
    let mut since_last = Duration::ZERO;
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        since_last += tick;
        if since_last >= interval {
            since_last = Duration::ZERO;
            repair_pass(&shared);
        }
    }
}

/// One anti-entropy pass, in two halves. (1) Push every *live* local
/// entry (tombstoned values withheld) to the other members of its
/// replica set as `Transfer` frames, one per peer — idempotent
/// (receivers' puts deduplicate), so running it forever is safe; it is
/// what refills a member that restarted empty. (2) Scrub: re-send every
/// local tombstone as a `Replicate`-remove to the key's replica set, so
/// a stale member that still holds a deleted mapping drops it and
/// records the tombstone itself.
fn repair_pass(shared: &Shared) {
    let Some(repl) = shared.replication.as_ref() else {
        return;
    };
    if repl.replicas <= 1 || repl.peers.is_empty() {
        return;
    }
    let (entries, _) = shared.engine.live_local_entries();
    let grouped = group_entries(&entries, |key| repl.replica_set(key), &repl.node_key);
    for (target, batch) in grouped {
        let values: u64 = batch.iter().map(|(_, vs)| vs.len() as u64).sum();
        let id = repl.next_id();
        let msg = Message::Transfer { id, entries: batch };
        if repl.peer_call(&target, &msg).is_ok() {
            shared.metrics.incr("net.server.replica.repair_pushes");
            shared
                .metrics
                .add("net.server.replica.repair_values", values);
        }
    }
    let tombstones: Vec<(Key, Vec<Bytes>)> = shared.engine.tombstones();
    for (key, dead) in tombstones {
        for member in repl.replica_set(&key) {
            if member == repl.node_key {
                continue;
            }
            for value in &dead {
                let id = repl.next_id();
                let msg = Message::Replicate {
                    id,
                    op: DhtOp::Remove {
                        key,
                        value: value.clone(),
                    },
                };
                if repl.peer_call(&member, &msg).is_ok() {
                    shared.metrics.incr("net.server.replica.tombstone_scrubs");
                }
            }
        }
    }
}

/// Graceful-leave drain: push this node's whole partition to each key's
/// replica set as recomputed over the ring *without* this node, so the
/// replication factor survives the departure. Best-effort — unreachable
/// peers are skipped; the survivors' repair passes finish the job.
fn drain_partition(shared: &Shared) {
    let Some(repl) = shared.replication.as_ref() else {
        return;
    };
    if repl.peers.is_empty() {
        return;
    }
    let survivors: Vec<Key> = repl
        .ring
        .iter()
        .copied()
        .filter(|k| *k != repl.node_key)
        .collect();
    let (entries, _) = shared.engine.live_local_entries();
    if entries.is_empty() {
        return;
    }
    let grouped = group_entries(
        &entries,
        |key| placement::replica_keys(&survivors, key, repl.replicas),
        &repl.node_key,
    );
    for (target, batch) in grouped {
        let values: u64 = batch.iter().map(|(_, vs)| vs.len() as u64).sum();
        let id = repl.next_id();
        let msg = Message::Transfer { id, entries: batch };
        if repl.peer_call(&target, &msg).is_ok() {
            shared.metrics.incr("net.server.replica.drain_pushes");
            shared
                .metrics
                .add("net.server.replica.drain_values", values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use p2p_index_dht::{DhtOp, DhtResponse, Key, RingDht};

    fn spawn_ring() -> DhtServer {
        DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind loopback")
    }

    fn call(stream: &mut TcpStream, id: u64, op: DhtOp) -> Message {
        write_message(stream, &Message::Request { id, op }).unwrap();
        read_message(stream).unwrap().0
    }

    #[test]
    fn serves_put_get_over_tcp() {
        let server = spawn_ring();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let key = Key::hash_of("k");
        let reply = call(
            &mut stream,
            1,
            DhtOp::Put {
                key,
                value: Bytes::from_static(b"v"),
            },
        );
        assert_eq!(
            reply,
            Message::Response {
                id: 1,
                result: Ok(DhtResponse::Stored(true))
            }
        );
        let reply = call(&mut stream, 2, DhtOp::Get(key));
        assert_eq!(
            reply,
            Message::Response {
                id: 2,
                result: Ok(DhtResponse::Values(vec![Bytes::from_static(b"v")]))
            }
        );
        assert_eq!(server.ops_served(), 2);
        server.shutdown();
    }

    #[test]
    fn serves_a_whole_batch_in_one_turn() {
        let server = spawn_ring();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let key = Key::hash_of("batch-key");
        write_message(
            &mut stream,
            &Message::Batch {
                id: 7,
                ops: vec![
                    DhtOp::Put {
                        key,
                        value: Bytes::from_static(b"v"),
                    },
                    DhtOp::Get(key),
                    DhtOp::Remove {
                        key,
                        value: Bytes::from_static(b"absent"),
                    },
                ],
            },
        )
        .unwrap();
        let (reply, _) = read_message(&mut stream).unwrap();
        assert_eq!(
            reply,
            Message::BatchReply {
                id: 7,
                results: vec![
                    Ok(DhtResponse::Stored(true)),
                    Ok(DhtResponse::Values(vec![Bytes::from_static(b"v")])),
                    Ok(DhtResponse::Removed(false)),
                ],
            }
        );
        assert_eq!(server.ops_served(), 3, "a batch op counts like a unary op");
        server.shutdown();
    }

    #[test]
    fn malformed_frame_drops_the_connection() {
        let metrics = MetricsRegistry::new();
        let server = DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig {
                metrics: metrics.clone(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        use std::io::{Read, Write};
        stream.write_all(b"garbage-not-a-frame-at-all").unwrap();
        stream.flush().unwrap();
        // Server closes on us without replying.
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
        assert_eq!(metrics.counter("net.server.decode_errors"), 1);
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = spawn_ring();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, &Message::Shutdown).unwrap();
        // wait() returns because the shutdown frame set the stop flag.
        server.wait();
        // The listener is gone: new connections are refused (give the OS a
        // moment to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err());
    }
}
