//! Wire protocol and networked DHT nodes for the p2p-index stack.
//!
//! Everything below the index layer so far has been in-process: the
//! substrates in `crates/dht` simulate a network by counting messages.
//! This crate makes the network real while keeping the simulation exact:
//!
//! - [`wire`] — a versioned, length-prefixed binary codec for every
//!   [`DhtOp`](p2p_index_dht::DhtOp) /
//!   [`DhtResponse`](p2p_index_dht::DhtResponse) /
//!   [`DhtError`](p2p_index_dht::DhtError), with request ids for
//!   pipelining, `Batch`/`BatchReply` frames carrying many ops per
//!   round-trip, and strict typed rejection of malformed frames. The
//!   frame format is specified byte-by-byte in `DESIGN.md` §11.
//! - [`server`] — [`DhtServer`], the threaded `dhtd` daemon: an accept
//!   loop plus per-connection worker threads serving one node's storage
//!   partition of any substrate. Exposed as `repro serve`.
//! - [`client`] — [`RemoteDht`], the [`Dht`](p2p_index_dht::Dht) trait
//!   over pooled TCP connections; `execute_many` routes a whole batch as
//!   one pipelined frame pair per member. Transport failures map to the
//!   transient
//!   [`DhtError::Timeout`](p2p_index_dht::DhtError::Timeout), so
//!   `IndexService`'s retry policy and the whole indexing stack run
//!   unchanged over real sockets.
//! - [`cluster`] — in-process loopback clusters for tests and benches;
//!   the multi-process harness lives in the sim crate.
//!
//! The crate is plain `std` — TCP sockets, threads, atomics — with zero
//! new external dependencies, so networking never changes what the
//! simulation builds against. All deterministic paper experiments remain
//! in-process and byte-identical; the network is strictly additive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod server;
pub mod wire;

pub use client::{RemoteDht, RemoteDhtConfig};
pub use cluster::{ClusterDht, LoopbackCluster};
pub use server::{DhtServer, ReplicationConfig, ServerConfig};
pub use wire::{Message, RecvError, WireError, MAX_PAYLOAD, VERSION, VERSION_BATCH, VERSION_REPL};
