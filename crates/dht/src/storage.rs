//! Per-node multi-value storage.
//!
//! The paper's only requirement on the DHT storage layer is that it "allow
//! for the registration of multiple entries using the same key" — an index
//! node stores *all* mappings `(q; qᵢ)` whose source query hashes to it.
//! [`NodeStore`] is that per-node table: a map from [`Key`] to a small set of
//! opaque byte values with set semantics (inserting a duplicate value is a
//! no-op).

use std::collections::HashMap;

use bytes::Bytes;

use crate::key::Key;

/// The key→values table held by one DHT node.
///
/// Values are opaque [`Bytes`]; the indexing layer stores serialized queries
/// in them, the storage layer stores file handles. Duplicate values under
/// one key are collapsed (set semantics), which makes re-indexing a file
/// idempotent.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use p2p_index_dht::{Key, NodeStore};
///
/// let mut store = NodeStore::new();
/// let k = Key::hash_of("/article/author/last/Smith");
/// store.put(k, Bytes::from_static(b"John/Smith"));
/// store.put(k, Bytes::from_static(b"Jane/Smith"));
/// store.put(k, Bytes::from_static(b"John/Smith")); // duplicate, ignored
/// assert_eq!(store.get(&k).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    entries: HashMap<Key, Vec<Bytes>>,
    /// Total number of stored values (across all keys).
    value_count: usize,
}

impl NodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` under `key`. Returns `true` if the value was new.
    pub fn put(&mut self, key: Key, value: Bytes) -> bool {
        let values = self.entries.entry(key).or_default();
        if values.iter().any(|v| v == &value) {
            return false;
        }
        values.push(value);
        self.value_count += 1;
        true
    }

    /// Returns all values registered under `key` (empty slice if none).
    pub fn get(&self, key: &Key) -> &[Bytes] {
        self.entries.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if at least one value is registered under `key`.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.entries.contains_key(key)
    }

    /// Removes one specific `value` under `key`.
    ///
    /// Returns `true` if the value was present. Removing the last value for
    /// a key removes the key itself, so [`NodeStore::contains_key`] reflects
    /// the paper's "deleting the last mapping for a given key" condition.
    pub fn remove(&mut self, key: &Key, value: &[u8]) -> bool {
        let Some(values) = self.entries.get_mut(key) else {
            return false;
        };
        let Some(pos) = values.iter().position(|v| v.as_ref() == value) else {
            return false;
        };
        values.swap_remove(pos);
        self.value_count -= 1;
        if values.is_empty() {
            self.entries.remove(key);
        }
        true
    }

    /// Removes every value under `key`, returning how many were removed.
    pub fn remove_all(&mut self, key: &Key) -> usize {
        match self.entries.remove(key) {
            Some(values) => {
                self.value_count -= values.len();
                values.len()
            }
            None => 0,
        }
    }

    /// Number of distinct keys stored on this node.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of values stored on this node (each key may hold several).
    pub fn value_count(&self) -> usize {
        self.value_count
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of stored values (excluding key and map overhead).
    ///
    /// Used by the storage-overhead experiment (§V.B of the paper).
    pub fn value_bytes(&self) -> usize {
        self.entries.values().flatten().map(Bytes::len).sum()
    }

    /// Iterates over `(key, values)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &[Bytes])> {
        self.entries.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Drains and returns every entry whose key lies in the ring interval
    /// `(from, to]`. Used when a joining node takes over part of the key
    /// space from its successor.
    pub fn split_off_interval(&mut self, from: &Key, to: &Key) -> Vec<(Key, Vec<Bytes>)> {
        let moved: Vec<Key> = self
            .entries
            .keys()
            .filter(|k| k.in_interval(from, to))
            .copied()
            .collect();
        moved
            .into_iter()
            .map(|k| {
                let values = self.entries.remove(&k).expect("key selected above");
                self.value_count -= values.len();
                (k, values)
            })
            .collect()
    }
}

/// Merges several per-node stores into one deterministic entry list:
/// ascending key order, values in first-seen order, duplicate copies
/// (the normal state of a replicated substrate) collapsed.
///
/// This is the snapshot shape [`Dht::entries`](crate::api::Dht::entries)
/// returns and the shape replication maintenance (drain on graceful
/// leave, repair pushes) walks.
pub fn merged_entries<'a>(stores: impl Iterator<Item = &'a NodeStore>) -> Vec<(Key, Vec<Bytes>)> {
    let mut all: std::collections::BTreeMap<Key, Vec<Bytes>> = std::collections::BTreeMap::new();
    for store in stores {
        for (key, values) in store.iter() {
            let merged = all.entry(*key).or_default();
            for v in values {
                if !merged.contains(v) {
                    merged.push(v.clone());
                }
            }
        }
    }
    all.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_and_get_multiple_values() {
        let mut s = NodeStore::new();
        let k = Key::hash_of("k");
        assert!(s.put(k, b("v1")));
        assert!(s.put(k, b("v2")));
        assert_eq!(s.get(&k).len(), 2);
        assert_eq!(s.value_count(), 2);
        assert_eq!(s.key_count(), 1);
    }

    #[test]
    fn duplicate_put_is_noop() {
        let mut s = NodeStore::new();
        let k = Key::hash_of("k");
        assert!(s.put(k, b("v")));
        assert!(!s.put(k, b("v")));
        assert_eq!(s.value_count(), 1);
    }

    #[test]
    fn get_missing_is_empty() {
        let s = NodeStore::new();
        assert!(s.get(&Key::hash_of("nope")).is_empty());
        assert!(!s.contains_key(&Key::hash_of("nope")));
    }

    #[test]
    fn remove_specific_value() {
        let mut s = NodeStore::new();
        let k = Key::hash_of("k");
        s.put(k, b("v1"));
        s.put(k, b("v2"));
        assert!(s.remove(&k, b"v1"));
        assert!(!s.remove(&k, b"v1"));
        assert_eq!(s.get(&k), &[b("v2")]);
    }

    #[test]
    fn removing_last_value_removes_key() {
        let mut s = NodeStore::new();
        let k = Key::hash_of("k");
        s.put(k, b("v"));
        assert!(s.remove(&k, b"v"));
        assert!(!s.contains_key(&k));
        assert!(s.is_empty());
        assert_eq!(s.value_count(), 0);
    }

    #[test]
    fn remove_all_counts() {
        let mut s = NodeStore::new();
        let k = Key::hash_of("k");
        s.put(k, b("a"));
        s.put(k, b("bb"));
        assert_eq!(s.remove_all(&k), 2);
        assert_eq!(s.remove_all(&k), 0);
        assert_eq!(s.value_count(), 0);
    }

    #[test]
    fn value_bytes_sums_lengths() {
        let mut s = NodeStore::new();
        s.put(Key::hash_of("a"), b("12345"));
        s.put(Key::hash_of("b"), b("123"));
        assert_eq!(s.value_bytes(), 8);
    }

    #[test]
    fn merged_entries_dedups_and_sorts() {
        let mut a = NodeStore::new();
        let mut c = NodeStore::new();
        let k1 = Key::from_u64(1);
        let k2 = Key::from_u64(2);
        a.put(k2, b("v2"));
        a.put(k1, b("v1"));
        c.put(k1, b("v1")); // replica copy, collapsed
        c.put(k1, b("v1b"));
        let merged = merged_entries([&a, &c].into_iter());
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], (k1, vec![b("v1"), b("v1b")]));
        assert_eq!(merged[1], (k2, vec![b("v2")]));
    }

    #[test]
    fn split_off_interval_moves_only_covered_keys() {
        let mut s = NodeStore::new();
        // Construct synthetic keys on a small circle.
        let k5 = Key::from_u64(5);
        let k15 = Key::from_u64(15);
        let k25 = Key::from_u64(25);
        s.put(k5, b("five"));
        s.put(k15, b("fifteen"));
        s.put(k25, b("twentyfive"));
        let moved = s.split_off_interval(&Key::from_u64(10), &Key::from_u64(20));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, k15);
        assert!(s.contains_key(&k5));
        assert!(!s.contains_key(&k15));
        assert!(s.contains_key(&k25));
        assert_eq!(s.value_count(), 2);
    }
}
