//! The versioned binary wire codec: length-prefixed frames over TCP.
//!
//! Every message between a [`RemoteDht`](crate::client::RemoteDht) client
//! and a [`DhtServer`](crate::server::DhtServer) is one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic        "PDHT"
//!      4     1  version      0x01 unary | 0x02 batch | 0x03 replication
//!      5     1  kind         0x01 request | 0x02 ok-response |
//!                            0x03 err-response | 0x04 shutdown |
//!                            0x05 batch | 0x06 batch-reply |
//!                            0x07 replicate | 0x08 transfer
//!      6     8  request id   big-endian u64 (0 for shutdown)
//!     14     4  payload len  big-endian u32, <= MAX_PAYLOAD
//!     18     n  payload      kind-specific, see below
//! ```
//!
//! Request payloads carry one [`DhtOp`]; ok-responses one [`DhtResponse`];
//! err-responses a 2-byte [`DhtError`] wire code (unknown codes decode into
//! the forward-compatible [`DhtError::Unknown`] catch-all, *not* a codec
//! failure). Batch frames carry a `u32` op count followed by that many
//! encoded ops; batch-replies a `u32` result count followed by that many
//! status-prefixed results (see DESIGN.md §11 for the byte-level spec).
//! Decoding is strict everywhere else: wrong magic, an unsupported
//! version, an unknown frame kind or opcode, an oversized length prefix,
//! a short payload, an empty batch, or trailing payload bytes are all
//! typed [`WireError`]s — never a panic, never a silent truncation.
//!
//! Versioning: the four original kinds are encoded at [`VERSION`] (0x01)
//! byte-for-byte as every prior build wrote them, so unary traffic
//! interoperates across builds. The two batch kinds are encoded at
//! [`VERSION_BATCH`] (0x02); a batch kind under version 0x01 is rejected
//! as [`WireError::UnknownKind`] — exactly what a genuine v1 peer would
//! say. The two server-to-server replication kinds (replicate and
//! transfer) are encoded at [`VERSION_REPL`] (0x03) and rejected the same
//! way under v1/v2 headers; any other version byte is
//! [`WireError::UnsupportedVersion`]. There is no in-band negotiation: a
//! client must not send batch frames to a server it does not know to be
//! v2-capable, and only replication-configured servers speak v3 to each
//! other.
//!
//! The request id exists for pipelining: a client may have several frames
//! in flight on one connection and match responses by id. The bundled
//! [`RemoteDht`](crate::client::RemoteDht) pipelines one frame pair per
//! routed member during [`execute_many`](p2p_index_dht::Dht::execute_many)
//! and still verifies the echoed id on every reply.

use std::fmt;
use std::io::{self, Read, Write};

use bytes::Bytes;
use p2p_index_dht::{DhtError, DhtOp, DhtResponse, Key, NodeId};

/// The 4-byte magic that opens every frame.
pub const MAGIC: [u8; 4] = *b"PDHT";

/// The protocol version of the four original (unary) frame kinds.
pub const VERSION: u8 = 1;

/// The protocol version that introduced the batch frame kinds. Unary
/// kinds keep encoding at [`VERSION`]; only batch/batch-reply frames
/// carry this byte.
pub const VERSION_BATCH: u8 = 2;

/// The protocol version that introduced the server-to-server replication
/// frame kinds (replicate and transfer). Earlier kinds keep their
/// original version bytes; only replicate/transfer frames carry this one.
pub const VERSION_REPL: u8 = 3;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 18;

/// Upper bound on a frame's payload. Index entries are tiny (a query
/// string or a file handle), so 16 MiB is a generous safety margin that
/// still stops a corrupt length prefix from asking us to allocate 4 GiB.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

const KIND_REQUEST: u8 = 0x01;
const KIND_OK: u8 = 0x02;
const KIND_ERR: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_BATCH: u8 = 0x05;
const KIND_BATCH_REPLY: u8 = 0x06;
const KIND_REPLICATE: u8 = 0x07;
const KIND_TRANSFER: u8 = 0x08;

/// Per-result status byte inside a batch-reply payload.
const BATCH_OK: u8 = 0x00;
const BATCH_ERR: u8 = 0x01;

/// Smallest possible encoded op (opcode + 20-byte key): the divisor for
/// the batch count-before-allocation guard.
const MIN_OP_LEN: usize = 21;

/// Smallest possible encoded batch result (status + tag + bool, or
/// status + 2-byte error code): divisor for the batch-reply guard.
const MIN_RESULT_LEN: usize = 3;

/// Smallest possible encoded transfer entry (20-byte key + u32 value
/// count): divisor for the transfer count-before-allocation guard.
const MIN_ENTRY_LEN: usize = 24;

const OP_NODE_FOR: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_GET: u8 = 0x03;
const OP_REMOVE: u8 = 0x04;

const RESP_NODE: u8 = 0x01;
const RESP_STORED: u8 = 0x02;
const RESP_VALUES: u8 = 0x03;
const RESP_REMOVED: u8 = 0x04;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A client request: execute `op` and answer with the same `id`.
    Request {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The operation to execute.
        op: DhtOp,
    },
    /// A server response (ok or error) to the request with the same `id`.
    Response {
        /// The id of the request being answered.
        id: u64,
        /// The outcome of executing the request's operation.
        result: Result<DhtResponse, DhtError>,
    },
    /// A client batch: execute every op in order and answer all of them
    /// with one [`Message::BatchReply`] carrying the same `id`.
    ///
    /// Encoded at [`VERSION_BATCH`]; the op vector is never empty (an
    /// empty batch is a [`WireError::BadPayload`] on decode).
    Batch {
        /// Caller-chosen id echoed in the batch reply.
        id: u64,
        /// The operations to execute, in order.
        ops: Vec<DhtOp>,
    },
    /// A server's answer to a [`Message::Batch`]: one result per op, in
    /// the same order. Encoded at [`VERSION_BATCH`].
    BatchReply {
        /// The id of the batch being answered.
        id: u64,
        /// Per-op outcomes, positionally matching the batch's ops.
        results: Vec<Result<DhtResponse, DhtError>>,
    },
    /// A server-to-server replica write: apply `op` to the local
    /// partition *without* re-forwarding it. Answered with a
    /// [`Message::Response`] carrying the same `id`.
    ///
    /// Encoded at [`VERSION_REPL`]. This is a distinct kind (rather than
    /// a flag on [`Message::Request`]) precisely so replication can never
    /// cascade: a primary fans a client write out to its successors as
    /// replicate frames, and a replicate frame is terminal by
    /// construction.
    Replicate {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// The storage operation to apply locally.
        op: DhtOp,
    },
    /// A server-to-server bulk handoff: merge `entries` into the local
    /// partition (idempotent multi-value puts, duplicates collapse).
    /// Answered with a [`Message::Response`] carrying `Stored(true)` on
    /// success. Used by a gracefully-leaving daemon to drain its
    /// partition to successors, and by the repair pass to restore
    /// replication factor after a restart.
    ///
    /// Encoded at [`VERSION_REPL`]; the entry vector is never empty (an
    /// empty transfer is a [`WireError::BadPayload`] on decode — a peer
    /// with nothing to hand off sends nothing).
    Transfer {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// `(key, values)` entries to merge, each with at least one value.
        entries: Vec<(Key, Vec<Bytes>)>,
    },
    /// Ask the server to stop accepting, drain its workers, and exit.
    Shutdown,
}

/// Why a frame failed to decode. Every malformed input maps to one of
/// these — decoding never panics and never fabricates a partial message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// The frame kind byte was none of the defined kinds.
    UnknownKind(u8),
    /// A request payload used an opcode this build does not know.
    UnknownOpcode(u8),
    /// An ok-response payload used a variant tag this build does not know.
    UnknownResponseTag(u8),
    /// The length prefix exceeded [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The input ended before the frame did (short header, short payload,
    /// or a length field pointing past the payload's end).
    Truncated,
    /// The payload was longer than its contents: `n` undecoded bytes
    /// remained after the message was fully read.
    TrailingBytes(usize),
    /// A payload field held an impossible value (e.g. a boolean byte that
    /// was neither 0 nor 1).
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected {MAGIC:02x?})"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION}, {VERSION_BATCH} and {VERSION_REPL})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            WireError::UnknownOpcode(o) => write!(f, "unknown request opcode 0x{o:02x}"),
            WireError::UnknownResponseTag(t) => write!(f, "unknown response tag 0x{t:02x}"),
            WireError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds MAX_PAYLOAD {MAX_PAYLOAD}")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after payload"),
            WireError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why reading a frame from a stream failed: transport vs codec.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The transport failed (timeout, reset, mid-frame EOF).
    Io(io::Error),
    /// The bytes arrived but were not a valid frame.
    Wire(WireError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<WireError> for RecvError {
    fn from(e: WireError) -> Self {
        RecvError::Wire(e)
    }
}

/// Appends the encoded frame for `msg` to `buf`.
///
/// Unary kinds encode at [`VERSION`] (byte-identical to every prior
/// build); batch kinds carry [`VERSION_BATCH`]; replication kinds carry
/// [`VERSION_REPL`].
pub fn encode_message(msg: &Message, buf: &mut Vec<u8>) {
    let (version, kind, id) = match msg {
        Message::Request { id, .. } => (VERSION, KIND_REQUEST, *id),
        Message::Response { id, result } => match result {
            Ok(_) => (VERSION, KIND_OK, *id),
            Err(_) => (VERSION, KIND_ERR, *id),
        },
        Message::Batch { id, .. } => (VERSION_BATCH, KIND_BATCH, *id),
        Message::BatchReply { id, .. } => (VERSION_BATCH, KIND_BATCH_REPLY, *id),
        Message::Replicate { id, .. } => (VERSION_REPL, KIND_REPLICATE, *id),
        Message::Transfer { id, .. } => (VERSION_REPL, KIND_TRANSFER, *id),
        Message::Shutdown => (VERSION, KIND_SHUTDOWN, 0),
    };
    buf.extend_from_slice(&MAGIC);
    buf.push(version);
    buf.push(kind);
    buf.extend_from_slice(&id.to_be_bytes());
    let len_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    match msg {
        Message::Request { op, .. } => encode_op(op, buf),
        Message::Response { result, .. } => match result {
            Ok(resp) => encode_response(resp, buf),
            Err(e) => buf.extend_from_slice(&e.wire_code().to_be_bytes()),
        },
        Message::Batch { ops, .. } => {
            buf.extend_from_slice(&(ops.len() as u32).to_be_bytes());
            for op in ops {
                encode_op(op, buf);
            }
        }
        Message::BatchReply { results, .. } => {
            buf.extend_from_slice(&(results.len() as u32).to_be_bytes());
            for result in results {
                match result {
                    Ok(resp) => {
                        buf.push(BATCH_OK);
                        encode_response(resp, buf);
                    }
                    Err(e) => {
                        buf.push(BATCH_ERR);
                        buf.extend_from_slice(&e.wire_code().to_be_bytes());
                    }
                }
            }
        }
        Message::Replicate { op, .. } => encode_op(op, buf),
        Message::Transfer { entries, .. } => {
            buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
            for (key, values) in entries {
                buf.extend_from_slice(key.as_bytes());
                buf.extend_from_slice(&(values.len() as u32).to_be_bytes());
                for v in values {
                    encode_bytes(v, buf);
                }
            }
        }
        Message::Shutdown => {}
    }
    let payload_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&payload_len.to_be_bytes());
}

/// The encoded frame for `msg` as a fresh vector.
pub fn encode_to_vec(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 64);
    encode_message(msg, &mut buf);
    buf
}

fn encode_op(op: &DhtOp, buf: &mut Vec<u8>) {
    match op {
        DhtOp::NodeFor(key) => {
            buf.push(OP_NODE_FOR);
            buf.extend_from_slice(key.as_bytes());
        }
        DhtOp::Put { key, value } => {
            buf.push(OP_PUT);
            buf.extend_from_slice(key.as_bytes());
            encode_bytes(value, buf);
        }
        DhtOp::Get(key) => {
            buf.push(OP_GET);
            buf.extend_from_slice(key.as_bytes());
        }
        DhtOp::Remove { key, value } => {
            buf.push(OP_REMOVE);
            buf.extend_from_slice(key.as_bytes());
            encode_bytes(value, buf);
        }
    }
}

fn encode_response(resp: &DhtResponse, buf: &mut Vec<u8>) {
    match resp {
        DhtResponse::Node(node) => {
            buf.push(RESP_NODE);
            buf.extend_from_slice(node.key().as_bytes());
        }
        DhtResponse::Stored(stored) => {
            buf.push(RESP_STORED);
            buf.push(u8::from(*stored));
        }
        DhtResponse::Values(values) => {
            buf.push(RESP_VALUES);
            buf.extend_from_slice(&(values.len() as u32).to_be_bytes());
            for v in values {
                encode_bytes(v, buf);
            }
        }
        DhtResponse::Removed(removed) => {
            buf.push(RESP_REMOVED);
            buf.push(u8::from(*removed));
        }
    }
}

fn encode_bytes(value: &Bytes, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(value.len() as u32).to_be_bytes());
    buf.extend_from_slice(value);
}

/// A cursor over a payload slice with strict bounds checking.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn key(&mut self) -> Result<Key, WireError> {
        let b = self.take(20)?;
        let mut digest = [0u8; 20];
        digest.copy_from_slice(b);
        Ok(Key::from_digest(digest))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadPayload("boolean byte must be 0 or 1")),
        }
    }

    fn bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - self.at));
        }
        Ok(())
    }
}

/// Decodes one frame from the front of `buf`.
///
/// Returns the message and the number of bytes consumed. An incomplete
/// frame (short header or short payload) is [`WireError::Truncated`]; a
/// complete frame with garbage anywhere is the matching typed error.
pub fn decode_message(buf: &[u8]) -> Result<(Message, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic: [u8; 4] = buf[0..4].try_into().expect("fixed slice");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf[4];
    if !matches!(version, VERSION | VERSION_BATCH | VERSION_REPL) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = buf[5];
    let id = u64::from_be_bytes(buf[6..14].try_into().expect("fixed slice"));
    let payload_len = u32::from_be_bytes(buf[14..18].try_into().expect("fixed slice"));
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    let payload_len = payload_len as usize;
    if buf.len() - HEADER_LEN < payload_len {
        return Err(WireError::Truncated);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
    let msg = decode_payload(version, kind, id, payload)?;
    Ok((msg, HEADER_LEN + payload_len))
}

/// One encoded [`DhtOp`], shared by unary request and batch payloads.
fn decode_op(r: &mut Reader<'_>) -> Result<DhtOp, WireError> {
    Ok(match r.u8()? {
        OP_NODE_FOR => DhtOp::NodeFor(r.key()?),
        OP_PUT => DhtOp::Put {
            key: r.key()?,
            value: r.bytes()?,
        },
        OP_GET => DhtOp::Get(r.key()?),
        OP_REMOVE => DhtOp::Remove {
            key: r.key()?,
            value: r.bytes()?,
        },
        other => return Err(WireError::UnknownOpcode(other)),
    })
}

/// One encoded [`DhtResponse`], shared by ok-response and batch-reply
/// payloads.
fn decode_response(r: &mut Reader<'_>) -> Result<DhtResponse, WireError> {
    Ok(match r.u8()? {
        RESP_NODE => DhtResponse::Node(NodeId::from_key(r.key()?)),
        RESP_STORED => DhtResponse::Stored(r.bool()?),
        RESP_VALUES => {
            let count = r.u32()? as usize;
            // Each value costs at least its 4-byte length prefix, so an
            // absurd count fails before any allocation.
            if count > r.remaining() / 4 {
                return Err(WireError::Truncated);
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.bytes()?);
            }
            DhtResponse::Values(values)
        }
        RESP_REMOVED => DhtResponse::Removed(r.bool()?),
        other => return Err(WireError::UnknownResponseTag(other)),
    })
}

fn decode_payload(version: u8, kind: u8, id: u64, payload: &[u8]) -> Result<Message, WireError> {
    // Batch kinds exist only at VERSION_BATCH, replication kinds only at
    // VERSION_REPL. Under an earlier header each is rejected exactly as a
    // genuine peer of that earlier version would reject it: as an unknown
    // kind, not a version failure.
    if version < VERSION_BATCH && matches!(kind, KIND_BATCH | KIND_BATCH_REPLY) {
        return Err(WireError::UnknownKind(kind));
    }
    if version < VERSION_REPL && matches!(kind, KIND_REPLICATE | KIND_TRANSFER) {
        return Err(WireError::UnknownKind(kind));
    }
    let mut r = Reader::new(payload);
    let msg = match kind {
        KIND_REQUEST => Message::Request {
            id,
            op: decode_op(&mut r)?,
        },
        KIND_OK => Message::Response {
            id,
            result: Ok(decode_response(&mut r)?),
        },
        KIND_ERR => {
            // Unknown error codes are forward-compatible by design: they
            // decode into DhtError::Unknown, not a codec failure.
            let code = r.u16()?;
            Message::Response {
                id,
                result: Err(DhtError::from_wire_code(code)),
            }
        }
        KIND_BATCH => {
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(WireError::BadPayload("batch must contain at least one op"));
            }
            // Each op costs at least an opcode plus a 20-byte key, so an
            // absurd count fails before any allocation.
            if count > r.remaining() / MIN_OP_LEN {
                return Err(WireError::Truncated);
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(decode_op(&mut r)?);
            }
            Message::Batch { id, ops }
        }
        KIND_BATCH_REPLY => {
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(WireError::BadPayload(
                    "batch reply must contain at least one result",
                ));
            }
            if count > r.remaining() / MIN_RESULT_LEN {
                return Err(WireError::Truncated);
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(match r.u8()? {
                    BATCH_OK => Ok(decode_response(&mut r)?),
                    BATCH_ERR => Err(DhtError::from_wire_code(r.u16()?)),
                    _ => {
                        return Err(WireError::BadPayload(
                            "batch result status must be 0 (ok) or 1 (err)",
                        ))
                    }
                });
            }
            Message::BatchReply { id, results }
        }
        KIND_REPLICATE => Message::Replicate {
            id,
            op: decode_op(&mut r)?,
        },
        KIND_TRANSFER => {
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(WireError::BadPayload(
                    "transfer must contain at least one entry",
                ));
            }
            // Each entry costs at least its 20-byte key plus a 4-byte
            // value count, so an absurd count fails before any allocation.
            if count > r.remaining() / MIN_ENTRY_LEN {
                return Err(WireError::Truncated);
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let key = r.key()?;
                let vcount = r.u32()? as usize;
                if vcount == 0 {
                    return Err(WireError::BadPayload(
                        "transfer entry must carry at least one value",
                    ));
                }
                if vcount > r.remaining() / 4 {
                    return Err(WireError::Truncated);
                }
                let mut values = Vec::with_capacity(vcount);
                for _ in 0..vcount {
                    values.push(r.bytes()?);
                }
                entries.push((key, values));
            }
            Message::Transfer { id, entries }
        }
        KIND_SHUTDOWN => Message::Shutdown,
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Writes one frame to `w` and flushes it.
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<usize> {
    let mut scratch = Vec::with_capacity(HEADER_LEN + 64);
    write_message_with(w, msg, &mut scratch)
}

/// Writes one frame to `w` through a caller-owned encode buffer and
/// flushes it.
///
/// The scratch is cleared and refilled in place, so a long-lived
/// connection that passes the same buffer for every frame amortizes the
/// encode allocation to (at most) a few capacity growths over the
/// connection's lifetime — this is the server hot path's frame writer.
pub fn write_message_with(
    w: &mut impl Write,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> io::Result<usize> {
    scratch.clear();
    encode_message(msg, scratch);
    w.write_all(scratch)?;
    w.flush()?;
    Ok(scratch.len())
}

/// Reads exactly one frame from `r`.
///
/// A clean EOF before the first header byte is [`RecvError::Closed`]; an
/// EOF mid-frame is an [`RecvError::Io`] with `UnexpectedEof`. Returns
/// the message and the number of bytes read.
pub fn read_message(r: &mut impl Read) -> Result<(Message, usize), RecvError> {
    let mut scratch = Vec::new();
    read_message_with(r, &mut scratch)
}

/// Reads exactly one frame from `r`, staging the payload in a
/// caller-owned scratch buffer.
///
/// Same contract as [`read_message`], but the payload bytes land in
/// `scratch` (cleared and resized in place), so a long-lived connection
/// that passes the same buffer for every frame reuses one allocation
/// instead of allocating per frame — this is the server hot path's frame
/// reader. Decoded values still copy out of the scratch (they must own
/// their bytes beyond this call), so reuse is safe.
pub fn read_message_with(
    r: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> Result<(Message, usize), RecvError> {
    let mut header = [0u8; HEADER_LEN];
    let first = r.read(&mut header).map_err(RecvError::Io)?;
    if first == 0 {
        return Err(RecvError::Closed);
    }
    read_exact_from(r, &mut header[first..]).map_err(RecvError::Io)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic).into());
    }
    let version = header[4];
    if !matches!(version, VERSION | VERSION_BATCH | VERSION_REPL) {
        return Err(WireError::UnsupportedVersion(version).into());
    }
    let kind = header[5];
    let id = u64::from_be_bytes(header[6..14].try_into().expect("fixed slice"));
    let payload_len = u32::from_be_bytes(header[14..18].try_into().expect("fixed slice"));
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len).into());
    }
    scratch.clear();
    scratch.resize(payload_len as usize, 0);
    read_exact_from(r, scratch).map_err(RecvError::Io)?;
    let msg = decode_payload(version, kind, id, scratch)?;
    Ok((msg, HEADER_LEN + scratch.len()))
}

/// `read_exact` that retries on `Interrupted`, used for both header and
/// payload so a short read is always a typed transport error.
fn read_exact_from(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let buf = encode_to_vec(&msg);
        let (decoded, consumed) = decode_message(&buf).expect("roundtrip decodes");
        assert_eq!(decoded, msg);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn every_variant_roundtrips() {
        let key = Key::hash_of("k");
        let value = Bytes::from_static(b"value");
        roundtrip(Message::Request {
            id: 1,
            op: DhtOp::NodeFor(key),
        });
        roundtrip(Message::Request {
            id: 2,
            op: DhtOp::Put {
                key,
                value: value.clone(),
            },
        });
        roundtrip(Message::Request {
            id: 3,
            op: DhtOp::Get(key),
        });
        roundtrip(Message::Request {
            id: u64::MAX,
            op: DhtOp::Remove { key, value },
        });
        roundtrip(Message::Response {
            id: 9,
            result: Ok(DhtResponse::Node(NodeId::hash_of("n"))),
        });
        roundtrip(Message::Response {
            id: 10,
            result: Ok(DhtResponse::Stored(true)),
        });
        roundtrip(Message::Response {
            id: 11,
            result: Ok(DhtResponse::Values(vec![
                Bytes::from_static(b""),
                Bytes::from_static(b"two"),
            ])),
        });
        roundtrip(Message::Response {
            id: 12,
            result: Ok(DhtResponse::Removed(false)),
        });
        for e in [
            DhtError::Timeout,
            DhtError::NoLiveNodes,
            DhtError::StorageFull,
            DhtError::Unknown(999),
        ] {
            roundtrip(Message::Response {
                id: 13,
                result: Err(e),
            });
        }
        roundtrip(Message::Shutdown);
        roundtrip(Message::Batch {
            id: 14,
            ops: vec![
                DhtOp::Get(key),
                DhtOp::Put {
                    key,
                    value: Bytes::from_static(b"batched"),
                },
                DhtOp::NodeFor(key),
            ],
        });
        roundtrip(Message::BatchReply {
            id: 14,
            results: vec![
                Ok(DhtResponse::Values(vec![Bytes::from_static(b"v")])),
                Ok(DhtResponse::Stored(true)),
                Err(DhtError::Timeout),
            ],
        });
        roundtrip(Message::Replicate {
            id: 15,
            op: DhtOp::Put {
                key,
                value: Bytes::from_static(b"copy"),
            },
        });
        roundtrip(Message::Replicate {
            id: 16,
            op: DhtOp::Remove {
                key,
                value: Bytes::from_static(b"copy"),
            },
        });
        roundtrip(Message::Transfer {
            id: 17,
            entries: vec![
                (key, vec![Bytes::from_static(b""), Bytes::from_static(b"a")]),
                (Key::hash_of("k2"), vec![Bytes::from_static(b"b")]),
            ],
        });
    }

    #[test]
    fn batch_frames_carry_the_batch_version() {
        let buf = encode_to_vec(&Message::Batch {
            id: 1,
            ops: vec![DhtOp::Get(Key::hash_of("k"))],
        });
        assert_eq!(buf[4], VERSION_BATCH);
        let buf = encode_to_vec(&Message::BatchReply {
            id: 1,
            results: vec![Ok(DhtResponse::Stored(true))],
        });
        assert_eq!(buf[4], VERSION_BATCH);
        // Unary frames are untouched: still version 1.
        let buf = encode_to_vec(&Message::Request {
            id: 1,
            op: DhtOp::Get(Key::hash_of("k")),
        });
        assert_eq!(buf[4], VERSION);
    }

    #[test]
    fn replication_frames_carry_the_repl_version() {
        let buf = encode_to_vec(&Message::Replicate {
            id: 1,
            op: DhtOp::Get(Key::hash_of("k")),
        });
        assert_eq!(buf[4], VERSION_REPL);
        let buf = encode_to_vec(&Message::Transfer {
            id: 1,
            entries: vec![(Key::hash_of("k"), vec![Bytes::from_static(b"v")])],
        });
        assert_eq!(buf[4], VERSION_REPL);
        // Batch and unary frames are untouched: still versions 2 and 1.
        let buf = encode_to_vec(&Message::Batch {
            id: 1,
            ops: vec![DhtOp::Get(Key::hash_of("k"))],
        });
        assert_eq!(buf[4], VERSION_BATCH);
        let buf = encode_to_vec(&Message::Request {
            id: 1,
            op: DhtOp::Get(Key::hash_of("k")),
        });
        assert_eq!(buf[4], VERSION);
    }

    #[test]
    fn replication_kind_under_v1_or_v2_is_rejected_as_unknown_kind() {
        // A genuine v1 or v2 peer would say "unknown kind 0x07/0x08", so
        // an earlier header smuggling a replication kind must fail the
        // same way — not decode.
        for version in [VERSION, VERSION_BATCH] {
            let mut buf = encode_to_vec(&Message::Replicate {
                id: 3,
                op: DhtOp::Get(Key::hash_of("k")),
            });
            buf[4] = version;
            assert_eq!(decode_message(&buf), Err(WireError::UnknownKind(0x07)));
            let mut buf = encode_to_vec(&Message::Transfer {
                id: 3,
                entries: vec![(Key::hash_of("k"), vec![Bytes::from_static(b"v")])],
            });
            buf[4] = version;
            assert_eq!(decode_message(&buf), Err(WireError::UnknownKind(0x08)));
        }
    }

    #[test]
    fn empty_transfer_and_valueless_entry_are_rejected() {
        // A transfer with zero entries: header + u32(0).
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION_REPL);
        buf.push(0x08);
        buf.extend_from_slice(&1u64.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::BadPayload(_))
        ));
        // One entry with zero values: count 1, key, u32(0).
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION_REPL);
        buf.push(0x08);
        buf.extend_from_slice(&1u64.to_be_bytes());
        buf.extend_from_slice(&28u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(Key::hash_of("k").as_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::BadPayload(_))
        ));
    }

    #[test]
    fn golden_replicate_frame_layout_is_pinned() {
        // Byte-for-byte layout of one replicate frame; changing the v3
        // codec without bumping the version must fail here.
        let key = Key::hash_of("k");
        let msg = Message::Replicate {
            id: 7,
            op: DhtOp::Put {
                key,
                value: Bytes::from_static(b"v"),
            },
        };
        let buf = encode_to_vec(&msg);
        let mut expected = Vec::new();
        expected.extend_from_slice(b"PDHT");
        expected.push(0x03); // version: replication
        expected.push(0x07); // kind: replicate
        expected.extend_from_slice(&7u64.to_be_bytes());
        expected.extend_from_slice(&26u32.to_be_bytes()); // opcode + key + len + 1
        expected.push(0x02); // opcode: put
        expected.extend_from_slice(key.as_bytes());
        expected.extend_from_slice(&1u32.to_be_bytes());
        expected.push(b'v');
        assert_eq!(buf, expected);
    }

    #[test]
    fn batch_kind_under_v1_is_rejected_as_unknown_kind() {
        // A genuine v1 peer would say "unknown kind 0x05", so a v1 header
        // smuggling a batch kind must fail the same way — not decode.
        let mut buf = encode_to_vec(&Message::Batch {
            id: 3,
            ops: vec![DhtOp::Get(Key::hash_of("k"))],
        });
        buf[4] = VERSION;
        assert_eq!(decode_message(&buf), Err(WireError::UnknownKind(0x05)));
    }

    #[test]
    fn empty_batch_is_rejected() {
        // Hand-build a batch frame whose count is zero: header + u32(0).
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION_BATCH);
        buf.push(0x05);
        buf.extend_from_slice(&1u64.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::BadPayload(_))
        ));
        buf[5] = 0x06; // same payload as a batch reply
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::BadPayload(_))
        ));
    }

    #[test]
    fn golden_frame_layout_is_pinned() {
        // Byte-for-byte layout of one request frame; changing the codec
        // without bumping VERSION must fail here.
        let key = Key::hash_of("k");
        let msg = Message::Request {
            id: 7,
            op: DhtOp::Put {
                key,
                value: Bytes::from_static(b"v"),
            },
        };
        let buf = encode_to_vec(&msg);
        let mut expected = Vec::new();
        expected.extend_from_slice(b"PDHT");
        expected.push(0x01); // version
        expected.push(0x01); // kind: request
        expected.extend_from_slice(&7u64.to_be_bytes());
        expected.extend_from_slice(&26u32.to_be_bytes()); // opcode + key + len + 1
        expected.push(0x02); // opcode: put
        expected.extend_from_slice(key.as_bytes());
        expected.extend_from_slice(&1u32.to_be_bytes());
        expected.push(b'v');
        assert_eq!(buf, expected);
    }

    #[test]
    fn stream_roundtrip_and_clean_close() {
        let msg = Message::Request {
            id: 5,
            op: DhtOp::Get(Key::hash_of("x")),
        };
        let mut wire = Vec::new();
        let written = write_message(&mut wire, &msg).unwrap();
        assert_eq!(written, wire.len());
        let mut cursor = io::Cursor::new(wire);
        let (decoded, read) = read_message(&mut cursor).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(read, written);
        assert!(matches!(read_message(&mut cursor), Err(RecvError::Closed)));
    }

    #[test]
    fn rejections_are_typed() {
        let good = encode_to_vec(&Message::Shutdown);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_message(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_message(&bad_version),
            Err(WireError::UnsupportedVersion(9))
        );

        let mut bad_kind = good.clone();
        bad_kind[5] = 0x7F;
        assert_eq!(decode_message(&bad_kind), Err(WireError::UnknownKind(0x7F)));

        let mut oversized = good.clone();
        oversized[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            decode_message(&oversized),
            Err(WireError::Oversized(MAX_PAYLOAD + 1))
        );

        for cut in 0..good.len() {
            assert_eq!(
                decode_message(&good[..cut]),
                Err(WireError::Truncated),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn mid_frame_eof_is_a_transport_error() {
        let buf = encode_to_vec(&Message::Request {
            id: 1,
            op: DhtOp::Get(Key::hash_of("x")),
        });
        let mut cursor = io::Cursor::new(&buf[..buf.len() - 3]);
        assert!(matches!(read_message(&mut cursor), Err(RecvError::Io(_))));
    }
}
