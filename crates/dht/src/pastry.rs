//! A Pastry DHT simulation (prefix routing, leaf sets, PAST-style
//! replication).
//!
//! The paper lists "Pastry/PAST" alongside Chord/DHash as the storage
//! substrates its indexes run over (§III-A). Pastry (Rowstron & Druschel,
//! Middleware 2001) routes by identifier *prefix*: each node keeps a
//! routing table with one row per hex-digit of shared prefix and a *leaf
//! set* of the `L` numerically closest nodes. A message for key `k` is
//! forwarded to a node whose identifier shares a longer prefix with `k`
//! (or is numerically closer), reaching the numerically closest live node
//! in `O(log₁₆ N)` hops. PAST stores each file on the `r` nodes of the
//! leaf set closest to the key — the replication model exposed here.
//!
//! Like the other substrates, the whole network lives in one process and
//! RPCs are counted rather than sent.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use p2p_index_dht::{Dht, Key, PastryNetwork};
//!
//! let mut net = PastryNetwork::with_perfect_tables(
//!     (0..32).map(|i| Key::hash_of(&format!("peer-{i}"))),
//! );
//! let key = Key::hash_of("item");
//! net.put(key, Bytes::from_static(b"value"));
//! assert_eq!(net.get(&key), vec![Bytes::from_static(b"value")]);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use p2p_index_obs::MetricsRegistry;

use crate::api::{self, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId};
use crate::chord::ChordError;
use crate::key::{Key, KEY_BITS};
use crate::storage::NodeStore;

/// Hex digits per identifier (160 bits / 4 bits per digit).
const DIGITS: usize = KEY_BITS / 4;
/// Values a digit can take (b = 4 ⇒ base 16).
const RADIX: usize = 16;

/// Tuning knobs of the Pastry simulation.
#[derive(Debug, Clone)]
pub struct PastryConfig {
    /// Leaf-set size `L` (half smaller, half larger neighbours).
    pub leaf_set: usize,
    /// PAST replication: copies stored on the `replication` leaf-set nodes
    /// closest to the key (1 = no replication).
    pub replication: usize,
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig {
            leaf_set: 8,
            replication: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct PastryNodeState {
    /// `routing[row][col]`: a node sharing `row` leading digits whose
    /// digit at position `row` is `col`.
    routing: Vec<Vec<Option<Key>>>,
    /// Numerically closest neighbours: smaller side then larger side.
    leaves_small: Vec<Key>,
    leaves_large: Vec<Key>,
    store: NodeStore,
}

impl PastryNodeState {
    fn new() -> Self {
        PastryNodeState {
            routing: vec![vec![None; RADIX]; DIGITS],
            leaves_small: Vec::new(),
            leaves_large: Vec::new(),
            store: NodeStore::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    messages: AtomicU64,
    lookups: AtomicU64,
    hops: AtomicU64,
}

/// The simulated Pastry network.
///
/// See the [module docs](self) for an overview.
#[derive(Debug)]
pub struct PastryNetwork {
    cfg: PastryConfig,
    nodes: BTreeMap<Key, PastryNodeState>,
    order: Vec<Key>,
    stats: Counters,
    next_origin: AtomicU64,
    metrics: MetricsRegistry,
}

/// The hex digit of `key` at position `i` (0 = most significant).
fn digit(key: &Key, i: usize) -> usize {
    let byte = key.as_bytes()[i / 2];
    if i.is_multiple_of(2) {
        (byte >> 4) as usize
    } else {
        (byte & 0x0F) as usize
    }
}

/// Length of the common hex-digit prefix of two keys.
fn shared_prefix(a: &Key, b: &Key) -> usize {
    (0..DIGITS)
        .take_while(|&i| digit(a, i) == digit(b, i))
        .count()
}

/// Numerical ring distance: the shorter way around the circle.
fn num_distance(a: &Key, b: &Key) -> Key {
    let cw = a.distance_clockwise(b);
    let ccw = b.distance_clockwise(a);
    cw.min(ccw)
}

impl PastryNetwork {
    /// An empty network with default configuration.
    pub fn new() -> Self {
        Self::with_config(PastryConfig::default())
    }

    /// An empty network with the given configuration.
    pub fn with_config(cfg: PastryConfig) -> Self {
        PastryNetwork {
            cfg,
            nodes: BTreeMap::new(),
            order: Vec::new(),
            stats: Counters::default(),
            next_origin: AtomicU64::new(0),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Builds a converged network over `ids`: routing tables and leaf sets
    /// computed from the global view.
    pub fn with_perfect_tables(ids: impl IntoIterator<Item = Key>) -> Self {
        Self::with_perfect_tables_and_config(ids, PastryConfig::default())
    }

    /// [`PastryNetwork::with_perfect_tables`] with an explicit config.
    pub fn with_perfect_tables_and_config(
        ids: impl IntoIterator<Item = Key>,
        cfg: PastryConfig,
    ) -> Self {
        let mut net = Self::with_config(cfg);
        for id in ids {
            net.nodes.entry(id).or_insert_with(PastryNodeState::new);
        }
        net.order = net.nodes.keys().copied().collect();
        let ids = net.order.clone();
        for id in &ids {
            net.rebuild_node_state(id);
        }
        net
    }

    /// Recomputes one node's routing table and leaf set from the global
    /// view (the steady state the maintenance protocol converges to).
    fn rebuild_node_state(&mut self, id: &Key) {
        let mut routing = vec![vec![None; RADIX]; DIGITS];
        for other in &self.order {
            if other == id {
                continue;
            }
            let row = shared_prefix(id, other);
            if row >= DIGITS {
                continue;
            }
            let col = digit(other, row);
            let slot = &mut routing[row][col];
            // Prefer the numerically closest candidate (the real protocol
            // prefers proximity; numeric closeness is our deterministic
            // stand-in).
            let better = match slot {
                None => true,
                Some(existing) => num_distance(other, id) < num_distance(existing, id),
            };
            if better {
                *slot = Some(*other);
            }
        }
        let (small, large) = self.compute_leaves(id);
        let state = self.nodes.get_mut(id).expect("node exists");
        state.routing = routing;
        state.leaves_small = small;
        state.leaves_large = large;
    }

    /// The `L/2` nearest smaller and larger neighbours of `id` on the
    /// identifier circle, from the global view.
    fn compute_leaves(&self, id: &Key) -> (Vec<Key>, Vec<Key>) {
        let half = (self.cfg.leaf_set / 2).max(1);
        let n = self.order.len();
        if n <= 1 {
            return (Vec::new(), Vec::new());
        }
        let pos = self.order.binary_search(id).expect("node in order");
        let take = half.min(n - 1);
        let small: Vec<Key> = (1..=take).map(|k| self.order[(pos + n - k) % n]).collect();
        let large: Vec<Key> = (1..=take).map(|k| self.order[(pos + k) % n]).collect();
        (small, large)
    }

    /// Ground truth: the live node numerically closest to `key`.
    pub fn responsible_node(&self, key: &Key) -> Option<Key> {
        self.order
            .iter()
            .min_by(|a, b| {
                num_distance(a, key)
                    .cmp(&num_distance(b, key))
                    .then(a.cmp(b))
            })
            .copied()
    }

    /// Routes a message for `key` from `origin`, Pastry-style, returning
    /// the terminal node and the hop count.
    ///
    /// At each step: deliver if the local node is numerically closest
    /// among itself and its leaf set; else forward via the routing-table
    /// entry matching one more digit; else (rare case) forward to any
    /// known node closer to the key.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not live.
    pub fn route_from(&self, origin: Key, key: &Key) -> (Key, u32) {
        assert!(self.nodes.contains_key(&origin), "origin must be live");
        let mut current = origin;
        let mut hops = 0u32;
        let cap = self.order.len() as u32 + 4;

        loop {
            let state = &self.nodes[&current];
            let live_small: Vec<Key> = state
                .leaves_small
                .iter()
                .filter(|n| self.nodes.contains_key(n))
                .copied()
                .collect();
            let live_large: Vec<Key> = state
                .leaves_large
                .iter()
                .filter(|n| self.nodes.contains_key(n))
                .copied()
                .collect();

            // 1. Leaf-set range check (Pastry's first rule): if the key
            // falls within [farthest small leaf, farthest large leaf],
            // the numerically closest member of the leaf set ∪ self is
            // the destination.
            let in_leaf_range = match (live_small.last(), live_large.last()) {
                (Some(lo), Some(hi)) => key.in_interval(&lo.wrapping_sub(&Key::from_u64(1)), hi),
                // With no (live) leaves the node is effectively alone.
                _ => true,
            };
            let next = if in_leaf_range {
                let best = live_small
                    .iter()
                    .chain(live_large.iter())
                    .chain(std::iter::once(&current))
                    .min_by(|a, b| {
                        num_distance(a, key)
                            .cmp(&num_distance(b, key))
                            .then(a.cmp(b))
                    })
                    .copied()
                    .expect("candidate set includes current");
                if best == current {
                    // Delivered.
                    self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                    self.stats.hops.fetch_add(hops as u64, Ordering::Relaxed);
                    self.stats
                        .messages
                        .fetch_add(2 * hops as u64, Ordering::Relaxed);
                    return (current, hops);
                }
                best
            } else {
                // 2. Prefix rule: a routing entry matching one more digit.
                let row = shared_prefix(&current, key);
                let prefix_hop = if row < DIGITS {
                    state.routing[row][digit(key, row)].filter(|n| self.nodes.contains_key(n))
                } else {
                    None
                };
                match prefix_hop {
                    Some(n) => n,
                    None => {
                        // 3. Rare case: any known node with at least the
                        // same shared prefix that is numerically closer;
                        // (prefix, distance) progress is lexicographic, so
                        // routing terminates.
                        let closer = state
                            .routing
                            .iter()
                            .flatten()
                            .flatten()
                            .chain(live_small.iter())
                            .chain(live_large.iter())
                            .filter(|n| self.nodes.contains_key(n))
                            .filter(|n| shared_prefix(n, key) >= row)
                            .filter(|n| num_distance(n, key) < num_distance(&current, key))
                            .min_by_key(|n| num_distance(n, key));
                        match closer {
                            Some(n) => *n,
                            None => {
                                // No closer node known: deliver here.
                                self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                                self.stats.hops.fetch_add(hops as u64, Ordering::Relaxed);
                                self.stats
                                    .messages
                                    .fetch_add(2 * hops as u64, Ordering::Relaxed);
                                return (current, hops);
                            }
                        }
                    }
                }
            };
            current = next;
            hops += 1;
            if hops > cap {
                self.stats.lookups.fetch_add(1, Ordering::Relaxed);
                return (current, hops);
            }
        }
    }

    /// Joins `id` via `bootstrap`: the join message routes to the node
    /// closest to `id`, state is initialized, and affected neighbours
    /// update their tables.
    ///
    /// # Errors
    ///
    /// [`ChordError::DuplicateNode`] / [`ChordError::UnknownNode`] (shared
    /// error type across substrates).
    pub fn join(&mut self, id: NodeId, bootstrap: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.contains_key(&key) {
            return Err(ChordError::DuplicateNode(id));
        }
        if !self.nodes.contains_key(bootstrap.key()) {
            return Err(ChordError::UnknownNode(bootstrap));
        }
        let (closest, hops) = self.route_from(*bootstrap.key(), &key);
        self.stats
            .messages
            .fetch_add(hops as u64 + 2, Ordering::Relaxed);

        self.nodes.insert(key, PastryNodeState::new());
        let pos = self.order.binary_search(&key).unwrap_err();
        self.order.insert(pos, key);
        self.rebuild_node_state(&key);

        // Keys the newcomer is now responsible for move from the previous
        // owners. Numeric-closest responsibility splits toward *both* ring
        // neighbours (each gives up the half-interval facing the
        // newcomer), and the routed `closest` node may be either of them.
        let n = self.order.len();
        let pos = self.order.binary_search(&key).expect("just inserted");
        let mut donors = vec![closest];
        donors.push(self.order[(pos + n - 1) % n]);
        donors.push(self.order[(pos + 1) % n]);
        donors.sort();
        donors.dedup();
        let mut moved: Vec<(Key, Vec<Bytes>)> = Vec::new();
        for donor_id in donors {
            if donor_id == key {
                continue;
            }
            let donor = self.nodes.get_mut(&donor_id).expect("live node");
            let move_keys: Vec<Key> = donor
                .store
                .iter()
                .filter(|(k, _)| num_distance(k, &key) < num_distance(k, &donor_id))
                .map(|(k, _)| *k)
                .collect();
            for k in move_keys {
                let values = donor.store.get(&k).to_vec();
                donor.store.remove_all(&k);
                moved.push((k, values));
            }
        }
        let state = self.nodes.get_mut(&key).expect("just inserted");
        for (k, values) in moved {
            for v in values {
                state.store.put(k, v);
            }
        }

        // Neighbours refresh their leaf sets and routing entries.
        let affected = self.order.clone();
        for other in affected {
            if other != key {
                self.refresh_after_membership_change(&other, &key);
            }
        }
        Ok(())
    }

    /// Abruptly removes a node (data lost unless replicated via the leaf
    /// set). Remaining nodes repair their state lazily via
    /// [`PastryNetwork::repair`].
    ///
    /// # Errors
    ///
    /// [`ChordError::UnknownNode`] if `id` is not live.
    pub fn fail(&mut self, id: NodeId) -> Result<(), ChordError> {
        let key = *id.key();
        if self.nodes.remove(&key).is_none() {
            return Err(ChordError::UnknownNode(id));
        }
        let pos = self.order.binary_search(&key).expect("order mirrors nodes");
        self.order.remove(pos);
        Ok(())
    }

    /// Cheap incremental update after a single join: slot the newcomer
    /// into leaf sets / routing where it improves the entry.
    fn refresh_after_membership_change(&mut self, node: &Key, newcomer: &Key) {
        let (small, large) = self.compute_leaves(node);
        let row = shared_prefix(node, newcomer);
        let state = self.nodes.get_mut(node).expect("live node");
        state.leaves_small = small;
        state.leaves_large = large;
        if row < DIGITS {
            let col = digit(newcomer, row);
            let slot = &mut state.routing[row][col];
            let better = match slot {
                None => true,
                Some(existing) => num_distance(newcomer, node) < num_distance(existing, node),
            };
            if better {
                *slot = Some(*newcomer);
            }
        }
    }

    /// Repairs every node's leaf set and routing table after failures and
    /// restores the PAST replication invariant. Returns the number of
    /// replica copies created.
    pub fn repair(&mut self) -> usize {
        let ids = self.order.clone();
        for id in &ids {
            self.rebuild_node_state(id);
        }
        // Re-replication pass.
        let mut all: BTreeMap<Key, Vec<Bytes>> = BTreeMap::new();
        for state in self.nodes.values() {
            for (key, values) in state.store.iter() {
                let merged = all.entry(*key).or_default();
                for v in values {
                    if !merged.contains(v) {
                        merged.push(v.clone());
                    }
                }
            }
        }
        let mut created = 0;
        for (key, values) in all {
            let replicas = self.replica_set(&key);
            for (node_key, state) in self.nodes.iter_mut() {
                if replicas.contains(node_key) {
                    for v in &values {
                        if state.store.put(key, v.clone()) {
                            created += 1;
                        }
                    }
                } else {
                    state.store.remove_all(&key);
                }
            }
        }
        created
    }

    /// PAST placement: the `replication` live nodes numerically closest to
    /// the key.
    fn replica_set(&self, key: &Key) -> Vec<Key> {
        let mut nodes = self.order.clone();
        nodes.sort_by(|a, b| {
            num_distance(a, key)
                .cmp(&num_distance(b, key))
                .then(a.cmp(b))
        });
        nodes.truncate(self.cfg.replication.max(1));
        nodes
    }

    fn pick_origin(&self) -> Option<Key> {
        if self.order.is_empty() {
            return None;
        }
        let i = self.next_origin.fetch_add(1, Ordering::Relaxed) as usize;
        Some(self.order[i % self.order.len()])
    }

    /// Read-only view of one node's store.
    pub fn store_of(&self, id: &NodeId) -> Option<&NodeStore> {
        self.nodes.get(id.key()).map(|s| &s.store)
    }
}

impl Default for PastryNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl PastryNetwork {
    fn execute_inner(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        let Some(origin) = self.pick_origin() else {
            return Err(DhtError::NoLiveNodes);
        };
        match op {
            DhtOp::NodeFor(key) => {
                let (node, _hops) = self.route_from(origin, &key);
                Ok(DhtResponse::Node(NodeId::from_key(node)))
            }
            DhtOp::Get(key) => Ok(DhtResponse::Values(self.get(&key))),
            DhtOp::Put { key, value } => {
                let (_node, _hops) = self.route_from(origin, &key);
                self.stats.messages.fetch_add(2, Ordering::Relaxed);
                let mut stored = false;
                for replica in self.replica_set(&key) {
                    let state = self.nodes.get_mut(&replica).expect("live replica");
                    stored |= state.store.put(key, value.clone());
                }
                Ok(DhtResponse::Stored(stored))
            }
            DhtOp::Remove { key, value } => {
                let (_node, _hops) = self.route_from(origin, &key);
                self.stats.messages.fetch_add(2, Ordering::Relaxed);
                let mut removed = false;
                for replica in self.replica_set(&key) {
                    let state = self.nodes.get_mut(&replica).expect("live replica");
                    removed |= state.store.remove(&key, &value);
                }
                Ok(DhtResponse::Removed(removed))
            }
        }
    }
}

impl Dht for PastryNetwork {
    fn execute(&mut self, op: DhtOp) -> Result<DhtResponse, DhtError> {
        if !self.metrics.is_enabled() {
            return self.execute_inner(op);
        }
        let kind = op.kind();
        let before = self.stats();
        let result = self.execute_inner(op);
        api::record_op(&self.metrics, kind, before, self.stats(), &result);
        result
    }

    fn node_for(&self, key: &Key) -> Option<NodeId> {
        let origin = self.pick_origin()?;
        let (node, _hops) = self.route_from(origin, key);
        Some(NodeId::from_key(node))
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.order.iter().copied().map(NodeId::from_key).collect()
    }

    fn get(&self, key: &Key) -> Vec<Bytes> {
        let Some(origin) = self.pick_origin() else {
            return Vec::new();
        };
        let (node, _hops) = self.route_from(origin, key);
        self.stats.messages.fetch_add(2, Ordering::Relaxed);
        if let Some(state) = self.nodes.get(&node) {
            let values = state.store.get(key);
            if !values.is_empty() {
                return values.to_vec();
            }
        }
        // Leaf-set read repair path.
        for replica in self.replica_set(key).into_iter().skip(1) {
            if let Some(state) = self.nodes.get(&replica) {
                let values = state.store.get(key);
                if !values.is_empty() {
                    self.stats.messages.fetch_add(2, Ordering::Relaxed);
                    return values.to_vec();
                }
            }
        }
        Vec::new()
    }

    fn entries(&self) -> Vec<(Key, Vec<Bytes>)> {
        crate::storage::merged_entries(self.nodes.values().map(|state| &state.store))
    }

    fn stats(&self) -> DhtStats {
        DhtStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            lookups: self.stats.lookups.load(Ordering::Relaxed),
            hops: self.stats.hops.load(Ordering::Relaxed),
        }
    }

    fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

impl NodeChurn for PastryNetwork {
    fn spawn(&mut self, id: NodeId) -> bool {
        let Some(bootstrap) = self.order.first().copied() else {
            return false;
        };
        self.join(id, NodeId::from_key(bootstrap)).is_ok()
    }

    fn kill(&mut self, id: NodeId) -> bool {
        self.fail(id).is_ok()
    }

    fn stabilize(&mut self) {
        self.repair();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Key> {
        (0..n)
            .map(|i| Key::hash_of(&format!("pastry-{i}")))
            .collect()
    }

    #[test]
    fn digit_extraction() {
        let k = Key::from_digest([0xAB; 20]);
        assert_eq!(digit(&k, 0), 0xA);
        assert_eq!(digit(&k, 1), 0xB);
        assert_eq!(digit(&k, 39), 0xB);
    }

    #[test]
    fn shared_prefix_counts_digits() {
        let a = Key::from_digest([0xAB; 20]);
        let mut bytes = [0xAB; 20];
        bytes[1] = 0xAC; // digits: A B A C ...
        let b = Key::from_digest(bytes);
        assert_eq!(shared_prefix(&a, &b), 3);
        assert_eq!(shared_prefix(&a, &a), DIGITS);
    }

    #[test]
    fn num_distance_is_symmetric_shortest_way() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(30);
        assert_eq!(num_distance(&a, &b), Key::from_u64(20));
        assert_eq!(num_distance(&b, &a), Key::from_u64(20));
        // Wraparound: MAX and 5 are 6 apart the short way.
        assert_eq!(num_distance(&Key::MAX, &Key::from_u64(5)), Key::from_u64(6));
    }

    #[test]
    fn routing_reaches_numerically_closest_node() {
        let net = PastryNetwork::with_perfect_tables(keys(64));
        let origins = net.nodes();
        for i in 0..200 {
            let key = Key::hash_of(&format!("probe-{i}"));
            let truth = net.responsible_node(&key).unwrap();
            let origin = *origins[i % origins.len()].key();
            let (reached, _hops) = net.route_from(origin, &key);
            assert_eq!(reached, truth, "probe {i}");
        }
    }

    #[test]
    fn hops_are_logarithmic_base16() {
        let net = PastryNetwork::with_perfect_tables(keys(256));
        let origins = net.nodes();
        let mut total = 0u32;
        for i in 0..200 {
            let key = Key::hash_of(&format!("h{i}"));
            let (_n, hops) = net.route_from(*origins[i % origins.len()].key(), &key);
            total += hops;
        }
        let mean = total as f64 / 200.0;
        // log16(256) = 2; allow slack for leaf-set detours.
        assert!(mean < 4.0, "mean hops {mean}");
        assert!(mean >= 1.0);
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut net = PastryNetwork::with_perfect_tables(keys(32));
        for i in 0..60 {
            let k = Key::hash_of(&format!("item{i}"));
            assert!(net.put(k, Bytes::from(format!("v{i}"))));
        }
        for i in 0..60 {
            let k = Key::hash_of(&format!("item{i}"));
            assert_eq!(net.get(&k), vec![Bytes::from(format!("v{i}"))]);
        }
        let k = Key::hash_of("item0");
        assert!(net.remove(&k, b"v0"));
        assert!(net.get(&k).is_empty());
    }

    #[test]
    fn data_lands_on_numerically_closest_node() {
        let mut net = PastryNetwork::with_perfect_tables(keys(32));
        let k = Key::hash_of("placed");
        net.put(k, Bytes::from_static(b"v"));
        let owner = NodeId::from_key(net.responsible_node(&k).unwrap());
        assert!(net.store_of(&owner).unwrap().contains_key(&k));
    }

    #[test]
    fn join_reroutes_and_takes_keys() {
        let ids = keys(24);
        let mut net = PastryNetwork::with_perfect_tables(ids.clone());
        let data: Vec<Key> = (0..80).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        net.join(NodeId::hash_of("pastry-new"), NodeId::from_key(ids[0]))
            .unwrap();
        for (i, k) in data.iter().enumerate() {
            assert_eq!(net.get(k), vec![Bytes::from(format!("v{i}"))], "key {i}");
        }
        // Lookups now resolve to the (possibly new) closest node.
        for (i, k) in data.iter().enumerate() {
            let truth = net.responsible_node(k).unwrap();
            let (reached, _) = net.route_from(ids[i % ids.len()], k);
            assert_eq!(reached, truth, "post-join routing for key {i}");
        }
    }

    #[test]
    fn join_errors() {
        let ids = keys(4);
        let mut net = PastryNetwork::with_perfect_tables(ids.clone());
        let dup = NodeId::from_key(ids[1]);
        assert_eq!(
            net.join(dup, NodeId::from_key(ids[0])),
            Err(ChordError::DuplicateNode(dup))
        );
        let ghost = NodeId::hash_of("ghost");
        assert_eq!(
            net.join(NodeId::hash_of("ok"), ghost),
            Err(ChordError::UnknownNode(ghost))
        );
    }

    #[test]
    fn failure_heals_after_repair() {
        let ids = keys(32);
        let cfg = PastryConfig {
            replication: 3,
            ..PastryConfig::default()
        };
        let mut net = PastryNetwork::with_perfect_tables_and_config(ids.clone(), cfg);
        let data: Vec<Key> = (0..50).map(|i| Key::hash_of(&format!("d{i}"))).collect();
        for (i, k) in data.iter().enumerate() {
            net.put(*k, Bytes::from(format!("v{i}")));
        }
        // Kill three scattered nodes.
        for idx in [3usize, 14, 27] {
            net.fail(NodeId::from_key(ids[idx])).unwrap();
        }
        net.repair();
        for (i, k) in data.iter().enumerate() {
            assert_eq!(net.get(k), vec![Bytes::from(format!("v{i}"))], "key {i}");
        }
        // Replica invariant restored.
        for k in &data {
            let holders = net
                .nodes()
                .iter()
                .filter(|n| net.store_of(n).is_some_and(|s| s.contains_key(k)))
                .count();
            assert_eq!(holders, 3, "key {k:?}");
        }
    }

    #[test]
    fn leaf_sets_are_the_numeric_neighbours() {
        let net = PastryNetwork::with_perfect_tables(keys(32));
        let id = net.order[5];
        let state = &net.nodes[&id];
        assert_eq!(state.leaves_small.len(), 4);
        assert_eq!(state.leaves_large.len(), 4);
        assert_eq!(state.leaves_large[0], net.order[6]);
        assert_eq!(state.leaves_small[0], net.order[4]);
    }

    #[test]
    fn empty_and_singleton_networks() {
        let mut net = PastryNetwork::new();
        assert!(net.is_empty());
        assert!(net.get(&Key::hash_of("x")).is_empty());
        assert!(!net.put(Key::hash_of("x"), Bytes::from_static(b"v")));

        let mut net = PastryNetwork::with_perfect_tables([Key::hash_of("solo")]);
        let k = Key::hash_of("k");
        assert!(net.put(k, Bytes::from_static(b"v")));
        assert_eq!(net.get(&k), vec![Bytes::from_static(b"v")]);
        let (reached, hops) = net.route_from(Key::hash_of("solo"), &k);
        assert_eq!(reached, Key::hash_of("solo"));
        assert_eq!(hops, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = PastryNetwork::with_perfect_tables(keys(64));
        let before = net.stats();
        net.put(Key::hash_of("s"), Bytes::from_static(b"v"));
        net.get(&Key::hash_of("s"));
        let after = net.stats();
        assert!(after.lookups >= before.lookups + 2);
        assert!(after.messages > before.messages);
    }
}
