//! The threaded `dhtd` server: one node's storage partition over TCP.
//!
//! [`DhtServer::spawn`] binds a listener (port 0 for an ephemeral port),
//! starts an accept loop on its own thread, and serves every connection on
//! a dedicated worker thread — plain `std::thread`, no async runtime, no
//! new dependencies. Each worker reads request frames, executes them
//! against the shared substrate under a mutex (substrates are small,
//! synchronous state machines; the lock is held only for the in-memory
//! operation, never across I/O), and writes the response frame back with
//! the echoed request id.
//!
//! Shutdown is graceful and reachable two ways: locally via
//! [`DhtServer::shutdown`], or over the wire with a
//! [`Message::Shutdown`](crate::wire::Message::Shutdown) frame (what the
//! multi-process harness sends its children). Either path stops the
//! accept loop, lets in-flight requests finish, and joins every worker.
//!
//! Per-connection read timeouts double as the shutdown poll interval: a
//! worker blocked in `read` wakes at least every `read_timeout` to check
//! the flag, so shutdown latency is bounded without extra machinery.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use p2p_index_dht::Dht;
use p2p_index_obs::MetricsRegistry;

use crate::wire::{read_message, write_message, Message, RecvError};

/// Tuning knobs for a [`DhtServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection socket read timeout. Also bounds how long a worker
    /// can go without checking the shutdown flag.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How often the accept loop polls for shutdown between connections.
    pub accept_poll: Duration,
    /// Metrics sink for the `net.server.*` series (disabled by default).
    pub metrics: MetricsRegistry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            accept_poll: Duration::from_millis(10),
            metrics: MetricsRegistry::disabled(),
        }
    }
}

/// Shared state between the accept loop and connection workers.
struct Shared {
    dht: Mutex<Box<dyn Dht + Send>>,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Operations served since spawn (requests answered, ok or error).
    served: AtomicU64,
}

/// A running DHT node server. Dropping the handle shuts the server down.
pub struct DhtServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl DhtServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `dht` — typically a single-node substrate holding this server's
    /// partition of the key space, optionally wrapped in a fault injector.
    pub fn spawn(
        dht: Box<dyn Dht + Send>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<DhtServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            dht: Mutex::new(dht),
            stop: AtomicBool::new(false),
            metrics: config.metrics.clone(),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            served: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let poll = config.accept_poll;
        let accept_thread = std::thread::Builder::new()
            .name(format!("dhtd-accept-{}", local_addr.port()))
            .spawn(move || accept_loop(listener, accept_shared, poll))?;
        Ok(DhtServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address — read this after `port 0` to learn the
    /// ephemeral port the OS assigned.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Operations answered so far (ok and error responses alike).
    pub fn ops_served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// `true` once a shutdown (local or wire) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Blocks until the server shuts down (via a wire shutdown frame or
    /// another thread calling [`DhtServer::shutdown`]). Used by the
    /// `repro serve` daemon main.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains in-flight requests, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DhtServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Accepts connections until the stop flag is set, then joins workers.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, poll: Duration) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.incr("net.server.connections");
                let conn_shared = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name("dhtd-conn".to_string())
                    .spawn(move || serve_connection(stream, conn_shared))
                {
                    Ok(handle) => workers.push(handle),
                    Err(_) => shared.metrics.incr("net.server.spawn_errors"),
                }
                // Opportunistically reap finished workers so a long-lived
                // daemon doesn't accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
            }
            Err(_) => {
                shared.metrics.incr("net.server.accept_errors");
                std::thread::sleep(poll);
            }
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Serves one connection until the peer closes, a protocol error poisons
/// the stream, or shutdown is requested.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let (msg, bytes_in) = match read_message(&mut stream) {
            Ok(ok) => ok,
            Err(RecvError::Closed) => return,
            Err(RecvError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: loop to re-check the shutdown flag.
                continue;
            }
            Err(RecvError::Io(_)) => {
                shared.metrics.incr("net.server.transport_errors");
                return;
            }
            Err(RecvError::Wire(_)) => {
                // Strict rejection: a malformed frame poisons the stream
                // (framing can no longer be trusted), so the connection is
                // dropped rather than resynchronized by guesswork.
                shared.metrics.incr("net.server.decode_errors");
                return;
            }
        };
        shared.metrics.incr("net.server.frames_in");
        shared.metrics.add("net.server.bytes_in", bytes_in as u64);
        match msg {
            Message::Request { id, op } => {
                let kind = op.kind();
                let result = {
                    let mut dht = shared.dht.lock().expect("server substrate poisoned");
                    dht.execute(op)
                };
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.metrics.incr(&format!("net.server.ops.{kind}"));
                if result.is_err() {
                    shared.metrics.incr("net.server.op_errors");
                }
                let reply = Message::Response { id, result };
                match write_message(&mut stream, &reply) {
                    Ok(bytes_out) => {
                        shared.metrics.incr("net.server.frames_out");
                        shared.metrics.add("net.server.bytes_out", bytes_out as u64);
                    }
                    Err(_) => {
                        shared.metrics.incr("net.server.transport_errors");
                        return;
                    }
                }
            }
            Message::Batch { id, ops } => {
                // A whole batch executes in one connection turn: the
                // substrate lock is taken once, every op runs in order,
                // and a single BatchReply answers them all.
                let count = ops.len() as u64;
                let kinds: Vec<&'static str> = ops.iter().map(|op| op.kind()).collect();
                let results = {
                    let mut dht = shared.dht.lock().expect("server substrate poisoned");
                    dht.execute_many(ops)
                };
                shared.served.fetch_add(count, Ordering::Relaxed);
                shared.metrics.incr("net.server.batches");
                shared.metrics.add("net.server.batch_ops", count);
                for (kind, result) in kinds.iter().zip(&results) {
                    shared.metrics.incr(&format!("net.server.ops.{kind}"));
                    if result.is_err() {
                        shared.metrics.incr("net.server.op_errors");
                    }
                }
                let reply = Message::BatchReply { id, results };
                match write_message(&mut stream, &reply) {
                    Ok(bytes_out) => {
                        shared.metrics.incr("net.server.frames_out");
                        shared.metrics.add("net.server.bytes_out", bytes_out as u64);
                    }
                    Err(_) => {
                        shared.metrics.incr("net.server.transport_errors");
                        return;
                    }
                }
            }
            Message::Shutdown => {
                shared.metrics.incr("net.server.shutdowns");
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Message::Response { .. } | Message::BatchReply { .. } => {
                // Clients must not send responses; treat as protocol abuse.
                shared.metrics.incr("net.server.decode_errors");
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use p2p_index_dht::{DhtOp, DhtResponse, Key, RingDht};

    fn spawn_ring() -> DhtServer {
        DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind loopback")
    }

    fn call(stream: &mut TcpStream, id: u64, op: DhtOp) -> Message {
        write_message(stream, &Message::Request { id, op }).unwrap();
        read_message(stream).unwrap().0
    }

    #[test]
    fn serves_put_get_over_tcp() {
        let server = spawn_ring();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let key = Key::hash_of("k");
        let reply = call(
            &mut stream,
            1,
            DhtOp::Put {
                key,
                value: Bytes::from_static(b"v"),
            },
        );
        assert_eq!(
            reply,
            Message::Response {
                id: 1,
                result: Ok(DhtResponse::Stored(true))
            }
        );
        let reply = call(&mut stream, 2, DhtOp::Get(key));
        assert_eq!(
            reply,
            Message::Response {
                id: 2,
                result: Ok(DhtResponse::Values(vec![Bytes::from_static(b"v")]))
            }
        );
        assert_eq!(server.ops_served(), 2);
        server.shutdown();
    }

    #[test]
    fn serves_a_whole_batch_in_one_turn() {
        let server = spawn_ring();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let key = Key::hash_of("batch-key");
        write_message(
            &mut stream,
            &Message::Batch {
                id: 7,
                ops: vec![
                    DhtOp::Put {
                        key,
                        value: Bytes::from_static(b"v"),
                    },
                    DhtOp::Get(key),
                    DhtOp::Remove {
                        key,
                        value: Bytes::from_static(b"absent"),
                    },
                ],
            },
        )
        .unwrap();
        let (reply, _) = read_message(&mut stream).unwrap();
        assert_eq!(
            reply,
            Message::BatchReply {
                id: 7,
                results: vec![
                    Ok(DhtResponse::Stored(true)),
                    Ok(DhtResponse::Values(vec![Bytes::from_static(b"v")])),
                    Ok(DhtResponse::Removed(false)),
                ],
            }
        );
        assert_eq!(server.ops_served(), 3, "a batch op counts like a unary op");
        server.shutdown();
    }

    #[test]
    fn malformed_frame_drops_the_connection() {
        let metrics = MetricsRegistry::new();
        let server = DhtServer::spawn(
            Box::new(RingDht::with_named_nodes(1)),
            "127.0.0.1:0",
            ServerConfig {
                metrics: metrics.clone(),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        use std::io::{Read, Write};
        stream.write_all(b"garbage-not-a-frame-at-all").unwrap();
        stream.flush().unwrap();
        // Server closes on us without replying.
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
        assert_eq!(metrics.counter("net.server.decode_errors"), 1);
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = spawn_ring();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, &Message::Shutdown).unwrap();
        // wait() returns because the shutdown frame set the stop flag.
        server.wait();
        // The listener is gone: new connections are refused (give the OS a
        // moment to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err());
    }
}
