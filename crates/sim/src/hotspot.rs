//! The skewed-load scenario: `repro hotspot`.
//!
//! The paper's popularity model (Fig. 10) already concentrates requests on
//! a few articles; a flash crowd — a news-driven spike on one title —
//! concentrates them further onto the handful of nodes owning that title's
//! index keys. This module scripts exactly that scenario over a large ring
//! and measures what each node actually serves, with and without the
//! `crates/dht` balance subsystem ([`SplitDht`]) in the path:
//!
//! * **baseline** — [`BalanceConfig::observe_only`]: every operation
//!   passes through unchanged; the decorator only attributes physical
//!   puts/gets to the owning node.
//! * **mitigated** — entry splitting (oversized entries paginate onto
//!   deterministic child keys owned by other nodes) plus hot-key read
//!   fan-out (reads of promoted keys rotate across successor mirrors).
//!
//! Both cells run the *same* corpus, workload seed, and query stream, so
//! the per-node load difference is attributable to the subsystem alone.
//! A second cell pair exercises the cache-admission control under tight
//! per-node LRU caches: without admission gating, one-off tail queries
//! evict the flash crowd's shortcut; with it, the hot entry survives.
//!
//! The headline exhibit is the per-node imbalance summary
//! ([`ImbalanceSummary`]: max/mean, Gini, top-k) over operations served
//! and bytes stored, emitted as a table/CSV and merged into
//! `BENCH_results.json` under the `"hotspot"` key.

use std::collections::HashMap;
use std::sync::Arc;

use p2p_index_core::{CachePolicy, IndexScheme, IndexService, SimpleScheme};
use p2p_index_dht::{BalanceConfig, Dht, NodeLoad, RingDht, SplitDht};
use p2p_index_obs::ImbalanceSummary;
use p2p_index_workload::{Corpus, CorpusConfig, FlashCrowd, QueryStructure, StructureMix};
use p2p_index_xpath::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::simulation::user_search_buffered;
use crate::table::{fmt_f, TextTable};

/// How many heaviest nodes the imbalance summaries retain.
const TOP_K: usize = 5;

/// Per-node LRU capacity of the cache-admission cell pair: one slot, so
/// every ungated insert evicts whatever the node held. Repeated keys keep
/// themselves resident through LRU recency at any larger capacity; the
/// one-slot cache is where eviction by one-off tail keys actually costs
/// hits, and therefore where admission gating pays.
const ADMISSION_LRU_CAPACITY: usize = 1;

/// Full configuration of one hot-spot scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotConfig {
    /// Ring size (paper-scale default: 10 000 simulated nodes).
    pub nodes: usize,
    /// Corpus size.
    pub articles: usize,
    /// Queries fed sequentially.
    pub queries: usize,
    /// Seed for corpus and workload generation.
    pub seed: u64,
    /// Popularity rank (1-based) of the article the flash crowd hits.
    pub hot_rank: usize,
    /// Crowd window as fractions of the query stream, `0.0 ..= 1.0`.
    pub window: (f64, f64),
    /// In-window probability that a query redirects to the hot title.
    pub boost: f64,
    /// [`BalanceConfig::page_budget`] of the mitigated cell.
    pub page_budget: usize,
    /// [`BalanceConfig::hot_threshold`] of the mitigated cell.
    pub hot_threshold: u64,
    /// [`BalanceConfig::fanout`] of the mitigated cell.
    pub fanout: usize,
    /// Cache policy of the two headline cells. Defaults to
    /// [`CachePolicy::None`] so the exhibit isolates the DHT layer: the
    /// paper's shortcut caches absorb repeated *lookups*, but publishes
    /// and cold lookups still land on the owners — that residual load is
    /// what the balance subsystem spreads.
    pub policy: CachePolicy,
    /// Admission threshold of the cache-admission comparison cell (and of
    /// the mitigated headline cell, where it only matters if `policy`
    /// creates caches).
    pub admission: u32,
    /// Also run the cache-admission cell pair (two extra cells under
    /// `Lru(4)` caches). On for the full exhibit, off for quick checks.
    pub admission_cells: bool,
}

impl HotspotConfig {
    /// The full-scale scenario: a 10 000-node ring, the paper's corpus
    /// and popularity constants, and a flash crowd over the middle fifth
    /// of the stream.
    pub fn paper() -> HotspotConfig {
        HotspotConfig {
            nodes: 10_000,
            articles: 10_000,
            queries: 50_000,
            seed: 42,
            hot_rank: 7,
            window: (0.4, 0.6),
            boost: 0.9,
            page_budget: 1536,
            hot_threshold: 64,
            fanout: 7,
            policy: CachePolicy::None,
            admission: 3,
            admission_cells: true,
        }
    }

    /// A scaled-down scenario with the same qualitative shape, for CI
    /// smoke runs and tests.
    pub fn small() -> HotspotConfig {
        HotspotConfig {
            nodes: 1_000,
            articles: 1_000,
            queries: 8_000,
            hot_threshold: 32,
            ..HotspotConfig::paper()
        }
    }

    /// The crowd window as query indices.
    pub fn window_indices(&self) -> (usize, usize) {
        let clamp = |f: f64| ((self.queries as f64 * f) as usize).min(self.queries);
        (clamp(self.window.0), clamp(self.window.1))
    }

    /// The mitigated cell's balance configuration.
    pub fn balance(&self) -> BalanceConfig {
        BalanceConfig::mitigating(self.page_budget, self.hot_threshold, self.fanout)
    }

    /// The corpus implied by this config (same sizing rule as the paper
    /// grid, so equal `(articles, seed)` means an equal corpus).
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            articles: self.articles,
            author_pool: (self.articles / 3).max(16),
            seed: self.seed,
            ..CorpusConfig::default()
        }
    }
}

/// Everything measured in one scenario cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell label ("baseline", "mitigated", …).
    pub label: String,
    /// Imbalance of physical DHT operations served per node during the
    /// query phase — the headline number.
    pub ops: ImbalanceSummary,
    /// Imbalance of value bytes stored per node at the end of the run.
    pub stored_bytes: ImbalanceSummary,
    /// Total physical gets during the query phase.
    pub gets: u64,
    /// Total physical puts during the query phase.
    pub puts: u64,
    /// Total user-system interactions.
    pub interactions: u64,
    /// Queries resolved through a cache shortcut.
    pub cache_hits: u64,
    /// Non-indexed initial queries (recoverable errors).
    pub errors: u64,
    /// Queries whose target was never located (expected 0).
    pub failed: u64,
    /// Entries split into pages over the whole run.
    pub splits: u64,
    /// Pages opened over the whole run.
    pub pages_opened: u64,
    /// Keys promoted to hot.
    pub promotions: u64,
    /// Gets that reassembled a split entry.
    pub reassembled_gets: u64,
    /// Gets served from a mirror instead of the primary.
    pub mirror_reads: u64,
    /// Keys currently split.
    pub split_keys: usize,
    /// Keys currently hot.
    pub hot_keys: usize,
}

impl CellResult {
    /// The cell as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ops\": {}, \"stored_bytes\": {}, \"gets\": {}, \"puts\": {}, \
             \"interactions\": {}, \"cache_hits\": {}, \"errors\": {}, \"failed\": {}, \
             \"splits\": {}, \"pages_opened\": {}, \"promotions\": {}, \
             \"reassembled_gets\": {}, \"mirror_reads\": {}, \
             \"split_keys\": {}, \"hot_keys\": {}}}",
            self.ops.to_json(),
            self.stored_bytes.to_json(),
            self.gets,
            self.puts,
            self.interactions,
            self.cache_hits,
            self.errors,
            self.failed,
            self.splits,
            self.pages_opened,
            self.promotions,
            self.reassembled_gets,
            self.mirror_reads,
            self.split_keys,
            self.hot_keys,
        )
    }
}

/// The full scenario result: the headline cell pair plus the optional
/// cache-admission pair.
#[derive(Debug, Clone)]
pub struct HotspotReport {
    /// The configuration that produced this report.
    pub config: HotspotConfig,
    /// Observe-only cell.
    pub baseline: CellResult,
    /// Splitting + fan-out cell.
    pub mitigated: CellResult,
    /// `Lru(4)` caches, admission gating off.
    pub admission_off: Option<CellResult>,
    /// `Lru(4)` caches, admission gating on.
    pub admission_on: Option<CellResult>,
}

impl HotspotReport {
    /// `true` when the mitigation did not worsen the headline number
    /// (max/mean of per-node operations served). The CI smoke step greps
    /// for this.
    pub fn improved(&self) -> bool {
        self.mitigated.ops.max_over_mean <= self.baseline.ops.max_over_mean
    }

    /// The headline table: per-node imbalance of operations served and
    /// bytes stored, baseline vs mitigated.
    pub fn imbalance_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Hot-spot imbalance: flash crowd on one title (repro hotspot)".to_string(),
        );
        t.header([
            "cell", "measure", "nodes", "total", "mean", "max", "max/mean", "gini", "top-1",
        ]);
        for cell in [&self.baseline, &self.mitigated] {
            for (measure, s) in [("ops", &cell.ops), ("bytes", &cell.stored_bytes)] {
                t.row([
                    cell.label.clone(),
                    measure.to_string(),
                    s.nodes.to_string(),
                    s.total.to_string(),
                    fmt_f(s.mean, 2),
                    s.max.to_string(),
                    fmt_f(s.max_over_mean, 2),
                    fmt_f(s.gini, 4),
                    s.top.first().copied().unwrap_or(0).to_string(),
                ]);
            }
        }
        t
    }

    /// The mechanism table: what the balance subsystem (and the caches)
    /// actually did in each cell.
    pub fn mitigation_table(&self) -> TextTable {
        let mut t = TextTable::new("Hot-spot mitigation counters".to_string());
        t.header([
            "cell",
            "splits",
            "pages",
            "promotions",
            "split keys",
            "hot keys",
            "reassembled",
            "mirror reads",
            "cache hits",
            "errors",
        ]);
        for cell in self.cells() {
            t.row([
                cell.label.clone(),
                cell.splits.to_string(),
                cell.pages_opened.to_string(),
                cell.promotions.to_string(),
                cell.split_keys.to_string(),
                cell.hot_keys.to_string(),
                cell.reassembled_gets.to_string(),
                cell.mirror_reads.to_string(),
                cell.cache_hits.to_string(),
                cell.errors.to_string(),
            ]);
        }
        t
    }

    /// All cells that ran, headline pair first.
    pub fn cells(&self) -> Vec<&CellResult> {
        let mut cells = vec![&self.baseline, &self.mitigated];
        cells.extend(self.admission_off.iter());
        cells.extend(self.admission_on.iter());
        cells
    }

    /// The report as the `"hotspot": { … }` JSON member merged into
    /// `BENCH_results.json` (hand-rolled, like every other JSON emitter
    /// in this workspace).
    pub fn json_member(&self) -> String {
        let c = &self.config;
        let (w0, w1) = c.window_indices();
        let admission = match (&self.admission_off, &self.admission_on) {
            (Some(off), Some(on)) => format!(
                ",\n    \"admission\": {{\"lru_capacity\": {}, \"threshold\": {}, \
                 \"off\": {}, \"on\": {}}}",
                ADMISSION_LRU_CAPACITY,
                c.admission,
                off.to_json(),
                on.to_json()
            ),
            _ => String::new(),
        };
        format!(
            "\"hotspot\": {{\n    \"config\": {{\"nodes\": {}, \"articles\": {}, \"queries\": {}, \
             \"seed\": {}, \"hot_rank\": {}, \"window\": [{w0}, {w1}], \"boost\": {:.2}, \
             \"page_budget\": {}, \"hot_threshold\": {}, \"fanout\": {}}},\n    \
             \"baseline\": {},\n    \"mitigated\": {}{admission},\n    \"improved\": {}\n  }}",
            c.nodes,
            c.articles,
            c.queries,
            c.seed,
            c.hot_rank,
            c.boost,
            c.page_budget,
            c.hot_threshold,
            c.fanout,
            self.baseline.to_json(),
            self.mitigated.to_json(),
            self.improved(),
        )
    }
}

/// Runs the whole scenario: the shared corpus, the headline cell pair,
/// and (when configured) the cache-admission pair.
pub fn run(config: &HotspotConfig) -> HotspotReport {
    let corpus = Arc::new(Corpus::generate(config.corpus_config()));
    let baseline = run_cell(
        config,
        &corpus,
        BalanceConfig::observe_only(),
        config.policy,
        0,
        "baseline",
    );
    let mitigated = run_cell(
        config,
        &corpus,
        config.balance(),
        config.policy,
        config.admission,
        "mitigated",
    );
    let (admission_off, admission_on) = if config.admission_cells {
        let lru = CachePolicy::Lru(ADMISSION_LRU_CAPACITY);
        (
            Some(run_cell(
                config,
                &corpus,
                config.balance(),
                lru,
                0,
                "lru/no-admission",
            )),
            Some(run_cell(
                config,
                &corpus,
                config.balance(),
                lru,
                config.admission.max(2),
                "lru/admission",
            )),
        )
    } else {
        (None, None)
    };
    HotspotReport {
        config: *config,
        baseline,
        mitigated,
        admission_off,
        admission_on,
    }
}

/// Runs one cell: publish the corpus, feed the flash-crowd workload,
/// summarize per-node load.
fn run_cell(
    config: &HotspotConfig,
    corpus: &Arc<Corpus>,
    balance: BalanceConfig,
    policy: CachePolicy,
    admission: u32,
    label: &str,
) -> CellResult {
    let dht = SplitDht::new(RingDht::with_named_nodes(config.nodes), balance);
    let mut service = IndexService::new(dht, policy);
    service.set_cache_admission(admission);
    let scheme: &dyn IndexScheme = &SimpleScheme;

    let mut msds = Vec::with_capacity(corpus.len());
    let mut files = Vec::with_capacity(corpus.len());
    for article in corpus.articles() {
        let file = article.file_name();
        let msd = service
            .publish(&article.descriptor(), file.clone(), scheme)
            .expect("network is non-empty and the scheme is covering-safe");
        msds.push(msd);
        files.push(file);
    }
    // The query phase is the exhibit: drop the publish wave from the load
    // table (splitting done during publish still shows in the counters
    // and in the stored-bytes distribution).
    service.dht_mut().reset_load();
    service.reset_metrics();

    let (w0, w1) = config.window_indices();
    let crowd = FlashCrowd::new(config.articles, config.hot_rank, w0, w1, config.boost);
    let mix = StructureMix::paper_simulation();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf1a5);
    // Interned like the paper workload generator: the crowd asks for the
    // same few queries over and over.
    let mut memo: HashMap<(QueryStructure, usize), Query> = HashMap::new();
    let mut path = Vec::new();
    let mut generalizations = Vec::new();
    let mut interactions = 0u64;
    let mut cache_hits = 0u64;
    let mut errors = 0u64;
    let mut failed = 0u64;
    for qi in 0..config.queries {
        let rank = crowd.sample_at(qi, &mut rng);
        let target = rank - 1;
        let article = corpus.article(target).expect("rank within corpus");
        // The flash crowd is everyone searching one breaking title, so
        // in-window hits on the hot article all share the title
        // structure — one key, maximum concentration. Everything else
        // follows the paper's structure mix.
        let structure = if crowd.in_window(qi) && rank == config.hot_rank {
            QueryStructure::Title
        } else {
            mix.sample(&mut rng)
        };
        let query = memo
            .entry((structure, target))
            .or_insert_with(|| structure.query_for(article))
            .clone();
        let outcome = user_search_buffered(
            &mut service,
            &query,
            &msds[target],
            files[target].as_str(),
            &mut path,
            &mut generalizations,
        );
        interactions += outcome.interactions as u64;
        if outcome.cache_hit {
            cache_hits += 1;
        }
        if outcome.error {
            errors += 1;
        }
        if !outcome.found {
            failed += 1;
        }
    }

    let split = service.dht();
    let loads = split.load();
    let nodes = split.inner().nodes();
    let ops_counts: Vec<u64> = nodes
        .iter()
        .map(|n| loads.get(n).map(NodeLoad::ops).unwrap_or(0))
        .collect();
    let gets: u64 = loads.values().map(|l| l.gets).sum();
    let puts: u64 = loads.values().map(|l| l.puts).sum();
    let byte_counts: Vec<u64> = split
        .inner()
        .storage_distribution()
        .iter()
        .map(|(_, _, bytes)| *bytes as u64)
        .collect();
    let (splits, pages_opened, promotions, reassembled_gets, mirror_reads) = split.balance_stats();
    CellResult {
        label: label.to_string(),
        ops: ImbalanceSummary::from_counts(&ops_counts, TOP_K),
        stored_bytes: ImbalanceSummary::from_counts(&byte_counts, TOP_K),
        gets,
        puts,
        interactions,
        cache_hits,
        errors,
        failed,
        splits,
        pages_opened,
        promotions,
        reassembled_gets,
        mirror_reads,
        split_keys: split.split_key_count(),
        hot_keys: split.hot_key_count(),
    }
}

/// Merges the scenario's `"hotspot": { … }` member into an existing
/// `BENCH_results.json` body (replacing any previous `"hotspot"` member),
/// or wraps it into a fresh document when there is none.
pub fn merge_bench_json(existing: Option<&str>, hotspot_member: &str) -> String {
    let fresh = || format!("{{\n  {hotspot_member}\n}}\n");
    let Some(existing) = existing else {
        return fresh();
    };
    let body = strip_member(existing, "\"hotspot\"");
    let Some(close) = body.rfind('}') else {
        return fresh();
    };
    let Some(open) = body.find('{') else {
        return fresh();
    };
    let inner = body[open + 1..close].trim();
    let comma = if inner.is_empty() { "" } else { "," };
    format!(
        "{}{comma}\n  {hotspot_member}\n}}\n",
        body[..close].trim_end()
    )
}

/// Removes `"name": { … }` (plus one adjacent comma) from a JSON object
/// body. Brace-scanning is enough here: every string this workspace's
/// emitters produce is brace-free.
fn strip_member(body: &str, name: &str) -> String {
    let Some(key) = body.find(name) else {
        return body.to_string();
    };
    let Some(open_rel) = body[key..].find('{') else {
        return body.to_string();
    };
    let open = key + open_rel;
    let mut depth = 0usize;
    let mut end = None;
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i + 1);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        return body.to_string();
    };
    // Swallow one neighbouring comma so the remaining members stay valid.
    let mut start = key;
    let mut stop = end;
    let after: String = body[end..]
        .chars()
        .take_while(|c| c.is_whitespace())
        .collect();
    if body[end..].trim_start().starts_with(',') {
        stop = end + after.len() + 1;
    } else {
        let before = body[..key].trim_end();
        if before.ends_with(',') {
            start = before.len() - 1;
        }
    }
    format!("{}{}", &body[..start], &body[stop..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HotspotConfig {
        HotspotConfig {
            nodes: 60,
            articles: 150,
            queries: 900,
            seed: 7,
            hot_rank: 3,
            window: (0.3, 0.8),
            boost: 1.0,
            page_budget: 256,
            hot_threshold: 16,
            fanout: 4,
            policy: CachePolicy::None,
            admission: 2,
            admission_cells: false,
        }
    }

    #[test]
    fn mitigation_reduces_query_phase_imbalance() {
        let report = run(&tiny());
        assert_eq!(report.baseline.failed, 0);
        assert_eq!(report.mitigated.failed, 0);
        // The observe-only cell never splits or promotes…
        assert_eq!(report.baseline.splits, 0);
        assert_eq!(report.baseline.promotions, 0);
        // …the mitigated cell does both…
        assert!(report.mitigated.splits > 0, "no entry ever split");
        assert!(report.mitigated.promotions > 0, "no key ever promoted");
        assert!(report.mitigated.mirror_reads > 0, "no read hit a mirror");
        // …and the flash crowd's peak flattens.
        assert!(
            report.mitigated.ops.max_over_mean < report.baseline.ops.max_over_mean,
            "max/mean {} (mitigated) !< {} (baseline)",
            report.mitigated.ops.max_over_mean,
            report.baseline.ops.max_over_mean
        );
        assert!(report.improved());
    }

    #[test]
    fn both_cells_feed_an_identical_query_stream() {
        // Same seed, same corpus: user-visible outcome counters that the
        // balance layer must not disturb are identical across cells.
        let report = run(&tiny());
        assert_eq!(report.baseline.errors, report.mitigated.errors);
        assert_eq!(report.baseline.failed, report.mitigated.failed);
    }

    #[test]
    fn admission_cells_protect_tight_caches() {
        // A sustained crowd over a mostly one-off tail: without gating,
        // tail queries churn the one-slot caches and evict the crowd's
        // shortcut between hits; with it, one-off keys never enter.
        let config = HotspotConfig {
            nodes: 20,
            articles: 4_000,
            queries: 4_000,
            window: (0.0, 1.0),
            boost: 0.4,
            admission: 2,
            admission_cells: true,
            ..tiny()
        };
        let report = run(&config);
        let off = report.admission_off.expect("pair requested");
        let on = report.admission_on.expect("pair requested");
        assert!(
            on.cache_hits > off.cache_hits,
            "admission lowered hits: {} <= {}",
            on.cache_hits,
            off.cache_hits
        );
    }

    #[test]
    fn json_member_carries_the_ci_keys() {
        let report = run(&tiny());
        let json = report.json_member();
        assert!(json.starts_with("\"hotspot\": {"));
        assert!(json.contains("\"improved\": "));
        assert!(json.contains("\"baseline\": {"));
        assert!(json.contains("\"max_over_mean\": "));
    }

    #[test]
    fn merge_into_missing_and_empty_documents() {
        let merged = merge_bench_json(None, "\"hotspot\": {\"x\": 1}");
        assert_eq!(merged, "{\n  \"hotspot\": {\"x\": 1}\n}\n");
        let merged = merge_bench_json(Some("{}\n"), "\"hotspot\": {\"x\": 1}");
        assert_eq!(merged, "{\n  \"hotspot\": {\"x\": 1}\n}\n");
    }

    #[test]
    fn merge_appends_after_existing_members() {
        let existing = "{\n  \"grid\": { \"cells\": 12 }\n}\n";
        let merged = merge_bench_json(Some(existing), "\"hotspot\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"grid\": { \"cells\": 12 },\n  \"hotspot\": {\"x\": 1}\n}\n"
        );
    }

    #[test]
    fn merge_replaces_a_previous_hotspot_member() {
        let existing =
            "{\n  \"grid\": { \"cells\": 12 },\n  \"hotspot\": {\"old\": {\"a\": 2}}\n}\n";
        let merged = merge_bench_json(Some(existing), "\"hotspot\": {\"x\": 1}");
        assert_eq!(
            merged,
            "{\n  \"grid\": { \"cells\": 12 },\n  \"hotspot\": {\"x\": 1}\n}\n"
        );
        // Hotspot-first documents keep their trailing members too.
        let existing = "{\n  \"hotspot\": {\"old\": 1},\n  \"net\": { \"rps\": 3 }\n}\n";
        let merged = merge_bench_json(Some(existing), "\"hotspot\": {\"x\": 1}");
        assert!(merged.contains("\"net\": { \"rps\": 3 }"));
        assert!(merged.contains("\"hotspot\": {\"x\": 1}"));
        assert!(!merged.contains("\"old\""));
    }

    #[test]
    fn window_indices_clamp_to_the_stream() {
        let config = HotspotConfig {
            window: (0.5, 1.5),
            ..tiny()
        };
        assert_eq!(config.window_indices(), (450, 900));
    }
}
