//! Named counters and fixed-bucket histograms behind a shareable handle.
//!
//! The registry has two states:
//!
//! * **disabled** (the [`Default`]) — every recording call is a no-op
//!   that costs one `Option` check; no allocation, no locking. This is
//!   what every instrumented component carries unless somebody turns
//!   metrics on, and it is why the paper CSVs are byte-identical with
//!   and without this crate in the build.
//! * **enabled** ([`MetricsRegistry::new`]) — counters and histograms
//!   accumulate under a mutex shared by every clone of the handle, so
//!   the index layer, the cache, and the DHT substrate all write into
//!   one place.
//!
//! [`MetricsRegistry::snapshot`] freezes the state into a
//! [`MetricsSnapshot`]: plain sorted vectors with `Eq`, JSON and CSV
//! renderings, and no interior mutability — the value the determinism
//! tests compare across `--jobs N`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Upper bounds of the histogram buckets: powers of two from 1 to
/// 65 536, plus an implicit `+Inf` bucket at the end.
///
/// Every histogram shares this layout so snapshots can be compared and
/// merged without bucket negotiation; the range covers everything the
/// simulator observes (hop counts, backoff milliseconds, result sizes).
pub const BUCKET_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// Number of buckets including the final `+Inf` bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket histogram (cumulative-free; each bucket counts the
/// observations `prev_bound < v <= bound`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts, in [`BUCKET_BOUNDS`] order with the `+Inf`
    /// bucket last.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shareable handle to a set of named counters and histograms.
///
/// Cloning the handle shares the underlying storage; the disabled
/// default shares nothing and records nothing. Names are dotted paths
/// by convention (`"dht.messages"`, `"cache.get.hit"`), which keeps
/// snapshots readable and lets tests assert identities between
/// subsystems that never see each other's code.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl MetricsRegistry {
    /// Creates an **enabled** registry that records everything.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// Creates a **disabled** registry: every call is a cheap no-op.
    /// Identical to [`Default`].
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// Whether this handle records anything. Callers use this to skip
    /// building labels or snapshotting stats on the disabled path.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the counter `name`. A delta of zero still
    /// creates the counter, so snapshots list every touched name.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("metrics registry poisoned");
            *inner.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("metrics registry poisoned");
            inner
                .histograms
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// Current value of the counter `name` (0 if never written or if
    /// the registry is disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => {
                let inner = inner.lock().expect("metrics registry poisoned");
                inner.counters.get(name).copied().unwrap_or(0)
            }
            None => 0,
        }
    }

    /// Freezes the current state into an immutable, comparable value.
    /// A disabled registry snapshots to the empty default.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => {
                let inner = inner.lock().expect("metrics registry poisoned");
                MetricsSnapshot {
                    counters: inner
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                    histograms: inner
                        .histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                }
            }
            None => MetricsSnapshot::default(),
        }
    }
}

/// An immutable, ordered, comparable snapshot of a registry.
///
/// Both vectors are sorted by name (inherited from the `BTreeMap`s), so
/// equal recordings produce byte-equal JSON/CSV regardless of the order
/// in which subsystems wrote their metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Sorted `(name, value)` counter pairs.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Sorted `(name, histogram)` pairs.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Value of counter `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// True when nothing was recorded (or the registry was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a deterministic JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, buckets: [...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {value}", json_string(name)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {}: {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
                json_string(name),
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Renders the snapshot as CSV rows:
    /// `counter,<name>,<value>` and `histogram,<name>,<le>,<count>`
    /// (one row per non-empty bucket, `inf` for the overflow bucket).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,le,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("counter,{name},,{value}\n"));
        }
        for (name, h) in &self.histograms {
            for (i, count) in h.buckets.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let le = BUCKET_BOUNDS
                    .get(i)
                    .map(u64::to_string)
                    .unwrap_or_else(|| "inf".to_string());
                out.push_str(&format!("histogram,{name},{le},{count}\n"));
            }
        }
        out
    }
}

/// Escapes a name for embedding in JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::default();
        assert!(!m.is_enabled());
        m.incr("a");
        m.add("b", 10);
        m.observe("h", 3);
        assert_eq!(m.counter("a"), 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.incr("x");
        m2.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m2.counter("x"), 5);
    }

    #[test]
    fn histogram_buckets_partition_the_range() {
        let mut h = Histogram::default();
        h.observe(0); // <= 1
        h.observe(1); // <= 1
        h.observe(2); // <= 2
        h.observe(3); // <= 4
        h.observe(65536); // last finite bucket
        h.observe(65537); // +Inf
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 3 + 65536 + 65537);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[BUCKET_COUNT - 2], 1);
        assert_eq!(h.buckets()[BUCKET_COUNT - 1], 1);
    }

    #[test]
    fn snapshots_are_sorted_and_comparable() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        // Write in different orders; snapshots must still be equal.
        a.incr("z.last");
        a.incr("a.first");
        a.observe("h", 7);
        b.observe("h", 7);
        b.incr("a.first");
        b.incr("z.last");
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa, sb);
        assert_eq!(sa.to_json(), sb.to_json());
        assert_eq!(sa.to_csv(), sb.to_csv());
        assert_eq!(sa.counters()[0].0, "a.first");
        assert_eq!(sa.counter("z.last"), 1);
        assert_eq!(sa.counter("missing"), 0);
    }

    #[test]
    fn json_and_csv_render_shapes() {
        let m = MetricsRegistry::new();
        m.add("c", 2);
        m.observe("h", 3);
        let s = m.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"c\": 2"));
        assert!(json.contains("\"count\": 1, \"sum\": 3"));
        let csv = s.to_csv();
        assert!(csv.starts_with("kind,name,le,value\n"));
        assert!(csv.contains("counter,c,,2\n"));
        assert!(csv.contains("histogram,h,4,1\n"));
    }

    #[test]
    fn zero_delta_still_creates_the_counter() {
        let m = MetricsRegistry::new();
        m.add("touched", 0);
        assert_eq!(m.snapshot().counters().len(), 1);
    }
}
