//! The traffic model: bytes exchanged per query and per cache update.
//!
//! Figure 12 of the paper reports "average network traffic (bytes)
//! generated per query", split into *normal* traffic (queries and their
//! responses — "traffic is mainly driven by responses, which usually
//! outnumber a single query") and *cache* traffic (messages that create
//! shortcut entries after successful lookups).
//!
//! The model here: every message carries a fixed header
//! ([`MESSAGE_HEADER_BYTES`]) plus its payload — the canonical query text
//! for requests, the wire-encoded entry list for responses, and
//! key + target for cache-creation messages.

use serde::{Deserialize, Serialize};

/// Fixed per-message overhead (addressing, framing) in bytes.
pub const MESSAGE_HEADER_BYTES: u64 = 20;

/// Accumulated traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Bytes of query and response messages.
    pub normal_bytes: u64,
    /// Bytes of cache-entry-creation messages.
    pub cache_bytes: u64,
    /// Total messages sent (queries, responses, and cache updates).
    pub messages: u64,
}

impl Traffic {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes, normal + cache.
    pub fn total_bytes(&self) -> u64 {
        self.normal_bytes + self.cache_bytes
    }

    /// Records a request/response exchange with the given payload sizes.
    pub(crate) fn record_exchange(&mut self, request_payload: u64, response_payload: u64) {
        self.normal_bytes += 2 * MESSAGE_HEADER_BYTES + request_payload + response_payload;
        self.messages += 2;
    }

    /// Records one cache-creation message with the given payload size.
    pub(crate) fn record_cache_update(&mut self, payload: u64) {
        self.cache_bytes += MESSAGE_HEADER_BYTES + payload;
        self.messages += 1;
    }

    /// The difference `self - earlier`, for per-query deltas.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters.
    #[must_use]
    pub fn since(&self, earlier: &Traffic) -> Traffic {
        debug_assert!(self.normal_bytes >= earlier.normal_bytes);
        Traffic {
            normal_bytes: self.normal_bytes - earlier.normal_bytes,
            cache_bytes: self.cache_bytes - earlier.cache_bytes,
            messages: self.messages - earlier.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_accounting() {
        let mut t = Traffic::new();
        t.record_exchange(30, 100);
        assert_eq!(t.normal_bytes, 2 * MESSAGE_HEADER_BYTES + 130);
        assert_eq!(t.cache_bytes, 0);
        assert_eq!(t.messages, 2);
    }

    #[test]
    fn cache_accounting() {
        let mut t = Traffic::new();
        t.record_cache_update(50);
        assert_eq!(t.cache_bytes, MESSAGE_HEADER_BYTES + 50);
        assert_eq!(t.normal_bytes, 0);
        assert_eq!(t.messages, 1);
    }

    #[test]
    fn totals_and_deltas() {
        let mut t = Traffic::new();
        t.record_exchange(10, 20);
        let snapshot = t;
        t.record_cache_update(5);
        t.record_exchange(1, 2);
        let delta = t.since(&snapshot);
        assert_eq!(delta.cache_bytes, MESSAGE_HEADER_BYTES + 5);
        assert_eq!(delta.normal_bytes, 2 * MESSAGE_HEADER_BYTES + 3);
        assert_eq!(delta.messages, 3);
        assert_eq!(t.total_bytes(), t.normal_bytes + t.cache_bytes);
    }
}
