//! The adaptive distributed cache: per-node shortcut stores.
//!
//! After a successful lookup, peers create *shortcut* entries — "direct
//! mappings between generic queries and the descriptor of the target file"
//! (§IV-C) — in the caches of index nodes traversed along the path. Later
//! users asking the same query jump straight to the file.
//!
//! [`CachePolicy`] selects the paper's three §V-D variants (plus no
//! caching); [`ShortcutCache`] is the per-node store with optional LRU
//! eviction.

use std::collections::HashMap;
use std::fmt;

use p2p_index_dht::Key;
use p2p_index_obs::MetricsRegistry;

use crate::target::IndexTarget;

/// Which shortcut-caching policy the system runs (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// No shortcuts are ever created.
    #[default]
    None,
    /// Shortcuts are created on *every* node along the lookup path;
    /// unbounded cache size.
    Multi,
    /// Shortcuts are created only on the *first* node contacted;
    /// unbounded cache size.
    Single,
    /// Like `Single`, but each node stores at most this many cached keys,
    /// evicting the least-recently-used entry when full.
    Lru(usize),
}

impl CachePolicy {
    /// The per-node capacity limit, if this policy has one.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            CachePolicy::Lru(k) => Some(*k),
            _ => None,
        }
    }

    /// Should shortcuts be created at all?
    pub fn caches(&self) -> bool {
        !matches!(self, CachePolicy::None)
    }

    /// Does this policy create shortcuts on every path node (true) or only
    /// on the first node contacted (false)?
    pub fn caches_whole_path(&self) -> bool {
        matches!(self, CachePolicy::Multi)
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CachePolicy::None => write!(f, "no-cache"),
            CachePolicy::Multi => write!(f, "multi-cache"),
            CachePolicy::Single => write!(f, "single-cache"),
            CachePolicy::Lru(k) => write!(f, "lru-{k}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    targets: Vec<IndexTarget>,
    last_used: u64,
}

/// One node's shortcut cache: query key `h(q)` → direct targets,
/// LRU-evicted when a capacity is set.
///
/// Slots are keyed by the query's memoized DHT key rather than the query
/// itself: the key is a 20-byte `Copy` value, so cache probes on the
/// lookup hot path never clone a query or re-render its canonical text.
///
/// A cached key may accumulate several targets (e.g. two popular articles
/// by the same author reached through the same broad query); they are
/// returned together, mirroring the multi-value semantics of regular index
/// entries.
#[derive(Debug, Clone, Default)]
pub struct ShortcutCache {
    slots: HashMap<Key, Slot>,
    capacity: Option<usize>,
    clock: u64,
    /// Admission gate: a key must be offered this many times before a
    /// slot is created for it (`0` admits immediately).
    admission_threshold: u32,
    /// Offers seen per not-yet-admitted key.
    sightings: HashMap<Key, u32>,
    metrics: MetricsRegistry,
}

impl ShortcutCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache holding at most `capacity` keys (LRU replacement).
    pub fn with_capacity(capacity: usize) -> Self {
        ShortcutCache {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// A cache configured for `policy` (unbounded unless the policy is LRU).
    pub fn for_policy(policy: CachePolicy) -> Self {
        match policy.capacity() {
            Some(k) => Self::with_capacity(k),
            None => Self::new(),
        }
    }

    /// Attaches a metrics registry recording the `cache.*` series
    /// (hits, misses, inserts, evictions, purges).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Builder-style [`set_metrics`](Self::set_metrics).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the admission threshold: a key must be offered to
    /// [`insert`](Self::insert) this many times before a slot is created
    /// for it. `0` (the default) admits on first offer — the paper's
    /// behavior. Under skewed load this keeps one-off queries from
    /// churning LRU caches while flash-crowd keys clear the bar within a
    /// few repeats. Keys already cached are unaffected.
    pub fn set_admission_threshold(&mut self, threshold: u32) {
        self.admission_threshold = threshold;
        if threshold == 0 {
            self.sightings.clear();
        }
    }

    /// The configured admission threshold.
    pub fn admission_threshold(&self) -> u32 {
        self.admission_threshold
    }

    /// Inserts a shortcut `h(query) → target`, *replacing* any previous
    /// shortcut under the same key.
    ///
    /// A shortcut is "a direct mapping between a generic query and the
    /// descriptor of the target file" (§IV-C) — one descriptor per cached
    /// key, so a popular broad query always points at the most recently
    /// confirmed target and responses stay small. Returns `true` if the
    /// cache changed (new key, or a different target than before).
    /// Inserting into a full LRU cache evicts the least-recently-used key
    /// first; a capacity of 0 stores nothing. When an admission threshold
    /// is set ([`set_admission_threshold`](Self::set_admission_threshold)),
    /// a new key is rejected until it has been offered that many times.
    pub fn insert(&mut self, key: Key, target: IndexTarget) -> bool {
        if self.capacity == Some(0) {
            return false;
        }
        self.clock += 1;
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.last_used = self.clock;
            if slot.targets.first() == Some(&target) {
                self.metrics.incr("cache.insert.unchanged");
                return false;
            }
            // Reuse the slot's buffer: replace-on-write is the cache's
            // steady state under popular queries, so it must not allocate.
            slot.targets.clear();
            slot.targets.push(target);
            self.metrics.incr("cache.insert.replaced");
            return true;
        }
        if self.admission_threshold > 0 {
            let seen = self.sightings.entry(key).or_insert(0);
            *seen += 1;
            if *seen < self.admission_threshold {
                self.metrics.incr("cache.admission.rejected");
                return false;
            }
            self.sightings.remove(&key);
            self.metrics.incr("cache.admission.admitted");
        }
        if let Some(cap) = self.capacity {
            while self.slots.len() >= cap {
                let evict = self
                    .slots
                    .iter()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(k, _)| *k)
                    .expect("cache is non-empty");
                self.slots.remove(&evict);
                self.metrics.incr("cache.evictions");
            }
        }
        self.slots.insert(
            key,
            Slot {
                targets: vec![target],
                last_used: self.clock,
            },
        );
        self.metrics.incr("cache.insert.created");
        true
    }

    /// Looks up the shortcuts for query key `key`, refreshing its LRU
    /// position.
    pub fn get(&mut self, key: &Key) -> Option<&[IndexTarget]> {
        self.clock += 1;
        let clock = self.clock;
        let hit = self.slots.get_mut(key).map(|slot| {
            slot.last_used = clock;
            slot.targets.as_slice()
        });
        self.metrics.incr(if hit.is_some() {
            "cache.get.hit"
        } else {
            "cache.get.miss"
        });
        hit
    }

    /// Looks up without touching recency (for inspection).
    pub fn peek(&self, key: &Key) -> Option<&[IndexTarget]> {
        self.slots.get(key).map(|s| s.targets.as_slice())
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no shortcuts are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Is the cache at its capacity limit (always `false` when unbounded)?
    pub fn is_full(&self) -> bool {
        matches!(self.capacity, Some(cap) if self.slots.len() >= cap)
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Removes every shortcut.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Removes `target` from every slot, dropping slots that become empty.
    /// Used to purge shortcuts that dangle after a file is unpublished.
    pub fn purge_target(&mut self, target: &IndexTarget) {
        let before = self.slots.len();
        self.slots.retain(|_, slot| {
            slot.targets.retain(|t| t != target);
            !slot.targets.is_empty()
        });
        self.metrics
            .add("cache.purged_slots", (before - self.slots.len()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Key {
        Key::hash_of(s)
    }

    fn file(name: &str) -> IndexTarget {
        IndexTarget::File(name.into())
    }

    #[test]
    fn insert_and_get() {
        let mut c = ShortcutCache::new();
        assert!(c.insert(q("/a/b"), file("f1")));
        assert_eq!(c.get(&q("/a/b")).unwrap(), &[file("f1")]);
        assert!(c.get(&q("/a/c")).is_none());
    }

    #[test]
    fn duplicate_target_not_added() {
        let mut c = ShortcutCache::new();
        assert!(c.insert(q("/a"), file("f")));
        assert!(!c.insert(q("/a"), file("f")));
        assert_eq!(c.get(&q("/a")).unwrap().len(), 1);
    }

    #[test]
    fn same_key_replaces_target() {
        let mut c = ShortcutCache::new();
        assert!(c.insert(q("/a"), file("f1")));
        assert!(c.insert(q("/a"), file("f2")));
        // Replace-on-write: the slot holds only the newest descriptor.
        assert_eq!(c.get(&q("/a")).unwrap(), &[file("f2")]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ShortcutCache::with_capacity(2);
        c.insert(q("/a"), file("fa"));
        c.insert(q("/b"), file("fb"));
        // Touch /a so /b becomes LRU.
        c.get(&q("/a"));
        c.insert(q("/c"), file("fc"));
        assert!(c.peek(&q("/a")).is_some());
        assert!(c.peek(&q("/b")).is_none(), "LRU key should be evicted");
        assert!(c.peek(&q("/c")).is_some());
        assert_eq!(c.len(), 2);
        assert!(c.is_full());
    }

    #[test]
    fn lru_insert_refreshes_recency() {
        let mut c = ShortcutCache::with_capacity(2);
        c.insert(q("/a"), file("fa"));
        c.insert(q("/b"), file("fb"));
        // Re-inserting /a (new target) refreshes it; /b is evicted next.
        c.insert(q("/a"), file("fa2"));
        c.insert(q("/c"), file("fc"));
        assert!(c.peek(&q("/a")).is_some());
        assert!(c.peek(&q("/b")).is_none());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = ShortcutCache::with_capacity(0);
        assert!(!c.insert(q("/a"), file("f")));
        assert!(c.is_empty());
    }

    #[test]
    fn unbounded_never_full() {
        let mut c = ShortcutCache::new();
        for i in 0..100 {
            c.insert(q(&format!("/a/n{i}")), file("f"));
        }
        assert_eq!(c.len(), 100);
        assert!(!c.is_full());
        assert_eq!(c.capacity(), None);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn for_policy_configures_capacity() {
        assert_eq!(
            ShortcutCache::for_policy(CachePolicy::Lru(10)).capacity(),
            Some(10)
        );
        assert_eq!(
            ShortcutCache::for_policy(CachePolicy::Single).capacity(),
            None
        );
        assert_eq!(
            ShortcutCache::for_policy(CachePolicy::Multi).capacity(),
            None
        );
    }

    #[test]
    fn policy_helpers() {
        assert!(!CachePolicy::None.caches());
        assert!(CachePolicy::Multi.caches());
        assert!(CachePolicy::Multi.caches_whole_path());
        assert!(!CachePolicy::Single.caches_whole_path());
        assert_eq!(CachePolicy::Lru(30).capacity(), Some(30));
        assert_eq!(CachePolicy::Lru(30).to_string(), "lru-30");
        assert_eq!(CachePolicy::None.to_string(), "no-cache");
        assert_eq!(CachePolicy::default(), CachePolicy::None);
    }

    #[test]
    fn admission_threshold_gates_new_keys() {
        let mut c = ShortcutCache::new();
        c.set_admission_threshold(3);
        assert_eq!(c.admission_threshold(), 3);
        assert!(!c.insert(q("/a"), file("f")), "offer 1 rejected");
        assert!(!c.insert(q("/a"), file("f")), "offer 2 rejected");
        assert!(c.insert(q("/a"), file("f")), "offer 3 admitted");
        assert_eq!(c.get(&q("/a")).unwrap(), &[file("f")]);
        // Once admitted, the slot behaves normally (replace-on-write).
        assert!(c.insert(q("/a"), file("g")));
        assert_eq!(c.get(&q("/a")).unwrap(), &[file("g")]);
    }

    #[test]
    fn admission_protects_lru_from_one_off_keys() {
        let mut c = ShortcutCache::with_capacity(1);
        c.set_admission_threshold(2);
        c.insert(q("/hot"), file("f"));
        c.insert(q("/hot"), file("f"));
        assert!(c.peek(&q("/hot")).is_some(), "repeated key admitted");
        // A parade of one-off keys never gets in, so the hot key stays.
        for i in 0..50 {
            assert!(!c.insert(q(&format!("/one-off/{i}")), file("f")));
        }
        assert!(c.peek(&q("/hot")).is_some());
    }

    #[test]
    fn zero_threshold_restores_immediate_admission() {
        let mut c = ShortcutCache::new();
        c.set_admission_threshold(5);
        assert!(!c.insert(q("/a"), file("f")));
        c.set_admission_threshold(0);
        assert!(c.insert(q("/a"), file("f")), "gate removed");
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut c = ShortcutCache::with_capacity(2);
        c.insert(q("/a"), file("fa"));
        c.insert(q("/b"), file("fb"));
        // Peeking /a must NOT protect it: /a stays LRU and is evicted.
        c.peek(&q("/a"));
        c.insert(q("/c"), file("fc"));
        assert!(c.peek(&q("/a")).is_none());
        assert!(c.peek(&q("/b")).is_some());
    }
}
