//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `substrate_independence` — the paper claims index metrics do not
//!   depend on the DHT substrate (§V-A). We run identical workloads over
//!   the consistent-hash ring and the full Chord protocol and print both
//!   metric sets: interactions/traffic/errors coincide, only routing cost
//!   differs.
//! * `hierarchy_depth` — deeper hierarchies (Fig. 4 vs flat) trade
//!   interactions for result-set size (§IV-B).
//! * `cache_capacity_sweep` — hit ratio and interactions across LRU
//!   capacities beyond the paper's {10, 20, 30}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_index_core::{CachePolicy, IndexService, SimpleScheme};
use p2p_index_dht::{ChordNetwork, Dht, Key, RingDht};
use p2p_index_sim::simulation::{user_search, SchemeChoice, SimConfig, Simulation};
use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};
use p2p_index_xpath::Query;
use std::hint::black_box;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        articles: 200,
        author_pool: 50,
        ..CorpusConfig::default()
    })
}

/// Runs the user-model workload over an arbitrary substrate and returns
/// (interactions, errors, found).
fn run_workload<D: Dht>(
    service: &mut IndexService<D>,
    corpus: &Corpus,
    queries: usize,
) -> (u64, u64, u64)
where
    IndexService<D>: SubstrateSearch,
{
    let mut generator = QueryGenerator::new(corpus, StructureMix::paper_simulation(), 9);
    let mut interactions = 0u64;
    let mut errors = 0u64;
    let mut found = 0u64;
    for _ in 0..queries {
        let item = generator.next_query();
        let article = corpus.article(item.target).expect("valid target");
        let msd = Query::most_specific(&article.descriptor());
        let (i, e, f) = service.run_one(&item.query, &msd, &article.file_name());
        interactions += i;
        errors += e;
        found += f;
    }
    (interactions, errors, found)
}

/// Object-safe adapter so the generic workload runs on both substrates
/// (`user_search` in the sim crate is written against `RingDht`; Chord
/// goes through the service's own automated search, which exercises the
/// same index paths).
trait SubstrateSearch {
    fn run_one(&mut self, query: &Query, msd: &Query, file: &str) -> (u64, u64, u64);
}

impl SubstrateSearch for IndexService<RingDht> {
    fn run_one(&mut self, query: &Query, msd: &Query, file: &str) -> (u64, u64, u64) {
        let out = user_search(self, query, msd, file);
        (out.interactions as u64, out.error as u64, out.found as u64)
    }
}

impl SubstrateSearch for IndexService<ChordNetwork> {
    fn run_one(&mut self, query: &Query, _msd: &Query, file: &str) -> (u64, u64, u64) {
        let report = self.search(query).expect("search succeeds");
        let found = report.files.iter().any(|h| h.file == file);
        (
            report.interactions as u64,
            report.generalized() as u64,
            found as u64,
        )
    }
}

fn substrate_independence(c: &mut Criterion) {
    let corpus = corpus();
    let ids: Vec<Key> = (0..40)
        .map(|i| Key::hash_of(&format!("node-{i}")))
        .collect();

    let mut over_ring = IndexService::new(RingDht::from_ids(ids.clone()), CachePolicy::None);
    let mut over_chord =
        IndexService::new(ChordNetwork::with_perfect_tables(ids), CachePolicy::None);
    for a in corpus.articles() {
        over_ring
            .publish(&a.descriptor(), a.file_name(), &SimpleScheme)
            .unwrap();
        over_chord
            .publish(&a.descriptor(), a.file_name(), &SimpleScheme)
            .unwrap();
    }

    let (_, ring_err, ring_found) = run_workload(&mut over_ring, &corpus, 500);
    let (_, chord_err, chord_found) = run_workload(&mut over_chord, &corpus, 500);
    let chord_stats = over_chord.dht().stats();
    println!("== ablation: substrate independence (500 queries) ==");
    println!("ring : errors {ring_err}, found {ring_found}, routing hops n/a (direct)");
    println!(
        "chord: errors {chord_err}, found {chord_found}, mean routing hops {:.2}",
        chord_stats.mean_hops()
    );
    assert_eq!(ring_found, 500, "every ring query must locate its target");
    assert_eq!(chord_found, 500, "every chord query must locate its target");

    let mut g = c.benchmark_group("ablation/substrate");
    g.sample_size(10);
    g.bench_function("ring_500q", |b| {
        b.iter(|| black_box(run_workload(&mut over_ring, &corpus, 100)))
    });
    g.bench_function("chord_500q", |b| {
        b.iter(|| black_box(run_workload(&mut over_chord, &corpus, 100)))
    });
    g.finish();
}

fn hierarchy_depth(c: &mut Criterion) {
    println!("== ablation: hierarchy depth (interactions vs. traffic) ==");
    let mut g = c.benchmark_group("ablation/hierarchy_depth");
    g.sample_size(10);
    for scheme in [
        SchemeChoice::Flat,
        SchemeChoice::Simple,
        SchemeChoice::Complex,
        SchemeChoice::Fig4,
    ] {
        let metrics = Simulation::run(SimConfig {
            nodes: 40,
            articles: 200,
            queries: 1_000,
            scheme,
            policy: CachePolicy::None,
            mix: StructureMix::paper_simulation(),
            seed: 42,
        });
        println!(
            "{:8} interactions/query {:.2}, normal bytes/query {:.0}",
            metrics.scheme,
            metrics.mean_interactions(),
            metrics.normal_bytes_per_query()
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(metrics.scheme.clone()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    black_box(Simulation::run(SimConfig {
                        nodes: 40,
                        articles: 200,
                        queries: 200,
                        scheme,
                        policy: CachePolicy::None,
                        mix: StructureMix::paper_simulation(),
                        seed: 42,
                    }))
                })
            },
        );
    }
    g.finish();
}

fn cache_capacity_sweep(c: &mut Criterion) {
    println!("== ablation: LRU capacity sweep ==");
    let mut g = c.benchmark_group("ablation/lru_capacity");
    g.sample_size(10);
    for capacity in [5usize, 10, 20, 30, 50, 80] {
        let metrics = Simulation::run(SimConfig {
            nodes: 40,
            articles: 200,
            queries: 1_000,
            scheme: SchemeChoice::Simple,
            policy: CachePolicy::Lru(capacity),
            mix: StructureMix::paper_simulation(),
            seed: 42,
        });
        println!(
            "lru-{capacity:<3} hit ratio {:.1}%, interactions/query {:.2}",
            metrics.hit_ratio() * 100.0,
            metrics.mean_interactions()
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    black_box(Simulation::run(SimConfig {
                        nodes: 40,
                        articles: 200,
                        queries: 200,
                        scheme: SchemeChoice::Simple,
                        policy: CachePolicy::Lru(cap),
                        mix: StructureMix::paper_simulation(),
                        seed: 42,
                    }))
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = substrate_independence, hierarchy_depth, cache_capacity_sweep,
}
criterion_main!(benches);
