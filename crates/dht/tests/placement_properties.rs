//! Property tests for successor-list replica placement.
//!
//! `placement::replica_keys` is the one function the networked client's
//! routing, the server's write fan-out, and the anti-entropy repair pass
//! all call — so its invariants are cluster-correctness invariants:
//!
//! * **Deterministic** — same ring, key, and factor always place
//!   identically (no hidden state), which is what lets client and
//!   servers compute placement independently and agree.
//! * **Distinct** — a key is never assigned twice to one node; the set
//!   is exactly `replicas.clamp(1, n)` members.
//! * **Contiguous** — the set is the clockwise successor followed by
//!   the next distinct successors, validated against an independent
//!   linear-scan oracle (the implementation routes through a binary
//!   search, so the oracle is a genuinely different derivation).
//!
//! Each property has a deterministic companion driven by a seeded
//! [`SplitMix64`] sequence, so the invariants are exercised on every
//! test run even where proptest is unavailable, and with a pinned
//! `PROPTEST_RNG_SEED` in CI.

use p2p_index_dht::placement::{replica_keys, successor_index};
use p2p_index_dht::{Key, SplitMix64};
use proptest::prelude::*;

/// Builds a valid placement ring (sorted ascending, deduplicated) from
/// arbitrary key material.
fn ring_from(mut keys: Vec<Key>) -> Vec<Key> {
    keys.sort();
    keys.dedup();
    keys
}

/// Independent oracle: find the successor by linear scan and walk the
/// sorted ring clockwise. No `partition_point`, no shared code with the
/// implementation under test.
fn naive_replica_set(ring: &[Key], key: &Key, replicas: usize) -> Vec<Key> {
    if ring.is_empty() {
        return Vec::new();
    }
    let first = ring.iter().position(|node| node >= key).unwrap_or(0);
    let count = replicas.clamp(1, ring.len());
    (0..count).map(|k| ring[(first + k) % ring.len()]).collect()
}

/// Asserts every placement invariant for one `(ring, key, replicas)`
/// triple. Shared by the proptest properties and the deterministic
/// companions.
fn check_placement(ring: &[Key], key: &Key, replicas: usize) {
    let set = replica_keys(ring, key, replicas);
    if ring.is_empty() {
        assert!(set.is_empty(), "an empty ring places nowhere");
        assert_eq!(successor_index(ring, key), None);
        return;
    }
    // Deterministic: placement is a pure function of its inputs.
    assert_eq!(
        set,
        replica_keys(ring, key, replicas),
        "placement must be deterministic"
    );
    // Exactly clamp(1, n) members — never zero, never more than the ring.
    assert_eq!(set.len(), replicas.clamp(1, ring.len()));
    // The primary is the clockwise successor.
    let first = successor_index(ring, key).expect("non-empty ring has a successor");
    assert_eq!(set[0], ring[first], "primary must be the successor");
    // Agrees with the independent linear-scan oracle — the property that
    // keeps client routing and server repair interchangeable.
    assert_eq!(
        set,
        naive_replica_set(ring, key, replicas),
        "binary-search placement diverged from the linear oracle"
    );
    // No node is assigned the same key twice.
    let mut dedup = set.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), set.len(), "a node appeared twice in one set");
    // Contiguous: each member is the ring-successor of the previous one,
    // and every member is a real ring node.
    for (k, member) in set.iter().enumerate() {
        assert_eq!(
            *member,
            ring[(first + k) % ring.len()],
            "replica set must walk contiguous clockwise successors"
        );
    }
}

fn rng_key(rng: &mut SplitMix64) -> Key {
    let mut digest = [0u8; 20];
    for chunk in digest.chunks_mut(8) {
        let word = rng.next_u64().to_be_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
    Key::from_digest(digest)
}

proptest! {
    /// Every invariant holds for arbitrary rings, keys, and factors —
    /// including degenerate factors (0, larger than the ring) and the
    /// empty ring.
    #[test]
    fn prop_placement_invariants(
        digests in proptest::collection::vec(proptest::array::uniform20(any::<u8>()), 0..32),
        key_digest in proptest::array::uniform20(any::<u8>()),
        replicas in 0usize..12,
    ) {
        let ring = ring_from(digests.into_iter().map(Key::from_digest).collect());
        check_placement(&ring, &Key::from_digest(key_digest), replicas);
    }

    /// Placing a ring member's own key starts the set at that member:
    /// the successor interval is `(pred, self]`, so every node is the
    /// primary for its own identifier.
    #[test]
    fn prop_own_key_is_own_primary(
        digests in proptest::collection::vec(proptest::array::uniform20(any::<u8>()), 1..24),
        pick in any::<prop::sample::Index>(),
        replicas in 1usize..6,
    ) {
        let ring = ring_from(digests.into_iter().map(Key::from_digest).collect());
        let member = ring[pick.index(ring.len())];
        let set = replica_keys(&ring, &member, replicas);
        prop_assert_eq!(set[0], member);
    }
}

/// Deterministic companion to [`prop_placement_invariants`]: 300 seeded
/// `(ring, key, replicas)` triples through the same checks.
#[test]
fn placement_invariants_hold_for_seeded_rings() {
    let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
    for round in 0..300usize {
        let n = (rng.next_u64() % 33) as usize;
        let ring = ring_from((0..n).map(|_| rng_key(&mut rng)).collect());
        let key = rng_key(&mut rng);
        let replicas = (rng.next_u64() % 12) as usize;
        check_placement(&ring, &key, replicas);
        // Ring members' own keys, every few rounds.
        if !ring.is_empty() && round % 3 == 0 {
            let member = ring[(rng.next_u64() as usize) % ring.len()];
            assert_eq!(replica_keys(&ring, &member, 3)[0], member);
        }
    }
}

/// Deterministic companion pinning exact sets for the standard named
/// ring, so a placement change can never hide behind oracle agreement:
/// these are the literal assignments every cluster component computes
/// for `node-0..4`.
#[test]
fn named_ring_placement_is_pinned() {
    let ring = ring_from((0..5).map(|i| Key::hash_of(&format!("node-{i}"))).collect());
    let key = Key::hash_of("pinned-placement-probe");
    let set = replica_keys(&ring, &key, 3);
    let first = successor_index(&ring, &key).expect("non-empty ring");
    assert_eq!(
        set,
        vec![ring[first], ring[(first + 1) % 5], ring[(first + 2) % 5]]
    );
    // Full-ring factor covers every node exactly once, rotated to the
    // successor.
    let all = replica_keys(&ring, &key, 5);
    let mut sorted_all = all.clone();
    sorted_all.sort();
    assert_eq!(sorted_all, ring);
    assert_eq!(all[0], ring[first]);
}
