//! Popularity models: who gets asked for, how often.
//!
//! The paper observes (Fig. 9) that author and article popularities in the
//! BibFinder/NetBib/CiteSeer traces "follow roughly a power-law", fits the
//! BibFinder author probabilities, and derives for its finite population of
//! 10 000 articles the complementary cumulative distribution function
//!
//! ```text
//! F̄(i) = 1 − F(i) = 1 − 0.063 · i^0.3        (Fig. 10)
//! ```
//!
//! [`PaperCcdf`] is exactly that fitted model with inverse-CDF sampling;
//! [`ZipfPopularity`] is the generic ranked power law used for Fig. 9
//! series and for the papers-per-author skew.

use rand::rngs::StdRng;
use rand::Rng;

/// The paper's fitted article-ranking distribution,
/// `F(i) = 0.063 · i^0.3` over ranks `1..=n`.
///
/// With the paper's `n = 10 000`, `F(n) ≈ 0.9986`; the residual mass is
/// assigned to the last rank so sampling is exact.
///
/// # Examples
///
/// ```
/// use p2p_index_workload::PaperCcdf;
///
/// let model = PaperCcdf::new(10_000);
/// // Skew: ~6.3% of all requests go to the single most popular article...
/// assert!((model.cdf(1) - 0.063).abs() < 1e-9);
/// // ...and the CCDF of Figure 10 decays towards 0 at the tail.
/// assert!(model.ccdf(10_000) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCcdf {
    n: usize,
    coefficient: f64,
    exponent: f64,
}

impl PaperCcdf {
    /// The paper's fitted constants.
    pub const COEFFICIENT: f64 = 0.063;
    /// The paper's fitted exponent.
    pub const EXPONENT: f64 = 0.3;

    /// The model over ranks `1..=n` with the paper's constants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> PaperCcdf {
        Self::with_parameters(n, Self::COEFFICIENT, Self::EXPONENT)
    }

    /// A power-law CDF `F(i) = k·i^e` with custom constants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the parameters are non-positive.
    pub fn with_parameters(n: usize, coefficient: f64, exponent: f64) -> PaperCcdf {
        assert!(n > 0, "population must be non-empty");
        assert!(
            coefficient > 0.0 && exponent > 0.0,
            "parameters must be positive"
        );
        PaperCcdf {
            n,
            coefficient,
            exponent,
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `F(i)`: probability that a request hits rank ≤ `i` (clamped to 1).
    pub fn cdf(&self, rank: usize) -> f64 {
        if rank >= self.n {
            return 1.0;
        }
        (self.coefficient * (rank as f64).powf(self.exponent)).min(1.0)
    }

    /// `F̄(i) = 1 − F(i)`: the Fig. 10 curve.
    pub fn ccdf(&self, rank: usize) -> f64 {
        1.0 - self.cdf(rank)
    }

    /// Probability mass of exactly rank `i` (1-based).
    pub fn prob(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.n {
            return 0.0;
        }
        self.cdf(rank) - self.cdf(rank - 1)
    }

    /// Samples a rank in `1..=n` by inverting the CDF:
    /// `i = (u / k)^(1/e)`, rounded up and clamped.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        let raw = (u / self.coefficient).powf(1.0 / self.exponent);
        (raw.ceil() as usize).clamp(1, self.n)
    }
}

/// A flash crowd layered over a base popularity model.
///
/// Outside the crowd window, [`FlashCrowd::sample_at`] delegates to the
/// base [`PaperCcdf`]. Inside the window — a contiguous span of the
/// query sequence, mirroring a sudden news-driven spike — each query
/// redirects to the single hot rank with probability `boost`, and
/// otherwise still follows the base model. This is the scripted spike of
/// the `repro hotspot` scenario.
///
/// # Examples
///
/// ```
/// use p2p_index_workload::FlashCrowd;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Queries 100..200 of the run send 90% of traffic to rank 7.
/// let crowd = FlashCrowd::new(10_000, 7, 100, 200, 0.9);
/// let mut rng = StdRng::seed_from_u64(1);
/// let hot = (100..200)
///     .filter(|&i| crowd.sample_at(i, &mut rng) == 7)
///     .count();
/// assert!(hot > 80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    base: PaperCcdf,
    hot_rank: usize,
    window_start: usize,
    window_end: usize,
    boost: f64,
}

impl FlashCrowd {
    /// A flash crowd on `hot_rank` (1-based) during queries
    /// `window_start..window_end` of the run, redirecting each in-window
    /// query to the hot rank with probability `boost`. The base model is
    /// the paper's [`PaperCcdf`] over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `hot_rank` is out of `1..=n`, or `boost` is
    /// outside `[0, 1]`.
    pub fn new(
        n: usize,
        hot_rank: usize,
        window_start: usize,
        window_end: usize,
        boost: f64,
    ) -> FlashCrowd {
        assert!(
            (1..=n).contains(&hot_rank),
            "hot rank must be within the population"
        );
        assert!((0.0..=1.0).contains(&boost), "boost must be in [0, 1]");
        FlashCrowd {
            base: PaperCcdf::new(n),
            hot_rank,
            window_start,
            window_end,
            boost,
        }
    }

    /// The spiked rank (1-based).
    pub fn hot_rank(&self) -> usize {
        self.hot_rank
    }

    /// The crowd window as `(start, end)` query indices.
    pub fn window(&self) -> (usize, usize) {
        (self.window_start, self.window_end)
    }

    /// `true` if query number `query_index` falls inside the crowd window.
    pub fn in_window(&self, query_index: usize) -> bool {
        (self.window_start..self.window_end).contains(&query_index)
    }

    /// Samples the rank (1-based) targeted by query number `query_index`.
    pub fn sample_at(&self, query_index: usize, rng: &mut StdRng) -> usize {
        if self.in_window(query_index) && rng.gen::<f64>() < self.boost {
            return self.hot_rank;
        }
        self.base.sample(rng)
    }
}

/// Classic ranked Zipf popularity: `p_i ∝ 1/i^alpha` over `n` ranks.
///
/// Used for the Fig. 9 author/title popularity series and anywhere a
/// generic skewed choice is needed.
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    cdf: Vec<f64>,
    alpha: f64,
}

impl ZipfPopularity {
    /// Builds the distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> ZipfPopularity {
        assert!(n > 0, "population must be non-empty");
        ZipfPopularity {
            cdf: crate::corpus::zipf_cdf(n, alpha),
            alpha,
        }
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i` (1-based).
    pub fn prob(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }

    /// Samples a 0-based rank index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        crate::corpus::sample_cdf(&self.cdf, rng)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn paper_constants_reach_one_at_population_edge() {
        let m = PaperCcdf::new(10_000);
        // F(10000) = 0.063 * 10000^0.3 ≈ 0.9986: the paper's remark that
        // "using only 10,000 articles does not change significantly the
        // behavior of the model".
        let f = 0.063f64 * 10_000f64.powf(0.3);
        assert!((f - 0.9986).abs() < 1e-3);
        assert_eq!(m.cdf(10_000), 1.0);
        assert_eq!(m.ccdf(10_000), 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let m = PaperCcdf::new(1000);
        for i in 1..1000 {
            assert!(m.cdf(i) <= m.cdf(i + 1), "rank {i}");
        }
    }

    #[test]
    fn probs_sum_to_one() {
        let m = PaperCcdf::new(500);
        let sum: f64 = (1..=500).map(|i| m.prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(m.prob(0), 0.0);
        assert_eq!(m.prob(501), 0.0);
    }

    #[test]
    fn sampling_matches_cdf() {
        let m = PaperCcdf::new(10_000);
        let mut rng = StdRng::seed_from_u64(99);
        let samples = 200_000;
        let mut top1 = 0usize;
        let mut top100 = 0usize;
        for _ in 0..samples {
            let r = m.sample(&mut rng);
            assert!((1..=10_000).contains(&r));
            if r == 1 {
                top1 += 1;
            }
            if r <= 100 {
                top100 += 1;
            }
        }
        let f1 = top1 as f64 / samples as f64;
        let f100 = top100 as f64 / samples as f64;
        assert!(
            (f1 - m.cdf(1)).abs() < 0.01,
            "P(rank 1) ≈ {f1}, want {}",
            m.cdf(1)
        );
        assert!((f100 - m.cdf(100)).abs() < 0.01, "P(rank ≤ 100) ≈ {f100}");
    }

    #[test]
    fn skew_a_few_articles_dominate() {
        // "A few articles appear in many queries".
        let m = PaperCcdf::new(10_000);
        assert!(
            m.cdf(100) > 0.24,
            "top 1% of articles draw ≥ 24% of requests"
        );
    }

    #[test]
    fn zipf_probs_decrease_with_rank() {
        let z = ZipfPopularity::new(100, 1.0);
        assert!(z.prob(1) > z.prob(2));
        assert!(z.prob(2) > z.prob(50));
        let sum: f64 = (1..=100).map(|i| z.prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.alpha(), 1.0);
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn zipf_sampling_is_skewed() {
        let z = ZipfPopularity::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits0 = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) == 0 {
                hits0 += 1;
            }
        }
        // p(rank 1) = 1/H(1000) ≈ 0.133.
        assert!(hits0 > 800 && hits0 < 1900, "rank-0 hits {hits0}");
    }

    #[test]
    fn zipf_loglog_is_roughly_linear() {
        // The Fig. 9 shape check: log(prob) vs log(rank) has ~constant slope.
        let z = ZipfPopularity::new(10_000, 0.8);
        let s1 = (z.prob(10).ln() - z.prob(1).ln()) / (10f64.ln() - 1f64.ln());
        let s2 = (z.prob(1000).ln() - z.prob(100).ln()) / (1000f64.ln() - 100f64.ln());
        assert!((s1 - s2).abs() < 0.05, "slopes {s1} vs {s2}");
        assert!((s1 + 0.8).abs() < 0.1, "slope should be ≈ -alpha");
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn empty_population_panics() {
        let _ = PaperCcdf::new(0);
    }

    #[test]
    fn flash_crowd_spikes_only_inside_window() {
        let crowd = FlashCrowd::new(1000, 3, 500, 700, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        // boost = 1.0: every in-window query hits the hot rank.
        for i in 500..700 {
            assert_eq!(crowd.sample_at(i, &mut rng), 3);
        }
        // Outside the window the base CCDF drives: rank 3 gets a few
        // percent of queries, not all of them.
        let hot_outside = (0..500)
            .filter(|&i| crowd.sample_at(i, &mut rng) == 3)
            .count();
        assert!(hot_outside < 100, "rank 3 drew {hot_outside}/500 outside");
        assert!(crowd.in_window(500) && !crowd.in_window(700));
        assert_eq!(crowd.hot_rank(), 3);
        assert_eq!(crowd.window(), (500, 700));
    }

    #[test]
    fn flash_crowd_partial_boost_mixes_with_base() {
        let crowd = FlashCrowd::new(10_000, 1, 0, 10_000, 0.5);
        let mut rng = StdRng::seed_from_u64(23);
        let hot = (0..10_000)
            .filter(|&i| crowd.sample_at(i, &mut rng) == 1)
            .count();
        // ≈ boost + (1-boost)·F(1) ≈ 0.53 of queries.
        assert!((4_800..6_000).contains(&hot), "hot draws {hot}/10000");
    }

    #[test]
    #[should_panic(expected = "hot rank must be within the population")]
    fn flash_crowd_rejects_out_of_range_rank() {
        let _ = FlashCrowd::new(10, 11, 0, 5, 0.5);
    }

    #[test]
    fn custom_parameters() {
        let m = PaperCcdf::with_parameters(100, 0.1, 0.5);
        assert!((m.cdf(1) - 0.1).abs() < 1e-12);
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
    }
}
