//! A span tree recording one operation end-to-end.
//!
//! A [`Trace`] is a tree of [`Span`]s: each span has a label, a list of
//! point-in-time events, and child spans. The index layer opens a span
//! per search and per lookup step, and drops events for every DHT
//! operation, retry, backoff, cache probe, and generalization along the
//! way — so `repro trace <query>` can show exactly where a lookup went.
//!
//! Recording is strictly deterministic: no wall-clock timestamps, no
//! thread ids — only what happened and in which order. That makes
//! traces comparable in tests (span counts are asserted against
//! `SearchReport` accounting in the invariant suite).

/// One entry recorded inside a span, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanItem {
    /// A point-in-time event.
    Event(String),
    /// A nested span, pushed when it closes.
    Child(Span),
}

/// One node of a trace tree: a label plus events and child spans,
/// interleaved in the order they were recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// What this span covers, e.g. `"lookup /article/conf/X"`.
    pub label: String,
    /// Events and nested spans, in chronological order.
    pub items: Vec<SpanItem>,
}

impl Span {
    fn new(label: String) -> Self {
        Span {
            label,
            items: Vec::new(),
        }
    }

    /// The point events of this span, in order.
    pub fn events(&self) -> impl Iterator<Item = &str> {
        self.items.iter().filter_map(|item| match item {
            SpanItem::Event(e) => Some(e.as_str()),
            SpanItem::Child(_) => None,
        })
    }

    /// The nested spans, in the order they were opened.
    pub fn children(&self) -> impl Iterator<Item = &Span> {
        self.items.iter().filter_map(|item| match item {
            SpanItem::Child(c) => Some(c),
            SpanItem::Event(_) => None,
        })
    }

    /// Number of spans in this subtree (including `self`) whose label
    /// starts with `prefix`.
    pub fn count_spans(&self, prefix: &str) -> usize {
        usize::from(self.label.starts_with(prefix))
            + self
                .children()
                .map(|c| c.count_spans(prefix))
                .sum::<usize>()
    }

    /// Number of events in this subtree whose text starts with `prefix`.
    pub fn count_events(&self, prefix: &str) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                SpanItem::Event(e) => usize::from(e.starts_with(prefix)),
                SpanItem::Child(c) => c.count_events(prefix),
            })
            .sum()
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{}\n", self.label));
        for item in &self.items {
            match item {
                SpanItem::Event(event) => out.push_str(&format!("{indent}  - {event}\n")),
                SpanItem::Child(child) => child.render_into(out, depth + 1),
            }
        }
    }
}

/// A finished trace: the root span of the recorded tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The outermost span (usually one `search <query>`).
    pub root: Span,
}

impl Trace {
    /// Pretty-prints the tree, two-space indented, events as `- ` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out
    }

    /// Counts spans whose label starts with `prefix` (see
    /// [`Span::count_spans`]).
    pub fn count_spans(&self, prefix: &str) -> usize {
        self.root.count_spans(prefix)
    }

    /// Counts events whose text starts with `prefix`.
    pub fn count_events(&self, prefix: &str) -> usize {
        self.root.count_events(prefix)
    }
}

/// Builds a [`Trace`] incrementally with an open/event/close protocol.
///
/// The recorder keeps a stack of open spans; `open` pushes a child,
/// `close` pops it into its parent, and `finish` closes everything that
/// is still open and returns the tree. Closing more often than opening
/// is a no-op at the root, so instrumentation bugs degrade gracefully
/// instead of panicking mid-search.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    stack: Vec<Span>,
}

impl TraceRecorder {
    /// Starts recording with a root span labelled `label`.
    pub fn new(label: impl Into<String>) -> Self {
        TraceRecorder {
            stack: vec![Span::new(label.into())],
        }
    }

    /// Opens a child span; subsequent events/opens nest inside it.
    pub fn open(&mut self, label: impl Into<String>) {
        self.stack.push(Span::new(label.into()));
    }

    /// Records a point event in the innermost open span.
    pub fn event(&mut self, text: impl Into<String>) {
        if let Some(span) = self.stack.last_mut() {
            span.items.push(SpanItem::Event(text.into()));
        }
    }

    /// Closes the innermost open span (no-op if only the root is open).
    pub fn close(&mut self) {
        if self.stack.len() > 1 {
            let span = self.stack.pop().expect("stack len checked above");
            self.stack
                .last_mut()
                .expect("root remains after pop")
                .items
                .push(SpanItem::Child(span));
        }
    }

    /// Closes any still-open spans and returns the finished tree.
    pub fn finish(mut self) -> Trace {
        while self.stack.len() > 1 {
            self.close();
        }
        Trace {
            root: self.stack.pop().expect("recorder always holds a root"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_nested_tree_in_order() {
        let mut rec = TraceRecorder::new("search q");
        rec.event("generalize q -> q'");
        rec.open("lookup q");
        rec.event("dht node_for");
        rec.event("cache miss");
        rec.close();
        rec.open("lookup q'");
        rec.event("dht get -> 2 values");
        rec.close();
        let trace = rec.finish();
        assert_eq!(trace.root.label, "search q");
        assert_eq!(
            trace.root.events().collect::<Vec<_>>(),
            vec!["generalize q -> q'"]
        );
        assert_eq!(trace.root.children().count(), 2);
        let first = trace.root.children().next().unwrap();
        assert_eq!(first.events().count(), 2);
        assert_eq!(trace.count_spans("lookup"), 2);
        assert_eq!(trace.count_events("dht "), 2);
    }

    #[test]
    fn unbalanced_close_is_harmless_and_finish_closes_open_spans() {
        let mut rec = TraceRecorder::new("root");
        rec.close(); // extra close: no-op
        rec.open("a");
        rec.open("b");
        rec.event("inside b");
        let trace = rec.finish(); // closes b then a
        assert_eq!(trace.root.children().count(), 1);
        let a = trace.root.children().next().unwrap();
        let b = a.children().next().unwrap();
        assert_eq!(b.events().count(), 1);
    }

    #[test]
    fn events_interleave_with_children_chronologically() {
        let mut rec = TraceRecorder::new("root");
        rec.event("before");
        rec.open("child");
        rec.close();
        rec.event("after");
        let out = rec.finish().render();
        assert_eq!(out, "root\n  - before\n  child\n  - after\n");
    }

    #[test]
    fn render_indents_spans_and_events() {
        let mut rec = TraceRecorder::new("root");
        rec.open("child");
        rec.event("ev");
        let out = rec.finish().render();
        assert_eq!(out, "root\n  child\n    - ev\n");
    }
}
