//! Quickstart: the paper's running example (Figures 1-6) end to end.
//!
//! Publishes the three descriptors of Figure 1 into a small DHT, then
//! locates them through queries of decreasing specificity, printing the
//! index path the search walks — the same walk Figure 6 draws.
//!
//! Run with: `cargo run --example quickstart`

use p2p_index::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node peer-to-peer network. RingDht resolves keys to nodes the
    // same way Chord does, minus the routing hops.
    let dht = RingDht::with_named_nodes(64);
    let mut service = IndexService::new(dht, CachePolicy::Single);

    // The three articles of Figure 1.
    let articles = [
        ("x.pdf", "John", "Smith", "TCP", "SIGCOMM", "1989", "315635"),
        (
            "y.pdf", "John", "Smith", "IPv6", "INFOCOM", "1996", "312352",
        ),
        (
            "z.pdf", "Alan", "Doe", "Wavelets", "INFOCOM", "1996", "259827",
        ),
    ];
    for (file, first, last, title, conf, year, size) in articles {
        let descriptor = Descriptor::parse(&format!(
            "<article><author><first>{first}</first><last>{last}</last></author>\
             <title>{title}</title><conf>{conf}</conf><year>{year}</year><size>{size}</size></article>"
        ))?;
        let msd = service.publish(&descriptor, file, &SimpleScheme)?;
        println!("published {file} under MSD {msd}");
    }
    println!();

    // The queries of Figure 2, from most to least specific.
    for text in [
        "/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]",
        "/article[author[first/John][last/Smith]][conf/INFOCOM]", // q2: not indexed!
        "/article/author[first/John][last/Smith]",                // q3
        "/article/title/TCP",                                     // q4
        "/article/conf/INFOCOM",                                  // q5
    ] {
        let query: Query = text.parse()?;
        let report = service.search(&query)?;
        println!("query  {query}");
        println!(
            "  -> {} file(s) in {} interaction(s){}",
            report.files.len(),
            report.interactions,
            if report.generalized() {
                " (recovered via generalization)"
            } else {
                ""
            }
        );
        for hit in &report.files {
            println!("     {}", hit.file);
        }
        println!();
    }

    // Queries can also be built programmatically, with comparisons.
    let nineties = QueryBuilder::new("article")
        .compare("year", CmpOp::Ge, "1990")
        .compare("year", CmpOp::Lt, "2000")
        .build();
    println!("range query {nineties} covers IPv6's MSD: it matches both 1996 papers");
    let d = Descriptor::parse(
        "<article><author><first>John</first><last>Smith</last></author>\
         <title>IPv6</title><conf>INFOCOM</conf><year>1996</year><size>312352</size></article>",
    )?;
    assert!(nineties.covers(&Query::most_specific(&d)));

    Ok(())
}
