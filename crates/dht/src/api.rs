//! The substrate-agnostic DHT interface the indexing layer builds on.
//!
//! The paper stresses that its indexing techniques "can be layered on top of
//! an arbitrary P2P DHT infrastructure". [`Dht`] captures exactly the two
//! services the indexes need — key→node resolution and multi-value
//! key→value storage — so the index layer compiles against this trait and
//! runs unchanged over the full [Chord](crate::chord) protocol simulation or
//! the fast [consistent-hash ring](crate::ring).

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::key::Key;

/// Identifier of a peer node.
///
/// In Chord, node identifiers live in the same 160-bit circle as data keys;
/// a node is responsible for every key in `(predecessor, self]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(Key);

impl NodeId {
    /// Wraps a raw key as a node identifier.
    pub fn from_key(key: Key) -> NodeId {
        NodeId(key)
    }

    /// Derives a node identifier by hashing a node name (e.g. an address).
    pub fn hash_of(name: &str) -> NodeId {
        NodeId(Key::hash_of(name))
    }

    /// The position of this node on the identifier circle.
    pub fn key(&self) -> &Key {
        &self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node{:?}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", &self.0.to_hex()[..12])
    }
}

impl From<Key> for NodeId {
    fn from(key: Key) -> Self {
        NodeId(key)
    }
}

/// Counters describing the work a substrate performed.
///
/// `messages` counts simulated network messages (RPC request/response pairs
/// count as two); `lookups` counts key resolutions; `hops` accumulates
/// routing hops so `hops / lookups` is the mean path length — for Chord this
/// should concentrate around `½·log₂(N)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhtStats {
    /// Total simulated messages exchanged.
    pub messages: u64,
    /// Total key lookups performed.
    pub lookups: u64,
    /// Total routing hops across all lookups.
    pub hops: u64,
}

impl DhtStats {
    /// Mean hops per lookup, or 0.0 when no lookup happened.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hops as f64 / self.lookups as f64
        }
    }
}

/// A peer-to-peer distributed hash table with multi-value storage.
///
/// This is the contract assumed in §III-A of the paper: "each data item is
/// mapped to one or several peer nodes" and the storage system must "allow
/// for the registration of multiple entries using the same key".
///
/// Implementations in this crate:
/// [`ChordNetwork`](crate::chord::ChordNetwork) (full protocol simulation) and
/// [`RingDht`](crate::ring::RingDht) (direct consistent hashing).
pub trait Dht {
    /// Resolves the live node currently responsible for `key`.
    ///
    /// Returns `None` only when the network has no live nodes.
    fn node_for(&self, key: &Key) -> Option<NodeId>;

    /// All live nodes, in ascending identifier order.
    fn nodes(&self) -> Vec<NodeId>;

    /// Registers `value` under `key` on the responsible node.
    ///
    /// Multiple distinct values may be registered under one key; duplicates
    /// are ignored. Returns `true` if the value was newly stored.
    fn put(&mut self, key: Key, value: Bytes) -> bool;

    /// Fetches every value registered under `key`.
    fn get(&self, key: &Key) -> Vec<Bytes>;

    /// Removes one specific value under `key`. Returns `true` if present.
    fn remove(&mut self, key: &Key, value: &[u8]) -> bool;

    /// Work counters accumulated since construction.
    fn stats(&self) -> DhtStats;

    /// Number of live nodes.
    fn len(&self) -> usize {
        self.nodes().len()
    }

    /// Returns `true` if the network has no live nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_wraps_key() {
        let k = Key::hash_of("peer-1");
        let n = NodeId::from_key(k);
        assert_eq!(n.key(), &k);
        assert_eq!(NodeId::hash_of("peer-1"), n);
        assert_eq!(NodeId::from(k), n);
    }

    #[test]
    fn node_id_display_is_short_hex() {
        let n = NodeId::hash_of("peer-1");
        let text = n.to_string();
        assert!(text.starts_with("node:"));
        assert_eq!(text.len(), "node:".len() + 12);
    }

    #[test]
    fn stats_mean_hops() {
        let s = DhtStats {
            messages: 10,
            lookups: 4,
            hops: 10,
        };
        assert!((s.mean_hops() - 2.5).abs() < 1e-9);
        assert_eq!(DhtStats::default().mean_hops(), 0.0);
    }
}
