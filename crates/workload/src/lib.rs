//! Workload models for the p2p-index evaluation.
//!
//! The paper's evaluation (§V) drives a distributed bibliographic database
//! with realistic user behaviour derived from the DBLP archive and the
//! BibFinder/NetBib query logs. Those datasets are not distributable, so
//! this crate reproduces the *models* the paper itself reduces them to:
//!
//! * [`corpus`] — a synthetic DBLP-like article corpus (Fig. 1 schema,
//!   power-law papers-per-author, deterministic by seed);
//! * [`popularity`] — the fitted article-ranking distribution
//!   `F̄(i) = 1 − 0.063·i^0.3` of Fig. 10 and generic Zipf models (Fig. 9);
//! * [`querymodel`] — the query-structure mixes (the §V-C simulation mix
//!   and the Fig. 7 BibFinder histogram) and the workload generator.
//!
//! # Quick start
//!
//! ```
//! use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator, StructureMix};
//!
//! let corpus = Corpus::generate(CorpusConfig { articles: 1000, ..Default::default() });
//! let mut workload = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), 42);
//! for item in workload.take_queries(10) {
//!     let target = corpus.article(item.target).unwrap();
//!     assert!(item.query.matches(target.descriptor().root()));
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod popularity;
pub mod querymodel;

pub use corpus::{Article, Corpus, CorpusConfig};
pub use popularity::{FlashCrowd, PaperCcdf, ZipfPopularity};
pub use querymodel::{GeneratedQuery, QueryGenerator, QueryStructure, StructureMix};
