//! The XPath-subset query language of the p2p-index system.
//!
//! Users locate files with *queries* — expressions in "a subset of the
//! XPath XML addressing language, which offers a good compromise between
//! expressiveness and simplicity" (§III-B of *Data Indexing in Peer-to-Peer
//! DHT Networks*). This crate provides the full query toolchain:
//!
//! * [`ast`] — normalized tree patterns ([`Query`], [`Pattern`]) whose
//!   canonical `Display` text is the hash input `h(q)`;
//! * [`parse`](mod@parse) — the surface-syntax parser ([`parse_query`]);
//! * [`eval`] — matching queries against descriptors ([`Query::matches`]);
//! * [`cover`] — the covering relation `⊒` ([`Query::covers`]), the partial
//!   order that index paths traverse;
//! * [`builder`] — programmatic construction ([`QueryBuilder`]) and MSD
//!   derivation ([`Query::most_specific`]).
//!
//! # Quick start
//!
//! ```
//! use p2p_index_xmldoc::Descriptor;
//! use p2p_index_xpath::{parse_query, Query};
//!
//! let d = Descriptor::parse(
//!     "<article><author><first>John</first><last>Smith</last></author>\
//!      <title>TCP</title><conf>SIGCOMM</conf><year>1989</year></article>",
//! )?;
//! let msd = Query::most_specific(&d);
//! let broad = parse_query("/article/author/last/Smith")?;
//! assert!(broad.matches(d.root()));
//! assert!(broad.covers(&msd));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod cover;
pub mod eval;
pub mod parse;

pub use ast::{Axis, CmpOp, Comparison, NameTest, Pattern, Query};
pub use builder::QueryBuilder;
pub use parse::{parse_query, ParseQueryError, QueryErrorKind};
