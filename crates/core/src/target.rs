//! Index entry targets: what a lookup returns.
//!
//! The distributed indexes are a *query-to-query* service (§IV): the value
//! stored under `h(q)` is either a more specific query covered by `q`, or —
//! at the end of an index path, under the key of a most-specific query —
//! a handle to the file itself. [`IndexTarget`] is that value, with a
//! compact wire encoding used for DHT storage and for traffic accounting.

use std::error::Error;
use std::fmt;

use bytes::Bytes;
use p2p_index_xpath::{parse_query, Query};

/// One entry of a distributed index: the "right-hand side" of a mapping
/// `(q ; target)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexTarget {
    /// A more specific query, covered by the lookup key.
    Query(Query),
    /// A handle to stored file content (found under an MSD key).
    File(String),
}

impl IndexTarget {
    /// Wire encoding: `Q:` + canonical query text, or `F:` + file handle.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        Bytes::from(buf)
    }

    /// Appends the wire encoding to `buf` without intermediate
    /// allocations: the query branch copies the memoized canonical text.
    /// The publish wave reuses one scratch buffer across all entries
    /// through this.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            IndexTarget::Query(q) => {
                buf.extend_from_slice(b"Q:");
                buf.extend_from_slice(q.canonical_text().as_bytes());
            }
            IndexTarget::File(f) => {
                buf.extend_from_slice(b"F:");
                buf.extend_from_slice(f.as_bytes());
            }
        }
    }

    /// Decodes a wire entry.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTargetError`] if the prefix is unknown, the payload
    /// is not UTF-8, or an embedded query does not parse.
    pub fn from_bytes(bytes: &[u8]) -> Result<IndexTarget, DecodeTargetError> {
        let text = std::str::from_utf8(bytes).map_err(|_| DecodeTargetError::NotUtf8)?;
        match text.split_at_checked(2) {
            Some(("Q:", q)) => parse_query(q)
                .map(IndexTarget::Query)
                .map_err(|e| DecodeTargetError::BadQuery(e.to_string())),
            Some(("F:", f)) => Ok(IndexTarget::File(f.to_string())),
            _ => Err(DecodeTargetError::UnknownPrefix),
        }
    }

    /// Size of the wire encoding in bytes — the unit of the traffic model.
    /// Allocation-free: the query branch reads the memoized canonical text.
    pub fn encoded_len(&self) -> usize {
        match self {
            IndexTarget::Query(q) => 2 + q.canonical_text().len(),
            IndexTarget::File(f) => 2 + f.len(),
        }
    }

    /// The query inside, if this is a query target.
    pub fn as_query(&self) -> Option<&Query> {
        match self {
            IndexTarget::Query(q) => Some(q),
            IndexTarget::File(_) => None,
        }
    }

    /// The file handle inside, if this is a file target.
    pub fn as_file(&self) -> Option<&str> {
        match self {
            IndexTarget::Query(_) => None,
            IndexTarget::File(f) => Some(f),
        }
    }
}

impl fmt::Display for IndexTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexTarget::Query(q) => write!(f, "query {q}"),
            IndexTarget::File(file) => write!(f, "file {file}"),
        }
    }
}

impl From<Query> for IndexTarget {
    fn from(q: Query) -> Self {
        IndexTarget::Query(q)
    }
}

/// Errors decoding a wire entry back into an [`IndexTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTargetError {
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// The two-byte type prefix was not `Q:` or `F:`.
    UnknownPrefix,
    /// A `Q:` payload failed to parse as a query.
    BadQuery(String),
}

impl fmt::Display for DecodeTargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTargetError::NotUtf8 => write!(f, "index entry is not valid UTF-8"),
            DecodeTargetError::UnknownPrefix => write!(f, "index entry has unknown type prefix"),
            DecodeTargetError::BadQuery(e) => write!(f, "index entry holds malformed query: {e}"),
        }
    }
}

impl Error for DecodeTargetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q: Query = "/article/author/last/Smith".parse().unwrap();
        let t = IndexTarget::Query(q.clone());
        let decoded = IndexTarget::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
        assert_eq!(decoded.as_query(), Some(&q));
        assert_eq!(decoded.as_file(), None);
    }

    #[test]
    fn file_roundtrip() {
        let t = IndexTarget::File("x.pdf".into());
        let decoded = IndexTarget::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
        assert_eq!(decoded.as_file(), Some("x.pdf"));
        assert_eq!(decoded.as_query(), None);
    }

    #[test]
    fn encoded_len_matches_wire_bytes() {
        let q: Query = "/article[conf/INFOCOM][year/1996]".parse().unwrap();
        for t in [IndexTarget::Query(q), IndexTarget::File("y.pdf".into())] {
            assert_eq!(t.encoded_len(), t.to_bytes().len());
        }
    }

    #[test]
    fn encode_into_appends_wire_bytes() {
        let q: Query = "/article[conf/SIGCOMM]/author/last/Liu".parse().unwrap();
        let targets = [IndexTarget::Query(q), IndexTarget::File("z.pdf".into())];
        let mut buf = Vec::new();
        for t in &targets {
            buf.clear();
            buf.extend_from_slice(b"junk-prefix");
            t.encode_into(&mut buf);
            assert_eq!(&buf[11..], &t.to_bytes()[..], "appends, never rewrites");
        }
    }

    #[test]
    fn decode_errors() {
        assert_eq!(
            IndexTarget::from_bytes(&[0xFF, 0xFE, 0xFD]),
            Err(DecodeTargetError::NotUtf8)
        );
        assert_eq!(
            IndexTarget::from_bytes(b"X:what"),
            Err(DecodeTargetError::UnknownPrefix)
        );
        assert_eq!(
            IndexTarget::from_bytes(b"Q"),
            Err(DecodeTargetError::UnknownPrefix)
        );
        assert!(matches!(
            IndexTarget::from_bytes(b"Q:not a query"),
            Err(DecodeTargetError::BadQuery(_))
        ));
    }

    #[test]
    fn display_forms() {
        let q: Query = "/a/b".parse().unwrap();
        assert_eq!(IndexTarget::Query(q).to_string(), "query /a/b");
        assert_eq!(IndexTarget::File("f".into()).to_string(), "file f");
        assert!(!DecodeTargetError::UnknownPrefix.to_string().is_empty());
    }

    #[test]
    fn from_query_conversion() {
        let q: Query = "/a".parse().unwrap();
        let t: IndexTarget = q.clone().into();
        assert_eq!(t.as_query(), Some(&q));
    }
}
