//! A music library: a second descriptor domain with its own index scheme,
//! plus fuzzy query correction.
//!
//! The paper notes that "determining good decompositions for indexing each
//! given descriptor type (e.g., articles, music files, movies, books)
//! requires human input" (§IV-C) and points at CDDB-style databases for
//! absorbing misspellings (§VI). This example supplies that human input for
//! music tracks — a `CustomScheme` with artist/album/genre chains — and
//! validates queries against the published descriptors with
//! `FuzzyCorrector`.
//!
//! Run with: `cargo run --example music_library`

use p2p_index::prelude::*;
use p2p_index::xpath::QueryBuilder as QB;

/// The music indexing scheme: artist → album(artist+album) → MSD,
/// genre → genre+year → MSD, track title → MSD.
fn music_scheme() -> impl IndexScheme {
    CustomScheme::new("music", |d: &Descriptor, msd: &Query| {
        let artist = d.field("artist")?;
        let mut edges = Vec::new();
        let artist_q = QB::new("track").value("artist", &artist).build();
        if let Some(album) = d.field("album") {
            let album_q = QB::new("track")
                .value("artist", &artist)
                .value("album", &album)
                .build();
            edges.push((artist_q, album_q.clone()));
            edges.push((album_q, msd.clone()));
        } else {
            edges.push((artist_q, msd.clone()));
        }
        if let (Some(genre), Some(year)) = (d.field("genre"), d.field("year")) {
            let genre_q = QB::new("track").value("genre", &genre).build();
            let gy = QB::new("track")
                .value("genre", &genre)
                .value("year", &year)
                .build();
            edges.push((genre_q, gy.clone()));
            edges.push((gy, msd.clone()));
        }
        if let Some(title) = d.field("title") {
            edges.push((QB::new("track").value("title", &title).build(), msd.clone()));
        }
        Some(edges)
    })
}

fn track(artist: &str, album: &str, title: &str, genre: &str, year: u32) -> Descriptor {
    Descriptor::parse(&format!(
        "<track><artist>{artist}</artist><album>{album}</album>\
         <title>{title}</title><genre>{genre}</genre><year>{year}</year></track>"
    ))
    .expect("valid track descriptor")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = music_scheme();
    let mut service = IndexService::new(RingDht::with_named_nodes(60), CachePolicy::Single);
    let mut corrector = FuzzyCorrector::new(2);

    let tracks = [
        ("Miles Davis", "Kind of Blue", "So What", "Jazz", 1959),
        ("Miles Davis", "Kind of Blue", "Blue in Green", "Jazz", 1959),
        ("John Coltrane", "Giant Steps", "Giant Steps", "Jazz", 1960),
        ("Nina Simone", "Pastel Blues", "Sinnerman", "Jazz", 1965),
        (
            "Kraftwerk",
            "Computer World",
            "Computer Love",
            "Electronic",
            1981,
        ),
        ("Kraftwerk", "Autobahn", "Autobahn", "Electronic", 1974),
        (
            "Daft Punk",
            "Discovery",
            "Harder Better Faster Stronger",
            "Electronic",
            2001,
        ),
    ];
    for (i, (artist, album, title, genre, year)) in tracks.iter().enumerate() {
        let d = track(artist, album, title, genre, *year);
        corrector.learn_descriptor(&d);
        service.publish(&d, format!("track-{i}.flac"), &scheme)?;
    }
    println!("published {} tracks with the music scheme\n", tracks.len());

    // Browse by artist → album → track.
    let by_artist: Query = "/track/artist/\"Miles Davis\"".parse()?;
    let report = service.search(&by_artist)?;
    println!("{by_artist} -> {} track(s)", report.files.len());
    assert_eq!(report.files.len(), 2);

    // Genre + year chains.
    let jazz_1959: Query = "/track[genre/Jazz][year/1959]".parse()?;
    let report = service.search(&jazz_1959)?;
    println!("{jazz_1959} -> {} track(s)", report.files.len());
    assert_eq!(report.files.len(), 2);

    // A misspelled artist query, corrected CDDB-style before lookup.
    let typo: Query = "/track/artist/\"Mils Davis\"".parse()?;
    let corrected = corrector.correct_query(&typo);
    println!("\ntypo      {typo}");
    println!("corrected {corrected}");
    assert_ne!(typo, corrected);
    let report = service.search(&corrected)?;
    println!("-> {} track(s) after correction", report.files.len());
    assert_eq!(report.files.len(), 2);

    // Misspelled genre in a compound query.
    let typo: Query = "/track[genre/Electronc][year/1981]".parse()?;
    let corrected = corrector.correct_query(&typo);
    let report = service.search(&corrected)?;
    println!("{typo} -> corrected -> {} track(s)", report.files.len());
    assert_eq!(report.files.len(), 1);

    Ok(())
}
