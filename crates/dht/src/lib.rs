//! DHT substrates for the p2p-index system.
//!
//! This crate implements everything below the indexing layer of
//! *Data Indexing in Peer-to-Peer DHT Networks* (Garcés-Erice et al.,
//! ICDCS 2004):
//!
//! * [`hash`] — a from-scratch SHA-1, the key-derivation function;
//! * [`key`] — the 160-bit circular identifier space with ring arithmetic;
//! * [`storage`] — per-node multi-value key stores (the paper requires
//!   "registration of multiple entries using the same key");
//! * [`chord`] — a faithful Chord protocol simulation (finger routing,
//!   join/leave/failure, stabilization, successor lists, optional
//!   replication and replica repair);
//! * [`kademlia`] — a Kademlia simulation (XOR metric, k-buckets,
//!   iterative α-parallel lookups, re-publication), the libp2p-style
//!   substrate;
//! * [`pastry`] — a Pastry simulation (prefix routing, leaf sets,
//!   PAST-style leaf-set replication), the substrate the paper names
//!   alongside Chord;
//! * [`ring`] — a direct consistent-hash ring with identical key placement,
//!   used where the substrate is assumed rather than studied;
//! * [`placement`] — the successor-list replica placement rule, shared by
//!   the substrates here and the networked client/server in
//!   `p2p-index-net` so routing and repair can never disagree;
//! * [`faulty`] — a deterministic fault-injecting wrapper (message loss,
//!   timeouts, node churn) around any substrate, for robustness studies;
//! * [`api`] — the [`Dht`] trait all substrates implement, which is all the
//!   indexing layer ever sees. Operations go through the fallible
//!   [`Dht::execute`] entry point ([`DhtOp`] → [`DhtResponse`] /
//!   [`DhtError`]); `put`/`get`/`remove` remain as infallible convenience
//!   methods.
//!
//! # Quick start
//!
//! ```
//! use bytes::Bytes;
//! use p2p_index_dht::{Dht, Key, RingDht};
//!
//! let mut dht = RingDht::with_named_nodes(64);
//! let key = Key::hash_of("hello");
//! dht.put(key, Bytes::from_static(b"world"));
//! assert_eq!(dht.get(&key), vec![Bytes::from_static(b"world")]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod chord;
pub mod faulty;
pub mod hash;
pub mod kademlia;
pub mod key;
pub mod pastry;
pub mod placement;
pub mod ring;
pub mod sharded;
pub mod split;
pub mod storage;

pub use api::{
    record_many, record_op, Dht, DhtError, DhtOp, DhtResponse, DhtStats, NodeChurn, NodeId,
};
pub use chord::{ChordConfig, ChordError, ChordNetwork};
pub use faulty::{FaultConfig, FaultStats, FaultyDht, SplitMix64};
pub use kademlia::{KademliaConfig, KademliaNetwork};
pub use key::{Key, KEY_BITS};
pub use pastry::{PastryConfig, PastryNetwork};
pub use ring::RingDht;
pub use sharded::{ShardedDht, DEFAULT_SHARDS};
pub use split::{page_key, BalanceConfig, NodeLoad, SplitDht};
pub use storage::NodeStore;
