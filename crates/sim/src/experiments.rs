//! One runner per table and figure of the paper's evaluation section.
//!
//! Each function regenerates the data behind one exhibit of §V and renders
//! it as a [`TextTable`] (text for the console, CSV for plotting). The
//! scheme × policy simulation grid is shared through [`Evaluation`], which
//! runs each cell at most once.
//!
//! | Paper exhibit | Runner |
//! |---|---|
//! | Fig. 7 (query-type mix) | [`fig7_query_mix`] |
//! | §V-B storage overhead | [`storage_overhead`] |
//! | Fig. 9 (popularity power laws) | [`fig9_popularity`] |
//! | Fig. 10 (article-rank CCDF) | [`fig10_ccdf`] |
//! | Fig. 11 (interactions/query) | [`fig11_interactions`] |
//! | Fig. 12 (traffic/query) | [`fig12_traffic`] |
//! | Fig. 13 (cache hit ratio) | [`fig13_hit_ratio`] |
//! | Fig. 14 (cached keys/node) | [`fig14_cache_storage`] |
//! | Fig. 15 (per-node load) | [`fig15_hotspots`] |
//! | Table I (non-indexed queries) | [`table1_errors`] |

use std::collections::HashMap;
use std::sync::Arc;

use p2p_index_core::CachePolicy;
use p2p_index_obs::MetricsSnapshot;
use p2p_index_workload::{Corpus, PaperCcdf, StructureMix, ZipfPopularity};

use crate::simulation::{Metrics, SchemeChoice, SimConfig, Simulation};

/// A named probability-by-rank series for Fig. 9.
type RankSeries = (&'static str, Box<dyn Fn(usize) -> f64>);
use crate::table::{fmt_f, fmt_pct, TextTable};

/// Scale parameters shared by all grid experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// DHT nodes (paper: 500).
    pub nodes: usize,
    /// Corpus articles (paper: 10 000).
    pub articles: usize,
    /// Queries per run (paper: 50 000).
    pub queries: usize,
    /// Workload/corpus seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            nodes: 500,
            articles: 10_000,
            queries: 50_000,
            seed: 42,
        }
    }
}

impl EvalConfig {
    /// The paper-scale configuration.
    pub fn paper() -> EvalConfig {
        EvalConfig::default()
    }

    /// A scaled-down configuration for tests/benches (same shapes, seconds
    /// instead of minutes).
    pub fn small() -> EvalConfig {
        EvalConfig {
            nodes: 50,
            articles: 500,
            queries: 2_500,
            seed: 42,
        }
    }

    /// The full simulation config for one grid cell.
    pub fn sim(&self, scheme: SchemeChoice, policy: CachePolicy) -> SimConfig {
        SimConfig {
            nodes: self.nodes,
            articles: self.articles,
            queries: self.queries,
            scheme,
            policy,
            mix: StructureMix::paper_simulation(),
            seed: self.seed,
            collect_metrics: false,
        }
    }
}

/// Lazily-evaluated scheme × policy grid of simulation runs.
#[derive(Debug, Default)]
pub struct Evaluation {
    base: EvalConfig,
    cells: HashMap<(SchemeChoice, CachePolicy), Metrics>,
    collect_metrics: bool,
    snapshots: HashMap<(SchemeChoice, CachePolicy), MetricsSnapshot>,
    /// The corpus every cell of this grid simulates over, generated on
    /// first use and shared read-only (`Arc`) across cells — all cells use
    /// the same `(articles, seed)`, so re-synthesizing it per cell (and
    /// per worker, under `--jobs`) would be pure duplicated work and
    /// allocator pressure.
    corpus: Option<Arc<Corpus>>,
}

impl Evaluation {
    /// A grid at the given scale.
    pub fn new(base: EvalConfig) -> Evaluation {
        Evaluation {
            base,
            cells: HashMap::new(),
            collect_metrics: false,
            snapshots: HashMap::new(),
            corpus: None,
        }
    }

    /// The grid's shared corpus, generated on first use.
    fn shared_corpus(&mut self) -> Arc<Corpus> {
        if self.corpus.is_none() {
            let config = self.base.sim(SchemeChoice::Simple, CachePolicy::None);
            self.corpus = Some(Arc::new(Corpus::generate(Simulation::corpus_config(
                &config,
            ))));
        }
        self.corpus.as_ref().expect("just generated").clone()
    }

    /// The scale parameters.
    pub fn config(&self) -> &EvalConfig {
        &self.base
    }

    /// Attach an observability registry to every cell run from now on;
    /// snapshots are collected per cell and exposed through
    /// [`metrics_snapshots`](Self::metrics_snapshots). Cells that already
    /// ran are not re-run.
    pub fn set_collect_metrics(&mut self, collect: bool) {
        self.collect_metrics = collect;
    }

    fn cell_config(&self, scheme: SchemeChoice, policy: CachePolicy) -> SimConfig {
        SimConfig {
            collect_metrics: self.collect_metrics,
            ..self.base.sim(scheme, policy)
        }
    }

    /// Runs (or recalls) one grid cell.
    pub fn cell(&mut self, scheme: SchemeChoice, policy: CachePolicy) -> &Metrics {
        if !self.cells.contains_key(&(scheme, policy)) {
            let corpus = self.shared_corpus();
            let (metrics, snapshot) =
                Simulation::run_with_snapshot_on(self.cell_config(scheme, policy), corpus);
            if let Some(s) = snapshot {
                self.snapshots.insert((scheme, policy), s);
            }
            self.cells.insert((scheme, policy), metrics);
        }
        &self.cells[&(scheme, policy)]
    }

    /// Runs a batch of grid cells, up to `jobs` concurrently, and memoizes
    /// the results.
    ///
    /// Duplicate requests and cells that already ran are skipped; the
    /// remaining cells fan out over the [work-queue executor](crate::exec).
    /// Every cell is a pure function of `(config, scheme, policy)` — the
    /// same per-cell seeds a serial [`cell`](Self::cell) call would use —
    /// so tables rendered afterwards are byte-identical to a serial run.
    pub fn run_cells(&mut self, cells: &[(SchemeChoice, CachePolicy)], jobs: usize) {
        let mut pending: Vec<(SchemeChoice, CachePolicy)> = Vec::new();
        for &cell in cells {
            if !self.cells.contains_key(&cell) && !pending.contains(&cell) {
                pending.push(cell);
            }
        }
        if pending.is_empty() {
            return;
        }
        let base = self.base;
        let collect = self.collect_metrics;
        let corpus = self.shared_corpus();
        let results = crate::exec::parallel_map(&pending, jobs, |&(scheme, policy)| {
            Simulation::run_with_snapshot_on(
                SimConfig {
                    collect_metrics: collect,
                    ..base.sim(scheme, policy)
                },
                corpus.clone(),
            )
        });
        for (cell, (m, snapshot)) in pending.into_iter().zip(results) {
            if let Some(s) = snapshot {
                self.snapshots.insert(cell, s);
            }
            self.cells.insert(cell, m);
        }
    }

    /// Number of cells simulated so far.
    pub fn cells_run(&self) -> usize {
        self.cells.len()
    }

    /// The per-cell observability snapshots collected so far, labelled
    /// `Scheme/policy` and sorted by label — a canonical order, so output
    /// rendered from them is identical at any `--jobs` count.
    pub fn metrics_snapshots(&self) -> Vec<(String, &MetricsSnapshot)> {
        let mut out: Vec<(String, &MetricsSnapshot)> = self
            .snapshots
            .iter()
            .map(|((scheme, policy), snap)| (format!("{}/{}", scheme.label(), policy), snap))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Every cell of the paper's scheme × policy grid: the union of what the
/// grid exhibits (Figs. 11-15, Table I, the structure breakdown) consult.
/// Pre-running these via [`Evaluation::run_cells`] makes rendering the
/// exhibits a pure table-formatting pass.
pub fn paper_grid() -> Vec<(SchemeChoice, CachePolicy)> {
    let mut cells = Vec::new();
    for policy in FIG12_POLICIES {
        for scheme in SchemeChoice::PAPER {
            cells.push((scheme, policy));
        }
    }
    cells
}

/// The grid cells one exhibit consults — what a driver should pre-run (in
/// parallel) before rendering it. Empty for exhibits that don't touch the
/// simulation grid.
pub fn grid_cells_for(exhibit: &str) -> Vec<(SchemeChoice, CachePolicy)> {
    let all_schemes = |policies: &[CachePolicy]| {
        policies
            .iter()
            .flat_map(|&p| SchemeChoice::PAPER.into_iter().map(move |s| (s, p)))
            .collect()
    };
    match exhibit {
        "fig11" => all_schemes(&FIG11_POLICIES),
        "fig12" => all_schemes(&FIG12_POLICIES),
        "fig13" | "fig14" => all_schemes(&FIG13_POLICIES),
        "table1" => all_schemes(&TABLE1_POLICIES),
        // Simple-scheme-only exhibits.
        "fig15" => TABLE1_POLICIES
            .iter()
            .map(|&p| (SchemeChoice::Simple, p))
            .collect(),
        "ext-structures" => vec![
            (SchemeChoice::Simple, CachePolicy::None),
            (SchemeChoice::Simple, CachePolicy::Single),
        ],
        _ => Vec::new(),
    }
}

/// The cache policies of Fig. 11 (no multi-cache: "it presents the same
/// characteristics as the single-cache policy").
pub const FIG11_POLICIES: [CachePolicy; 5] = [
    CachePolicy::None,
    CachePolicy::Single,
    CachePolicy::Lru(10),
    CachePolicy::Lru(20),
    CachePolicy::Lru(30),
];

/// The cache policies of Fig. 12 (all six).
pub const FIG12_POLICIES: [CachePolicy; 6] = [
    CachePolicy::None,
    CachePolicy::Multi,
    CachePolicy::Single,
    CachePolicy::Lru(10),
    CachePolicy::Lru(20),
    CachePolicy::Lru(30),
];

/// The cache policies of Figs. 13-14 (caching policies only).
pub const FIG13_POLICIES: [CachePolicy; 5] = [
    CachePolicy::Multi,
    CachePolicy::Single,
    CachePolicy::Lru(10),
    CachePolicy::Lru(20),
    CachePolicy::Lru(30),
];

/// The cache policies of Table I.
pub const TABLE1_POLICIES: [CachePolicy; 3] =
    [CachePolicy::None, CachePolicy::Lru(30), CachePolicy::Single];

/// Fig. 7: distribution of query types extracted from the BibFinder log.
///
/// This reproduces the *input* distribution the paper measured (our
/// transcription of the histogram), which seeds
/// [`StructureMix::bibfinder_log`].
pub fn fig7_query_mix() -> TextTable {
    let mut t = TextTable::new("Fig. 7 — Most used query types, BibFinder log (9,108 queries)");
    t.header(["query type", "% of queries"]);
    for (structure, weight) in StructureMix::bibfinder_log().weights() {
        let label = if structure.label() == "/conf" {
            "others"
        } else {
            structure.label()
        };
        t.row([label.to_string(), fmt_pct(*weight)]);
    }
    t
}

/// §V-B: index storage requirements per scheme, against the article corpus.
///
/// Paper reference points: Simple is the most space-efficient (152 MB for
/// full DBLP), Complex ≈ +25 %, Flat ≈ +37 %; indexes cost ≤ 0.5 % of the
/// 29.1 GB needed for the articles themselves.
pub fn storage_overhead(base: &EvalConfig) -> TextTable {
    let mut t = TextTable::new("§V-B — Index storage overhead per scheme");
    t.header([
        "scheme",
        "index entries",
        "index bytes",
        "vs simple",
        "article bytes",
        "overhead",
        "keys/node (mean)",
    ]);
    let mut simple_bytes = None;
    for scheme in SchemeChoice::PAPER {
        let cfg = SimConfig {
            queries: 0,
            ..base.sim(scheme, CachePolicy::None)
        };
        let mut sim = Simulation::prepare(cfg);
        let corpus_bytes = sim.corpus().total_file_bytes();
        let m = sim.execute();
        // Total footprint: entry payloads plus 20 key bytes per stored value.
        let bytes = m.index_entry_bytes + 20 * m.index_entry_count;
        let simple = *simple_bytes.get_or_insert(bytes);
        t.row([
            m.scheme.clone(),
            m.index_entry_count.to_string(),
            bytes.to_string(),
            format!("{:+.1}%", 100.0 * (bytes as f64 / simple as f64 - 1.0)),
            corpus_bytes.to_string(),
            fmt_pct(bytes as f64 / corpus_bytes as f64),
            fmt_f(m.mean_keys_per_node(), 1),
        ]);
    }
    t
}

/// Fig. 9: popularity of authors/articles follows a power law (log-log).
///
/// The paper plots four measured traces; we emit our *model* counterparts —
/// ranked Zipf series at the trace-like exponents plus the fitted article
/// distribution — at log-spaced ranks.
pub fn fig9_popularity() -> TextTable {
    let ranks = log_ranks(10_000);
    let series: [RankSeries; 4] = [
        ("bibfinder-authors (zipf a=0.75)", {
            let z = ZipfPopularity::new(10_000, 0.75);
            Box::new(move |r| z.prob(r))
        }),
        ("netbib-authors (zipf a=0.85)", {
            let z = ZipfPopularity::new(10_000, 0.85);
            Box::new(move |r| z.prob(r))
        }),
        ("bibfinder-articles (zipf a=0.95)", {
            let z = ZipfPopularity::new(10_000, 0.95);
            Box::new(move |r| z.prob(r))
        }),
        ("citeseer-articles (paper fit)", {
            let p = PaperCcdf::new(10_000);
            Box::new(move |r| p.prob(r))
        }),
    ];
    let mut t = TextTable::new("Fig. 9 — Popularity distributions (probability vs. rank, log-log)");
    let mut header = vec!["rank".to_string()];
    header.extend(series.iter().map(|(n, _)| n.to_string()));
    t.header(header);
    for r in ranks {
        let mut row = vec![r.to_string()];
        row.extend(series.iter().map(|(_, f)| format!("{:.3e}", f(r))));
        t.row(row);
    }
    t
}

/// Fig. 10: complementary CDF of the article ranking,
/// `F̄(i) = 1 − 0.063·i^0.3` for 10 000 articles.
pub fn fig10_ccdf() -> TextTable {
    let model = PaperCcdf::new(10_000);
    let mut t = TextTable::new("Fig. 10 — CCDF of the article ranking");
    t.header(["rank", "ccdf"]);
    for i in (0..=10_000usize).step_by(500) {
        let rank = i.max(1);
        t.row([rank.to_string(), fmt_f(model.ccdf(rank), 4)]);
    }
    t
}

/// Fig. 11: average number of interactions required to find data, per
/// scheme and cache policy.
pub fn fig11_interactions(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Fig. 11 — Average interactions per query");
    t.header(["policy", "Simple", "Flat", "Complex"]);
    for policy in FIG11_POLICIES {
        let mut row = vec![policy.to_string()];
        for scheme in SchemeChoice::PAPER {
            let m = eval.cell(scheme, policy);
            row.push(fmt_f(m.mean_interactions(), 2));
        }
        t.row(row);
    }
    t
}

/// Fig. 12: average traffic (bytes) per query, split into normal and cache
/// traffic, per scheme and policy.
pub fn fig12_traffic(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Fig. 12 — Average network traffic (bytes) per query");
    t.header(["policy", "scheme", "normal", "cache", "total"]);
    for policy in FIG12_POLICIES {
        for scheme in SchemeChoice::PAPER {
            let m = eval.cell(scheme, policy);
            t.row([
                policy.to_string(),
                m.scheme.clone(),
                fmt_f(m.normal_bytes_per_query(), 0),
                fmt_f(m.cache_bytes_per_query(), 0),
                fmt_f(m.normal_bytes_per_query() + m.cache_bytes_per_query(), 0),
            ]);
        }
    }
    t
}

/// Fig. 13: distributed cache hit ratio, plus the fraction of hits that
/// occur on the first node of the chain (§V-E(e)).
pub fn fig13_hit_ratio(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Fig. 13 — Cache efficiency: distributed hit ratio");
    t.header(["policy", "scheme", "hit ratio", "hits at first node"]);
    for policy in FIG13_POLICIES {
        for scheme in SchemeChoice::PAPER {
            let m = eval.cell(scheme, policy);
            t.row([
                policy.to_string(),
                m.scheme.clone(),
                fmt_pct(m.hit_ratio()),
                fmt_pct(m.first_node_hit_fraction()),
            ]);
        }
    }
    t
}

/// Fig. 14 (and §V-E(f)): cached keys per node — mean, max, fill state —
/// plus regular keys per node.
pub fn fig14_cache_storage(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Fig. 14 — Shortcuts (cached keys) per node");
    t.header([
        "policy",
        "scheme",
        "mean cached/node",
        "max cached",
        "caches full",
        "caches empty",
        "regular keys/node",
    ]);
    for policy in FIG13_POLICIES {
        for scheme in SchemeChoice::PAPER {
            let m = eval.cell(scheme, policy);
            t.row([
                policy.to_string(),
                m.scheme.clone(),
                fmt_f(m.mean_cached_keys_per_node(), 1),
                m.max_cached_keys_per_node().to_string(),
                fmt_pct(m.cache_full_fraction),
                fmt_pct(m.cache_empty_fraction),
                fmt_f(m.mean_keys_per_node(), 1),
            ]);
        }
    }
    t
}

/// Fig. 15: percentage of queries processed by each node, ranked (log-log
/// hot-spot curve), simple scheme, three policies.
pub fn fig15_hotspots(eval: &mut Evaluation) -> TextTable {
    let policies = [CachePolicy::None, CachePolicy::Lru(30), CachePolicy::Single];
    let nodes = eval.config().nodes;
    let ranks = log_ranks(nodes);
    let mut series: Vec<Vec<f64>> = Vec::new();
    for policy in policies {
        series.push(
            eval.cell(SchemeChoice::Simple, policy)
                .node_load_percentages(),
        );
    }
    let mut t = TextTable::new("Fig. 15 — % of queries processed per node (simple scheme, ranked)");
    t.header(["node rank", "no-cache", "lru-30", "single-cache"]);
    for r in ranks {
        let mut row = vec![r.to_string()];
        for s in &series {
            row.push(format!("{:.4}", s.get(r - 1).copied().unwrap_or(0.0)));
        }
        t.row(row);
    }
    t
}

/// Table I: number of queries to non-indexed data (recoverable errors).
pub fn table1_errors(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Table I — Number of queries to non-indexed data");
    t.header(["policy", "Simple", "Flat", "Complex"]);
    for policy in TABLE1_POLICIES {
        let mut row = vec![policy.to_string()];
        for scheme in SchemeChoice::PAPER {
            row.push(eval.cell(scheme, policy).errors.to_string());
        }
        t.row(row);
    }
    t
}

/// Extension (not a paper exhibit): interactions and errors broken down by
/// query structure — explains the Fig. 11 averages. Author+year rows carry
/// all the errors (the only non-indexed structure in the §V-C mix).
pub fn ext_structure_breakdown(eval: &mut Evaluation) -> TextTable {
    let mut t = TextTable::new("Extension — Per-structure interactions (simple scheme)");
    t.header([
        "policy",
        "structure",
        "queries",
        "interactions/query",
        "errors",
    ]);
    for policy in [CachePolicy::None, CachePolicy::Single] {
        let m = eval.cell(SchemeChoice::Simple, policy).clone();
        for (label, queries, interactions, errors) in &m.by_structure {
            t.row([
                policy.to_string(),
                label.clone(),
                queries.to_string(),
                fmt_f(*interactions as f64 / (*queries).max(1) as f64, 2),
                errors.to_string(),
            ]);
        }
    }
    t
}

/// Extension (not a paper exhibit): index availability under churn.
///
/// Runs the simple-scheme workload in batches; between batches, nodes
/// join and leave the ring (index entries migrate with their key ranges,
/// exactly as in a DHT). The paper argues indexing is independent of the
/// substrate's membership dynamics; this measures it: the located-target
/// rate stays at 100 % and interactions stay flat while a quarter of the
/// network turns over.
pub fn ext_churn(base: &EvalConfig) -> TextTable {
    use p2p_index_core::{IndexService, SimpleScheme};
    use p2p_index_dht::{Dht, NodeId, RingDht};
    use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator};
    use p2p_index_xpath::Query;

    use crate::simulation::user_search;

    let corpus = Corpus::generate(CorpusConfig {
        articles: base.articles,
        author_pool: (base.articles / 4).max(16),
        seed: base.seed,
        ..CorpusConfig::default()
    });
    let mut service = IndexService::new(RingDht::with_named_nodes(base.nodes), CachePolicy::None);
    for a in corpus.articles() {
        service
            .publish(&a.descriptor(), a.file_name(), &SimpleScheme)
            .expect("live network");
    }
    let mut generator = QueryGenerator::new(&corpus, StructureMix::paper_simulation(), base.seed);

    let batches = 8usize;
    let batch_size = (base.queries / batches).max(1);
    let mut t = TextTable::new("Extension — Availability under ring churn (simple scheme)");
    t.header([
        "batch",
        "nodes",
        "churn event",
        "found",
        "interactions/query",
    ]);
    for batch in 0..batches {
        // Churn between batches: alternate join/leave waves.
        let event = if batch == 0 {
            "—".to_string()
        } else if batch % 2 == 1 {
            let joins = base.nodes / 16;
            for j in 0..joins {
                service
                    .dht_mut()
                    .add_node(NodeId::hash_of(&format!("joiner-{batch}-{j}")));
            }
            format!("+{joins} joins")
        } else {
            let leaves = base.nodes / 16;
            let victims: Vec<NodeId> = service
                .dht()
                .nodes()
                .into_iter()
                .step_by(7)
                .take(leaves)
                .collect();
            for v in &victims {
                service.dht_mut().remove_node(*v);
            }
            format!("-{} leaves", victims.len())
        };

        let mut found = 0u64;
        let mut interactions = 0u64;
        for _ in 0..batch_size {
            let item = generator.next_query();
            let article = corpus.article(item.target).expect("valid target");
            let msd = Query::most_specific(&article.descriptor());
            let outcome = user_search(&mut service, &item.query, &msd, &article.file_name());
            found += outcome.found as u64;
            interactions += outcome.interactions as u64;
        }
        t.row([
            batch.to_string(),
            service.dht().len().to_string(),
            event,
            fmt_pct(found as f64 / batch_size as f64),
            fmt_f(interactions as f64 / batch_size as f64, 2),
        ]);
    }
    t
}

/// Extension (not a paper exhibit): search robustness under message loss.
///
/// The paper layers its indexes on "an arbitrary P2P DHT infrastructure";
/// real infrastructures lose messages. This sweep wraps the ring substrate
/// in a deterministic [`FaultyDht`](p2p_index_dht::FaultyDht), publishes
/// the corpus while healthy, then runs the query workload at each message
/// loss rate × retry budget combination. Reported per cell: end-to-end
/// search success (the target file located), how often the report was
/// marked partial, and the retry/backoff cost the budget buys.
///
/// With a budget of 1 (no retries) success collapses roughly as
/// `(1 − loss)ᵏ` in the number of sub-lookups `k`; a budget of 3 drives
/// the per-operation abandonment rate to `loss³` and holds end-to-end
/// success above 99 % even at 10 % loss.
pub fn ext_robustness(base: &EvalConfig, jobs: usize) -> TextTable {
    use p2p_index_core::{IndexService, RetryPolicy, SimpleScheme};
    use p2p_index_dht::{FaultConfig, FaultyDht, RingDht};
    use p2p_index_workload::{Corpus, CorpusConfig, QueryGenerator};

    let corpus = Corpus::generate(CorpusConfig {
        articles: base.articles,
        author_pool: (base.articles / 4).max(16),
        seed: base.seed,
        ..CorpusConfig::default()
    });
    let loss_rates = [0.0, 0.05, 0.10, 0.20];
    let budgets = [1u32, 2, 3];
    let mut cells: Vec<(u64, f64, u32)> = Vec::new();
    for (li, &loss) in loss_rates.iter().enumerate() {
        for (bi, &budget) in budgets.iter().enumerate() {
            // Distinct deterministic seeds per cell, derived from the run seed.
            let cell_seed = base.seed ^ ((li as u64 + 1) * 1009 + bi as u64 * 101);
            cells.push((cell_seed, loss, budget));
        }
    }
    let queries_per_cell = (base.queries / cells.len()).max(50);

    // Every cell is an isolated service + deterministic seeds, sharing only
    // the read-only corpus, so cells fan out over the executor and the rows
    // — emitted in canonical sweep order — match a serial run byte for byte.
    let rows = crate::exec::parallel_map(&cells, jobs, |&(cell_seed, loss, budget)| {
        let dht = FaultyDht::transparent(RingDht::with_named_nodes(base.nodes));
        let mut service = IndexService::with_retry(
            dht,
            CachePolicy::None,
            RetryPolicy::with_budget(cell_seed, budget),
        );
        for a in corpus.articles() {
            service
                .publish(&a.descriptor(), a.file_name(), &SimpleScheme)
                .expect("publishing happens before faults are enabled");
        }
        service
            .dht_mut()
            .set_fault_config(FaultConfig::lossy(cell_seed, loss));

        // Same per-cell query stream, so cells differ only in faults.
        let mut generator =
            QueryGenerator::new(&corpus, StructureMix::paper_simulation(), base.seed);
        let mut successes = 0u64;
        let mut partial = 0u64;
        let mut retries = 0u64;
        let mut abandoned = 0u64;
        let mut backoff_ms = 0u64;
        for _ in 0..queries_per_cell {
            let item = generator.next_query();
            let article = corpus.article(item.target).expect("valid target");
            let report = service
                .search(&item.query)
                .expect("faults degrade results, they do not abort");
            if report.files.iter().any(|h| h.file == article.file_name()) {
                successes += 1;
            }
            partial += report.is_partial() as u64;
            retries += report.completeness.retries;
            abandoned += u64::from(report.completeness.abandoned);
            backoff_ms += report.completeness.backoff_ms;
        }
        let n = queries_per_cell as f64;
        [
            fmt_f(loss, 2),
            budget.to_string(),
            queries_per_cell.to_string(),
            fmt_f(successes as f64 / n, 4),
            fmt_f(partial as f64 / n, 4),
            fmt_f(retries as f64 / n, 2),
            fmt_f(abandoned as f64 / n, 3),
            fmt_f(backoff_ms as f64 / n, 1),
        ]
    });

    let mut t = TextTable::new("Extension — Search robustness: message loss × retry budget");
    t.header([
        "loss",
        "budget",
        "queries",
        "success_rate",
        "partial_rate",
        "retries/query",
        "abandoned/query",
        "backoff_ms/query",
    ]);
    for row in rows {
        t.row(row);
    }
    t
}

/// Log-spaced ranks in `1..=n` (for log-log plots).
fn log_ranks(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut r = 1.0f64;
    while (r as usize) <= n {
        let v = r as usize;
        if out.last() != Some(&v) {
            out.push(v);
        }
        r *= 1.5;
    }
    if out.last() != Some(&n) {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval() -> Evaluation {
        Evaluation::new(EvalConfig {
            nodes: 30,
            articles: 150,
            queries: 800,
            seed: 42,
        })
    }

    #[test]
    fn fig7_mix_sums_to_one() {
        let t = fig7_query_mix();
        assert!(!t.is_empty());
        assert!(t.to_text().contains("/author"));
    }

    #[test]
    fn fig9_and_fig10_render() {
        let f9 = fig9_popularity();
        assert!(f9.len() > 10);
        let f10 = fig10_ccdf();
        assert_eq!(f10.len(), 21);
        // CCDF decreasing.
        let csv = f10.to_csv();
        let values: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn storage_overhead_orders_schemes() {
        let base = EvalConfig {
            nodes: 30,
            articles: 200,
            queries: 0,
            seed: 42,
        };
        let t = storage_overhead(&base);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        let bytes: Vec<u64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        // Simple smallest; flat and complex larger.
        assert!(bytes[0] < bytes[1], "simple < flat");
        assert!(bytes[0] < bytes[2], "simple < complex");
    }

    #[test]
    fn grid_is_cached() {
        let mut e = eval();
        let a = e.cell(SchemeChoice::Simple, CachePolicy::None).interactions;
        let b = e.cell(SchemeChoice::Simple, CachePolicy::None).interactions;
        assert_eq!(a, b);
        assert_eq!(e.cells_run(), 1);
    }

    #[test]
    fn run_cells_dedupes_and_matches_serial_cells() {
        let cells = [
            (SchemeChoice::Simple, CachePolicy::None),
            (SchemeChoice::Flat, CachePolicy::Single),
            (SchemeChoice::Simple, CachePolicy::None), // duplicate request
        ];
        let mut par = eval();
        par.run_cells(&cells, 4);
        assert_eq!(par.cells_run(), 2, "duplicates collapse to one run");
        let mut ser = eval();
        for &(scheme, policy) in &cells {
            assert_eq!(
                par.cell(scheme, policy),
                ser.cell(scheme, policy),
                "parallel {scheme:?}/{policy} must equal serial"
            );
        }
        // Already-memoized cells are not re-run.
        par.run_cells(&cells, 4);
        assert_eq!(par.cells_run(), 2);
    }

    #[test]
    fn paper_grid_covers_every_exhibit_policy() {
        let grid = paper_grid();
        assert_eq!(grid.len(), 18, "6 policies × 3 schemes");
        for policy in FIG11_POLICIES
            .iter()
            .chain(&FIG13_POLICIES)
            .chain(&TABLE1_POLICIES)
        {
            for scheme in SchemeChoice::PAPER {
                assert!(grid.contains(&(scheme, *policy)), "{scheme:?}/{policy}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fig11_shape_flat_wins_and_cache_helps() {
        let mut e = eval();
        let t = fig11_interactions(&mut e);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // Row 0 = no-cache: flat (col 1) < simple (col 0).
        assert!(rows[0][1] < rows[0][0]);
        // Single-cache (row 1) improves on no-cache for the hierarchical
        // schemes; flat's chains are already length 2, so caching leaves it
        // essentially unchanged (as in the paper's Fig. 11).
        assert!(rows[1][0] < rows[0][0], "simple");
        assert!(rows[1][2] < rows[0][2], "complex");
        assert!(rows[1][1] <= rows[0][1] + 0.25, "flat stays near its floor");
        // Larger LRU capacity monotonically (weakly) improves.
        for c in 0..3 {
            assert!(rows[4][c] <= rows[2][c] + 0.1, "lru30 <= lru10 col {c}");
        }
    }

    #[test]
    fn fig12_flat_generates_most_traffic() {
        // The flat-vs-others separation needs result lists of realistic
        // length (flat's penalty is list size), hence a larger corpus than
        // the other shape tests use.
        let mut e = Evaluation::new(EvalConfig {
            nodes: 50,
            articles: 2_000,
            queries: 600,
            seed: 42,
        });
        let flat = e
            .cell(SchemeChoice::Flat, CachePolicy::None)
            .normal_bytes_per_query();
        let simple = e
            .cell(SchemeChoice::Simple, CachePolicy::None)
            .normal_bytes_per_query();
        let complex = e
            .cell(SchemeChoice::Complex, CachePolicy::None)
            .normal_bytes_per_query();
        assert!(flat > simple, "flat {flat} > simple {simple}");
        assert!(flat > complex, "flat {flat} > complex {complex}");
    }

    #[test]
    fn fig13_hit_ratios_positive_and_multi_close_to_single() {
        let mut e = eval();
        let _ = fig13_hit_ratio(&mut e);
        let multi = e.cell(SchemeChoice::Simple, CachePolicy::Multi).hit_ratio();
        let single = e
            .cell(SchemeChoice::Simple, CachePolicy::Single)
            .hit_ratio();
        assert!(multi > 0.2 && single > 0.2);
        assert!(
            (multi - single).abs() < 0.12,
            "multi {multi} should be only marginally better than single {single}"
        );
        assert!(multi >= single - 0.02);
    }

    #[test]
    fn fig14_single_more_space_efficient_than_multi() {
        let mut e = eval();
        let _ = fig14_cache_storage(&mut e);
        let multi = e
            .cell(SchemeChoice::Simple, CachePolicy::Multi)
            .mean_cached_keys_per_node();
        let single = e
            .cell(SchemeChoice::Simple, CachePolicy::Single)
            .mean_cached_keys_per_node();
        assert!(multi > single, "multi {multi} > single {single}");
    }

    #[test]
    fn fig15_loads_are_ranked_descending() {
        let mut e = eval();
        let t = fig15_hotspots(&mut e);
        let csv = t.to_csv();
        let first_series: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(first_series.windows(2).all(|w| w[0] >= w[1]));
        assert!(first_series[0] > 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn table1_cache_reduces_errors() {
        let mut e = eval();
        let t = table1_errors(&mut e);
        let csv = t.to_csv();
        let rows: Vec<Vec<u64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        for c in 0..3 {
            assert!(rows[0][c] > 0, "no-cache errors col {c}");
            assert!(
                rows[2][c] < rows[0][c],
                "single-cache reduces errors col {c}"
            );
            assert!(rows[1][c] <= rows[0][c], "lru30 reduces errors col {c}");
        }
    }

    #[test]
    fn ext_structure_breakdown_attributes_errors_to_author_year() {
        let mut e = eval();
        let t = ext_structure_breakdown(&mut e);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let errors: u64 = cells[4].parse().unwrap();
            if cells[1] != "/author/year" {
                assert_eq!(errors, 0, "structure {} must not error", cells[1]);
            } else if cells[0] == "no-cache" {
                assert!(errors > 0, "author+year under no-cache must error");
            }
        }
    }

    #[test]
    fn ext_churn_availability_stays_perfect() {
        let base = EvalConfig {
            nodes: 32,
            articles: 150,
            queries: 800,
            seed: 42,
        };
        let t = ext_churn(&base);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells[3], "100.0%", "batch {} found-rate", cells[0]);
        }
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn ext_robustness_retries_rescue_lossy_searches() {
        let base = EvalConfig {
            nodes: 32,
            articles: 150,
            queries: 9_600, // 800 queries per sweep cell
            seed: 42,
        };
        let t = ext_robustness(&base, 2);
        assert_eq!(t.len(), 12, "4 loss rates × 3 budgets");
        let csv = t.to_csv();
        let mut saw_partial_cell = false;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let loss: f64 = cells[0].parse().unwrap();
            let budget: u32 = cells[1].parse().unwrap();
            let success: f64 = cells[3].parse().unwrap();
            let partial: f64 = cells[4].parse().unwrap();
            let retries: f64 = cells[5].parse().unwrap();
            let abandoned: f64 = cells[6].parse().unwrap();
            if loss == 0.0 {
                // A healthy substrate is exactly the pre-fault behavior.
                assert_eq!(success, 1.0, "lossless cell must find everything");
                assert_eq!(partial, 0.0);
                assert_eq!(retries, 0.0);
            } else if budget > 1 {
                assert!(retries > 0.0, "loss {loss} budget {budget} must retry");
            } else {
                assert_eq!(retries, 0.0, "budget 1 can never retry");
            }
            if loss >= 0.10 && budget == 1 {
                // No retry budget: multi-lookup searches collapse.
                assert!(
                    success < 0.99,
                    "loss {loss} without retries should degrade (got {success})"
                );
                saw_partial_cell = true;
                assert!(partial > 0.0, "degraded searches must be marked partial");
            }
            if (loss - 0.10).abs() < 1e-9 && budget == 3 {
                // The acceptance bar: 10% loss, budget 3 ⇒ ≥ 99% success.
                assert!(
                    success >= 0.99,
                    "10% loss with budget 3 must stay above 99% (got {success})"
                );
            }
            if partial > 0.0 {
                assert!(
                    abandoned > 0.0,
                    "partial results imply abandoned sub-lookups"
                );
            }
        }
        assert!(saw_partial_cell);
    }

    #[test]
    fn log_ranks_are_increasing_and_cover_n() {
        let r = log_ranks(500);
        assert_eq!(r[0], 1);
        assert_eq!(*r.last().unwrap(), 500);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }
}
